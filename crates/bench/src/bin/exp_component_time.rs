//! §IV-D4: component computation time of the online detector.
//!
//! The paper: 50 units × 5 databases; a 100 MB dataset (≈120 h of KPI
//! points) takes 42 s; correlation measurement ≈70 % of the time, window
//! observation ≈30 %.

use dbcatcher_bench::print_scale_banner;
use dbcatcher_eval::experiments::{component_time, Scale};
use dbcatcher_eval::report::{pct, render_table, secs};

fn main() {
    let scale = Scale::from_args();
    print_scale_banner("§IV-D4 — component computation time", &scale);
    let units = ((50.0 * scale.factor.max(0.1)).round() as usize).max(2);
    let ticks = 2000;
    let report = component_time(units, ticks, scale.seed);
    println!(
        "{}",
        render_table(
            "Component computation time (online detection)",
            &["Metric", "Measured", "Paper"],
            &[
                vec![
                    "units x databases".into(),
                    format!("{} x 5", report.units),
                    "50 x 5".into()
                ],
                vec![
                    "ticks per unit".into(),
                    report.ticks.to_string(),
                    "-".into()
                ],
                vec![
                    "data volume".into(),
                    format!("{:.1} MB", report.bytes_processed as f64 / 1e6),
                    "100 MB".into(),
                ],
                vec![
                    "total detection time".into(),
                    secs(report.total_secs),
                    "-".into()
                ],
                vec![
                    "time per 100 MB".into(),
                    secs(report.secs_per_100mb),
                    "42s".into(),
                ],
                vec![
                    "correlation measurement".into(),
                    pct(report.correlation_frac),
                    "70%".into(),
                ],
                vec![
                    "window observation".into(),
                    pct(report.observation_frac),
                    "30%".into(),
                ],
            ],
        )
    );
}
