// Clean torture fixture: every line here is a lexer trap, and none of
// it may produce a single violation under any rule.
pub fn tricky() -> usize {
    let a = r##"nested "# fence with unwrap() and Vec::new()"##;
    /* nested /* block /* comments */ */ with panic!() text */
    let b = 'a';
    let c: &'static str = "lifetime 'static vs char literal";
    let d = b"bytes with \" escape and unwrap()";
    let e = r#"raw with // not a comment and thread::sleep"#;
    let f = "escaped quote \" then Instant::now text";
    let r#unsafe = a.len(); // raw ident, not the `unsafe` keyword
    a.len() + (b as usize) + c.len() + d.len() + e.len() + f.len() + r#unsafe
}
