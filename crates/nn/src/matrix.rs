//! Row-major `f64` matrix with exactly the operations the layers need.

use crate::XorShiftRng;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a closure of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Self { rows, cols, data }
    }

    /// A single-row matrix view of a slice.
    pub fn row_vector(xs: &[f64]) -> Self {
        Self::from_vec(1, xs.len(), xs.to_vec())
    }

    /// Xavier/Glorot-uniform initialisation for a `rows x cols` weight
    /// matrix (`rows` = fan-out, `cols` = fan-in).
    pub fn xavier(rows: usize, cols: usize, rng: &mut XorShiftRng) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        Self::from_fn(rows, cols, |_, _| rng.uniform_in(-bound, bound))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order: stream through rhs rows for cache friendliness.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn t(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise combine with another matrix of identical shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self + rhs` element-wise.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }

    /// `self - rhs` element-wise.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }

    /// Hadamard (element-wise) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a * b)
    }

    /// Scales every element.
    pub fn scale(&self, k: f64) -> Matrix {
        self.map(|x| x * k)
    }

    /// Adds a bias row vector to every row.
    ///
    /// # Panics
    /// Panics when `bias.len() != cols`.
    pub fn add_bias_row(&self, bias: &[f64]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)] + bias[c])
    }

    /// Column-wise sums (gradient for a broadcast bias).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// In-place `self += rhs * k` (gradient accumulation).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled_in_place(&mut self, rhs: &Matrix, k: f64) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b * k;
        }
    }

    /// Sets every element to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(m.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn identity_matmul() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.t().t(), a);
        assert_eq!(a.t()[(2, 1)], a[(1, 2)]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.map(|x| x * x).data(), &[1.0, 4.0, 9.0]);
    }

    #[test]
    fn bias_and_col_sums() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let biased = a.add_bias_row(&[10.0, 20.0]);
        assert_eq!(biased.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(a.col_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(1, 2);
        let g = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        a.add_scaled_in_place(&g, 0.5);
        a.add_scaled_in_place(&g, 0.5);
        assert_eq!(a.data(), &[1.0, 2.0]);
        a.fill_zero();
        assert_eq!(a.data(), &[0.0, 0.0]);
    }

    #[test]
    fn xavier_within_bound() {
        let mut rng = XorShiftRng::new(1);
        let m = Matrix::xavier(10, 20, &mut rng);
        let bound = (6.0f64 / 30.0).sqrt();
        assert!(m.data().iter().all(|&x| x.abs() <= bound));
        // not all identical
        assert!(m.data().iter().any(|&x| x != m.data()[0]));
    }

    #[test]
    fn sums_and_norm() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.sum(), 7.0);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn row_vector_shape() {
        let v = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(v.rows(), 1);
        assert_eq!(v.cols(), 3);
        assert_eq!(v.row(0), &[1.0, 2.0, 3.0]);
    }
}
