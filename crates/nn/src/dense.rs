//! Fully connected layer with manual backprop.

use crate::activation::Activation;
use crate::matrix::Matrix;
use crate::XorShiftRng;

/// A dense layer: `y = act(x W^T + b)`.
///
/// Weights are stored `out x in`; inputs are `batch x in` matrices.
#[derive(Debug, Clone)]
pub struct Dense {
    w: Matrix,
    b: Vec<f64>,
    act: Activation,
    grad_w: Matrix,
    grad_b: Vec<f64>,
}

/// Values a forward pass must retain for the backward pass.
#[derive(Debug, Clone)]
pub struct DenseCache {
    input: Matrix,
    output: Matrix,
}

impl DenseCache {
    /// The activated output of the forward pass that produced this cache.
    pub fn output(&self) -> &Matrix {
        &self.output
    }
}

impl Dense {
    /// Creates a layer with Xavier-initialised weights and zero biases.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, rng: &mut XorShiftRng) -> Self {
        Self {
            w: Matrix::xavier(out_dim, in_dim, rng),
            b: vec![0.0; out_dim],
            act,
            grad_w: Matrix::zeros(out_dim, in_dim),
            grad_b: vec![0.0; out_dim],
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Forward pass over a `batch x in` matrix.
    pub fn forward(&self, x: &Matrix) -> DenseCache {
        let z = x.matmul(&self.w.t()).add_bias_row(&self.b);
        let output = self.act.forward(&z);
        DenseCache {
            input: x.clone(),
            output,
        }
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the input.
    pub fn backward(&mut self, cache: &DenseCache, grad_out: &Matrix) -> Matrix {
        let grad_z = self.act.backward(&cache.output, grad_out);
        // dW = grad_z^T * x  (out x in)
        let gw = grad_z.t().matmul(&cache.input);
        self.grad_w.add_scaled_in_place(&gw, 1.0);
        for (gb, s) in self.grad_b.iter_mut().zip(grad_z.col_sums()) {
            *gb += s;
        }
        // dx = grad_z * W  (batch x in)
        grad_z.matmul(&self.w)
    }

    /// Applies accumulated gradients with a plain SGD step and clears them.
    pub fn sgd_step(&mut self, lr: f64) {
        let gw = self.grad_w.clone();
        self.w.add_scaled_in_place(&gw, -lr);
        for (b, g) in self.b.iter_mut().zip(&self.grad_b) {
            *b -= lr * g;
        }
        self.zero_grad();
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_w.fill_zero();
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Mutable access to parameters and gradients for external optimizers:
    /// `(weights, weight grads, biases, bias grads)`.
    pub fn params_mut(&mut self) -> (&mut Matrix, &Matrix, &mut Vec<f64>, &Vec<f64>) {
        (&mut self.w, &self.grad_w, &mut self.b, &self.grad_b)
    }

    /// Immutable access to the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Immutable access to the bias vector.
    pub fn biases(&self) -> &[f64] {
        &self.b
    }
}

#[cfg(test)]
impl Dense {
    /// Test-only accessor for an accumulated weight gradient.
    fn grad_w_at(&self, r: usize, c: usize) -> f64 {
        self.grad_w[(r, c)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;

    #[test]
    fn forward_shape() {
        let mut rng = XorShiftRng::new(1);
        let layer = Dense::new(4, 3, Activation::Relu, &mut rng);
        let x = Matrix::zeros(5, 4);
        let cache = layer.forward(&x);
        assert_eq!(cache.output().rows(), 5);
        assert_eq!(cache.output().cols(), 3);
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 3);
    }

    /// Full-layer finite-difference gradient check (weights, biases, input).
    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = XorShiftRng::new(5);
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.4, 0.7, 0.3, 0.9, -0.2]);
        let target = Matrix::from_vec(2, 2, vec![0.5, -0.5, 0.1, 0.2]);

        let cache = layer.forward(&x);
        let (loss0, grad) = mse(cache.output(), &target);
        let grad_in = layer.backward(&cache, &grad);

        let eps = 1e-6;
        // check weight gradients
        for r in 0..2 {
            for c in 0..3 {
                let mut perturbed = layer.clone();
                perturbed.params_mut().0[(r, c)] += eps;
                let (lp, _) = mse(perturbed.forward(&x).output(), &target);
                let numeric = (lp - loss0) / eps;
                let analytic = layer.grad_w_at(r, c);
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "w[{r},{c}]: {numeric} vs {analytic}"
                );
            }
        }
        // check bias gradients
        for i in 0..2 {
            let mut perturbed = layer.clone();
            perturbed.params_mut().2[i] += eps;
            let (lp, _) = mse(perturbed.forward(&x).output(), &target);
            let numeric = (lp - loss0) / eps;
            assert!(
                (numeric - layer.grad_b[i]).abs() < 1e-4,
                "b[{i}]: {numeric} vs {}",
                layer.grad_b[i]
            );
        }
        // check input gradients
        for r in 0..2 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let (lp, _) = mse(layer.forward(&xp).output(), &target);
                let numeric = (lp - loss0) / eps;
                assert!(
                    (numeric - grad_in[(r, c)]).abs() < 1e-4,
                    "x[{r},{c}]: {numeric} vs {}",
                    grad_in[(r, c)]
                );
            }
        }
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut rng = XorShiftRng::new(9);
        let mut layer = Dense::new(2, 1, Activation::Linear, &mut rng);
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        // learn y = x0 + 2*x1
        let target = Matrix::from_vec(4, 1, vec![0.0, 2.0, 1.0, 3.0]);
        let mut last = f64::MAX;
        for _ in 0..200 {
            let cache = layer.forward(&x);
            let (loss, grad) = mse(cache.output(), &target);
            layer.backward(&cache, &grad);
            layer.sgd_step(0.1);
            last = loss;
        }
        assert!(last < 1e-3, "loss {last}");
        assert!((layer.weights()[(0, 0)] - 1.0).abs() < 0.05);
        assert!((layer.weights()[(0, 1)] - 2.0).abs() < 0.05);
    }

    #[test]
    fn zero_grad_clears() {
        let mut rng = XorShiftRng::new(2);
        let mut layer = Dense::new(2, 2, Activation::Sigmoid, &mut rng);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let cache = layer.forward(&x);
        let g = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        layer.backward(&cache, &g);
        assert!(layer.grad_w.frobenius_norm() > 0.0);
        layer.zero_grad();
        assert_eq!(layer.grad_w.frobenius_norm(), 0.0);
        assert!(layer.grad_b.iter().all(|&g| g == 0.0));
    }
}
