//! # dbcatcher-eval
//!
//! Evaluation harness reproducing the DBCatcher paper's protocol (§IV):
//!
//! * [`metrics`] — precision / recall / F-Measure over per-window
//!   verdicts (§IV-A3);
//! * [`protocol`] — the train/test regime: 50/50 temporal split, random
//!   search of thresholds and window sizes on the training split, frozen
//!   parameters on the testing split (§IV-B);
//! * [`methods`] — uniform wrappers running DBCatcher and the five
//!   baselines through that regime, measuring training time and the
//!   Window-Size efficiency metric;
//! * [`experiments`] — one driver per paper table/figure, used by the
//!   `dbcatcher-bench` experiment binaries and the integration tests;
//! * [`report`] — plain-text table/figure formatting plus JSON dumps;
//! * [`differential`] — backend-equivalence harness driving the naive and
//!   incremental correlation engines through identical streams.

#![forbid(unsafe_code)]
// Index-based loops over matrix/tensor dimensions are clearer than
// iterator chains in this numeric code.
#![allow(clippy::needless_range_loop)]

pub mod differential;
pub mod experiments;
pub mod methods;
pub mod metrics;
pub mod protocol;
pub mod replay;
pub mod report;

pub use methods::{MethodKind, MethodOutcome};
pub use metrics::Confusion;
