//! End-to-end hierarchy feed contract: the scope-verdict file a
//! `--hierarchy` daemon writes on clean shutdown is **byte-identical** to
//! an offline replay of its own hierarchy WAL — the exact check the
//! `analyze-fleet` CLI performs — and the identity survives a mid-stream
//! crash plus resume, because the resumed daemon replays the WAL prefix
//! before continuing the live stream.

use dbcatcher_hierarchy::{parse_unit_line, render_scope_line, replay, HierarchyConfig, Topology};
use dbcatcher_serve::{
    emit_surviving, CrashSwitch, DetectionServer, EmitOptions, HierarchyOptions, ServeConfig,
    UnitStream, HIERARCHY_WAL_FILE,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const UNITS: usize = 3;
const DBS: usize = 3;
const KPIS: usize = 4;
const TICKS: usize = 140;

/// Correlated synthetic telemetry with an injected correlated anomaly:
/// units 0 and 1 stall their database 0 over ticks 40..100 (its KPIs
/// freeze while the siblings keep moving), which decorrelates that
/// database and drives abnormal verdicts on two of the three units.
fn frame(unit: usize, t: usize) -> Vec<Vec<f64>> {
    (0..DBS)
        .map(|db| {
            (0..KPIS)
                .map(|kpi| {
                    if unit < 2 && db == 0 && (40..100).contains(&t) {
                        return 50.0 + kpi as f64;
                    }
                    let phase = t as f64 * 0.13 + kpi as f64 * 1.3 + db as f64 * 0.05;
                    50.0 + 10.0 * phase.sin() + kpi as f64 + unit as f64 * 0.2
                })
                .collect()
        })
        .collect()
}

fn streams() -> Vec<UnitStream> {
    (0..UNITS)
        .map(|unit| UnitStream {
            unit,
            dbs: DBS,
            kpis: KPIS,
            participation: None,
            frames: (0..TICKS).map(|t| frame(unit, t)).collect(),
        })
        .collect()
}

fn scratch() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dbcatcher_hierarchy_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn boot(dir: &Path, crash: Option<Arc<CrashSwitch>>) {
    let config = ServeConfig {
        max_units: UNITS,
        shards: 2,
        queue_cap: 8,
        snapshot_dir: Some(dir.to_path_buf()),
        snapshot_every: 1,
        resume_dir: Some(dir.to_path_buf()),
        wal_dir: Some(dir.join("wal")),
        fsync_every: 1,
        retry_after_ms: 2,
        hierarchy: Some(HierarchyOptions {
            units_per_cluster: UNITS,
            clusters_per_region: 1,
            scope_out: Some(dir.join("scope.jsonl")),
        }),
        crash,
        ..ServeConfig::default()
    };
    let server = DetectionServer::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    let options = EmitOptions {
        window: 16,
        ..EmitOptions::default()
    };
    let _ = emit_surviving(addr, streams(), &options).expect("session connects");
    handle.stop();
    thread.join().expect("server thread").expect("server run");
}

/// Replays the daemon's hierarchy WAL offline (skipping malformed lines
/// exactly as the daemon and `analyze-fleet` do) and renders the scope
/// stream.
fn offline_scope_lines(dir: &Path) -> String {
    let wal = std::fs::read_to_string(dir.join("wal").join(HIERARCHY_WAL_FILE))
        .expect("hierarchy WAL exists");
    let records = wal
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| parse_unit_line(l).ok());
    let config = HierarchyConfig::new(Topology::new(UNITS, UNITS, 1).expect("topology"));
    replay(config, records)
        .iter()
        .map(|sv| render_scope_line(sv) + "\n")
        .collect()
}

#[test]
fn clean_run_scope_file_equals_offline_replay() {
    let dir = scratch();
    boot(&dir, None);
    let online = std::fs::read_to_string(dir.join("scope.jsonl")).expect("scope file written");
    let offline = offline_scope_lines(&dir);
    assert_eq!(online, offline, "online scope stream must replay offline");
    assert!(
        online.contains("\"Alarm\""),
        "the injected correlated stall must raise a scope alarm: {online:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_and_resume_preserves_scope_identity() {
    let dir = scratch();
    let switch = CrashSwitch::armed(150);
    boot(&dir, Some(switch.clone()));
    assert!(switch.tripped(), "mid-stream kill must fire");
    assert!(
        !dir.join("scope.jsonl").exists(),
        "a crashed daemon writes no scope file"
    );
    // Resume: the daemon replays the hierarchy WAL, the producers rewind
    // and restream, and the clean stop writes the full scope history.
    boot(&dir, None);
    let online = std::fs::read_to_string(dir.join("scope.jsonl")).expect("scope file written");
    let offline = offline_scope_lines(&dir);
    assert_eq!(
        online, offline,
        "scope stream across crash+resume must equal one offline replay"
    );
    assert!(
        online.contains("\"Alarm\""),
        "the correlated stall must still raise a scope alarm: {online:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
