//! Detector configuration.
//!
//! Default values follow the paper's stated parameter ranges (§III-D):
//! correlation thresholds α ∈ [0.6, 0.8], tolerance θ ∈ [0.1, 0.3],
//! tolerance deviation number N ∈ [0, 3], initial window W ∈ [15, 25],
//! maximum window W_M ∈ [45, 75] — we default to each range's midpoint.

use crate::ingest::IngestConfig;
use serde::{Deserialize, Serialize};

/// A specific, typed configuration violation found by
/// [`DbCatcherConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `num_kpis` is zero.
    NoKpis,
    /// `alphas` length mismatches `num_kpis`.
    AlphaArity {
        /// Entries in `alphas`.
        alphas: usize,
        /// Configured KPI count.
        kpis: usize,
    },
    /// `initial_window` below the 2-tick minimum a correlation needs.
    InitialWindowTooSmall {
        /// Configured initial window.
        initial_window: usize,
    },
    /// `max_window` smaller than `initial_window`.
    MaxWindowBelowInitial {
        /// Configured maximum window.
        max_window: usize,
        /// Configured initial window.
        initial_window: usize,
    },
    /// `theta` outside `[0, 1]`.
    ThetaOutOfRange {
        /// Configured theta.
        theta: f64,
    },
    /// Participation mask row count mismatches `num_kpis`.
    ParticipationArity {
        /// Mask rows.
        rows: usize,
        /// Configured KPI count.
        kpis: usize,
    },
    /// Ingest `demote_ratio` outside `(0, 1]`.
    DemoteRatioOutOfRange {
        /// Configured ratio.
        ratio: f64,
    },
    /// Ingest `health_window` is zero.
    ZeroHealthWindow,
    /// Ingest `readmit_after` is zero.
    ZeroReadmitAfter,
    /// A detector was built for zero databases.
    NoDatabases,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoKpis => write!(f, "num_kpis must be >= 1"),
            ConfigError::AlphaArity { alphas, kpis } => {
                write!(f, "alphas has {alphas} entries for {kpis} KPIs")
            }
            ConfigError::InitialWindowTooSmall { initial_window } => {
                write!(f, "initial_window {initial_window} must be >= 2")
            }
            ConfigError::MaxWindowBelowInitial {
                max_window,
                initial_window,
            } => write!(
                f,
                "max_window {max_window} must be >= initial_window {initial_window}"
            ),
            ConfigError::ThetaOutOfRange { theta } => {
                write!(f, "theta {theta} must lie in [0, 1]")
            }
            ConfigError::ParticipationArity { rows, kpis } => {
                write!(f, "participation mask has {rows} rows for {kpis} KPIs")
            }
            ConfigError::DemoteRatioOutOfRange { ratio } => {
                write!(f, "ingest demote_ratio {ratio} must lie in (0, 1]")
            }
            ConfigError::ZeroHealthWindow => write!(f, "ingest health_window must be >= 1"),
            ConfigError::ZeroReadmitAfter => write!(f, "ingest readmit_after must be >= 1"),
            ConfigError::NoDatabases => write!(f, "unit must contain at least one database"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// How many lags the KCD scan covers (paper Eq. 3 scans up to m = n/2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DelayScan {
    /// Scan s ∈ [−n/2, n/2] as in the paper.
    HalfWindow,
    /// Scan a fixed ±k lag range — cheaper when the deployment's
    /// collection delays are known to be small (ablation knob).
    Fixed(usize),
}

impl DelayScan {
    /// Resolves the scan bound for a window of `n` points.
    pub fn max_lag(self, n: usize) -> usize {
        match self {
            DelayScan::HalfWindow => n / 2,
            DelayScan::Fixed(k) => k.min(n.saturating_sub(1)),
        }
    }
}

/// Which correlation engine the pipeline runs (see
/// [`crate::kcd_incremental`] and DESIGN.md).
///
/// Both backends implement the same KCD semantics; `Naive` recomputes
/// every evaluation from scratch and serves as the oracle the
/// differential suite checks `Incremental` against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorrelationBackend {
    /// Window copy + fresh normalisation + two-pass lag scan per pair.
    Naive,
    /// Monotonic-deque min/max, cached normalised windows, prefix-sum
    /// moments (default).
    #[default]
    Incremental,
}

/// How a database's N−1 pairwise scores reduce to one score per KPI.
///
/// The paper's Algorithm 1 leaves this open; see DESIGN.md §3.2. Median is
/// the default: an anomalous database de-correlates from *all* peers, while
/// a single low pairwise score more likely indicts the other database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LevelAggregation {
    /// Median of the pairwise scores (robust default).
    Median,
    /// Minimum — most sensitive, most false-positive-prone.
    Min,
    /// Arithmetic mean.
    Mean,
}

/// What to do when a window reaches the maximum size while the database is
/// still *observable* (the paper does not say; see DESIGN.md §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolvePolicy {
    /// A deviation that outlives every expansion did not behave like a
    /// temporal fluctuation — resolve abnormal (default).
    Abnormal,
    /// Give the database the benefit of the doubt.
    Healthy,
}

/// Full configuration of a [`crate::DbCatcher`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DbCatcherConfig {
    /// Number of KPIs per database (the paper's Q; 14 for Table II).
    pub num_kpis: usize,
    /// Per-KPI correlation thresholds α_i.
    pub alphas: Vec<f64>,
    /// Tolerance threshold θ separating level-1 from level-2.
    pub theta: f64,
    /// Maximum tolerance deviation number N: level-2 counts below it are
    /// *observable*, at or above it *abnormal*.
    pub max_tolerance: usize,
    /// Initial window size W in ticks.
    pub initial_window: usize,
    /// Expansion step Δ; `0` means "same as the initial window" (paper:
    /// "the length Δ of each expansion is generally the same as the
    /// initial window size").
    pub expansion: usize,
    /// Maximum window size W_M.
    pub max_window: usize,
    /// KCD lag-scan policy.
    pub delay_scan: DelayScan,
    /// Correlation engine implementation.
    pub backend: CorrelationBackend,
    /// Pairwise-score aggregation.
    pub aggregation: LevelAggregation,
    /// Resolution policy at W_M.
    pub resolve_at_max: ResolvePolicy,
    /// A database whose every KPI stays below this absolute value over a
    /// whole window is *unused* and excluded from judgement (paper §III-B).
    pub unused_epsilon: f64,
    /// Optional participation mask `mask[kpi][db]`: `false` entries are
    /// excluded from that KPI's level computation (Table II semantics).
    pub participation: Option<Vec<Vec<bool>>>,
    /// Ingestion-hardening knobs (gap repair, staleness, non-voting
    /// demotion); defaults are behaviour-neutral on clean streams.
    pub ingest: IngestConfig,
}

impl Default for DbCatcherConfig {
    fn default() -> Self {
        Self {
            num_kpis: 14,
            alphas: vec![0.7; 14],
            theta: 0.2,
            // top of the paper's N ∈ [0, 3] range: up to two slight
            // deviations are *observable* (window expands) rather than
            // immediately abnormal, letting the flexible window absorb
            // temporal fluctuations as §III-C intends
            max_tolerance: 3,
            initial_window: 20,
            expansion: 0,
            max_window: 60,
            // The paper's Eq. 3 scans up to n/2 lags, but on 20-point
            // windows that almost always finds a spurious alignment and
            // destroys discrimination; ±3 covers realistic collection
            // delays (see DESIGN.md §3.6 and the `kcd` ablation bench).
            delay_scan: DelayScan::Fixed(3),
            backend: CorrelationBackend::Incremental,
            aggregation: LevelAggregation::Median,
            resolve_at_max: ResolvePolicy::Abnormal,
            unused_epsilon: 1e-9,
            participation: None,
            ingest: IngestConfig::default(),
        }
    }
}

impl DbCatcherConfig {
    /// A default configuration for `num_kpis` KPIs.
    pub fn with_kpis(num_kpis: usize) -> Self {
        Self {
            num_kpis,
            alphas: vec![0.7; num_kpis],
            ..Self::default()
        }
    }

    /// The effective expansion step.
    pub fn expansion_step(&self) -> usize {
        if self.expansion == 0 {
            self.initial_window
        } else {
            self.expansion
        }
    }

    /// Installs the thresholds learned by the genetic algorithm.
    pub fn apply_genes(&mut self, genes: &crate::ga::Genes) {
        assert_eq!(
            genes.alphas.len(),
            self.num_kpis,
            "gene arity mismatches KPI count"
        );
        self.alphas = genes.alphas.clone();
        self.theta = genes.theta;
        self.max_tolerance = genes.max_tolerance;
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns the first violation found as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_kpis == 0 {
            return Err(ConfigError::NoKpis);
        }
        if self.alphas.len() != self.num_kpis {
            return Err(ConfigError::AlphaArity {
                alphas: self.alphas.len(),
                kpis: self.num_kpis,
            });
        }
        if self.initial_window < 2 {
            return Err(ConfigError::InitialWindowTooSmall {
                initial_window: self.initial_window,
            });
        }
        if self.max_window < self.initial_window {
            return Err(ConfigError::MaxWindowBelowInitial {
                max_window: self.max_window,
                initial_window: self.initial_window,
            });
        }
        if !(0.0..=1.0).contains(&self.theta) {
            return Err(ConfigError::ThetaOutOfRange { theta: self.theta });
        }
        if let Some(mask) = &self.participation {
            if mask.len() != self.num_kpis {
                return Err(ConfigError::ParticipationArity {
                    rows: mask.len(),
                    kpis: self.num_kpis,
                });
            }
        }
        crate::ingest::validate_ingest(&self.ingest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_midpoints() {
        let c = DbCatcherConfig::default();
        assert_eq!(c.num_kpis, 14);
        assert!(c.alphas.iter().all(|&a| (0.6..=0.8).contains(&a)));
        assert!((0.1..=0.3).contains(&c.theta));
        assert!(c.max_tolerance <= 3);
        assert!((15..=25).contains(&c.initial_window));
        assert!((45..=75).contains(&c.max_window));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn expansion_defaults_to_initial_window() {
        let c = DbCatcherConfig::default();
        assert_eq!(c.expansion_step(), c.initial_window);
        let c2 = DbCatcherConfig {
            expansion: 10,
            ..DbCatcherConfig::default()
        };
        assert_eq!(c2.expansion_step(), 10);
    }

    #[test]
    fn delay_scan_bounds() {
        assert_eq!(DelayScan::HalfWindow.max_lag(20), 10);
        assert_eq!(DelayScan::Fixed(3).max_lag(20), 3);
        assert_eq!(DelayScan::Fixed(50).max_lag(20), 19);
        assert_eq!(DelayScan::Fixed(3).max_lag(0), 0);
    }

    #[test]
    fn with_kpis_sizes_alphas() {
        let c = DbCatcherConfig::with_kpis(5);
        assert_eq!(c.alphas.len(), 5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_mistakes() {
        let mut c = DbCatcherConfig::default();
        c.alphas.pop();
        assert!(c.validate().is_err());

        let c = DbCatcherConfig {
            max_window: 5,
            ..DbCatcherConfig::default()
        };
        assert!(c.validate().is_err());

        let c = DbCatcherConfig {
            theta: 2.0,
            ..DbCatcherConfig::default()
        };
        assert!(c.validate().is_err());

        let c = DbCatcherConfig {
            num_kpis: 0,
            alphas: vec![],
            ..DbCatcherConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_errors_are_typed() {
        let mut c = DbCatcherConfig::default();
        c.alphas.pop();
        assert_eq!(
            c.validate(),
            Err(ConfigError::AlphaArity {
                alphas: 13,
                kpis: 14
            })
        );

        let mut c = DbCatcherConfig::default();
        c.ingest.demote_ratio = 0.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::DemoteRatioOutOfRange { .. })
        ));

        let mut c = DbCatcherConfig::default();
        c.ingest.health_window = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroHealthWindow));

        let mut c = DbCatcherConfig::default();
        c.ingest.readmit_after = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroReadmitAfter));
    }

    #[test]
    fn config_errors_display_human_readable() {
        let err = ConfigError::MaxWindowBelowInitial {
            max_window: 5,
            initial_window: 20,
        };
        assert!(err.to_string().contains("max_window 5"));
    }

    #[test]
    fn apply_genes_installs_thresholds() {
        let mut c = DbCatcherConfig::with_kpis(3);
        let genes = crate::ga::Genes {
            alphas: vec![0.61, 0.72, 0.79],
            theta: 0.15,
            max_tolerance: 1,
        };
        c.apply_genes(&genes);
        assert_eq!(c.alphas, genes.alphas);
        assert_eq!(c.theta, 0.15);
        assert_eq!(c.max_tolerance, 1);
    }

    #[test]
    #[should_panic(expected = "gene arity")]
    fn apply_genes_arity_mismatch_panics() {
        let mut c = DbCatcherConfig::with_kpis(3);
        c.apply_genes(&crate::ga::Genes {
            alphas: vec![0.7; 2],
            theta: 0.2,
            max_tolerance: 1,
        });
    }
}
