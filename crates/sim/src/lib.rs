//! # dbcatcher-sim
//!
//! A cloud-database **unit** simulator, substituting for the Tencent Cloud
//! MySQL units the DBCatcher paper evaluates on (§II-A, §IV-A5).
//!
//! A unit is one *primary* database plus several *replica* databases behind
//! a load balancer. The simulator reproduces the properties the paper's
//! detection method depends on:
//!
//! * **UKPIC** (§II-B): the load balancer hands every database a similar
//!   share of the offered load, so the same KPI follows the same trend on
//!   every database of the unit — with per-database gains and noise, so
//!   *values* differ while *trends* correlate.
//! * **P-R vs R-R correlation classes** (Table II): write-command KPIs such
//!   as `Com Insert` only correlate replica-to-replica; the primary carries
//!   an idiosyncratic component (client write handling, purge activity)
//!   that decorrelates it on those KPIs.
//! * **Point-in-time delays** (§II-D): each database's monitoring samples
//!   are collected with a small per-database delay of 0–3 ticks.
//! * **Temporal fluctuations** (§II-D): short-lived, per-database bumps
//!   (maintenance tasks) that are *not* anomalies.
//! * **Anomaly modifiers** (§II-C, §V): spikes, level shifts, concept
//!   drift, stalls, defective load balancing, capacity fragmentation and
//!   resource-hog effects, with per-tick ground-truth labels.
//!
//! The collection interval is the paper's 5 seconds; one `tick` = one
//! sample of all 14 KPIs on all databases.

#![forbid(unsafe_code)]
// Index-based loops over matrix/tensor dimensions are clearer than
// iterator chains in this numeric code.
#![allow(clippy::needless_range_loop)]

pub mod balancer;
pub mod causes;
pub mod correlated;
pub mod faults;
pub mod fluctuation;
pub mod kpi;
pub mod modifier;
pub mod unit;

pub use balancer::{BalancerStrategy, LoadBalancer};
pub use causes::{interpret_cause, CauseHint};
pub use correlated::{CorrelatedKind, CorrelatedScenario};
pub use faults::{corrupt_series, CollectorFault, FaultInjector, FaultKind, FaultPreset};
pub use kpi::{CorrelationClass, Kpi, ALL_KPIS, NUM_KPIS};
pub use modifier::{AnomalyEffect, Modifier};
pub use unit::{DbRole, OfferedLoad, TickSample, UnitConfig, UnitSim};

/// The monitoring collection interval, in seconds (paper §III-A).
pub const COLLECTION_INTERVAL_SECS: f64 = 5.0;
