//! `dbclint` — workspace static analysis gate.
//!
//! ```text
//! dbclint [--root DIR] [--config FILE] [--report FILE] [--deny]
//!         [--self-test] [--verbose]
//! ```
//!
//! Exit codes: `0` clean (or warnings only), `2` deny-level violations
//! with `--deny`, `3` self-test failure, `1` usage/config/IO error.

#![forbid(unsafe_code)]

use dbcatcher_analysis::rules::Severity;
use dbcatcher_analysis::{analyze, parse_config, report, selftest, walk};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    report: Option<PathBuf>,
    deny: bool,
    self_test: bool,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        report: None,
        deny: false,
        self_test: false,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = it.next().ok_or("--root needs a value")?.into(),
            "--config" => args.config = Some(it.next().ok_or("--config needs a value")?.into()),
            "--report" => args.report = Some(it.next().ok_or("--report needs a value")?.into()),
            "--deny" => args.deny = true,
            "--self-test" => args.self_test = true,
            "--verbose" => args.verbose = true,
            "--help" | "-h" => {
                println!(
                    "dbclint [--root DIR] [--config FILE] [--report FILE] [--deny] [--self-test] [--verbose]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("dbclint.toml"));
    let toml = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("{}: {e}", config_path.display()))?;
    let cfg = parse_config(&toml).map_err(|e| e.to_string())?;

    if args.self_test {
        let failures = selftest::run(&cfg);
        if failures.is_empty() {
            println!("dbclint self-test: all seeded violations caught, clean seeds pass");
            return Ok(ExitCode::SUCCESS);
        }
        for f in &failures {
            eprintln!("dbclint self-test FAILURE: {f}");
        }
        return Ok(ExitCode::from(3));
    }

    let files = walk::collect(&args.root, &cfg).map_err(|e| e.to_string())?;
    let analysis = analyze(&cfg, &files);

    let report_path = args
        .report
        .clone()
        .unwrap_or_else(|| args.root.join("results/LINT_report.json"));
    if let Some(dir) = report_path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    }
    std::fs::write(&report_path, report::render(&analysis))
        .map_err(|e| format!("{}: {e}", report_path.display()))?;

    for v in &analysis.violations {
        if v.severity == Severity::Deny {
            eprintln!(
                "dbclint: deny [{}] {}:{} — {} ({})",
                v.rule, v.file, v.line, v.pattern, v.snippet
            );
        } else if args.verbose {
            eprintln!(
                "dbclint: warn [{}] {}:{} — {}",
                v.rule, v.file, v.line, v.pattern
            );
        }
    }
    println!(
        "dbclint: {} files, {} deny, {} warn, {} waived → {}",
        analysis.files_scanned,
        analysis.deny_count(),
        analysis.warn_count(),
        analysis.waivers.len(),
        report_path.display()
    );

    if args.deny && analysis.deny_count() > 0 {
        eprintln!(
            "dbclint: {} deny-level violation(s); fix them or add `// dbclint: allow(<rule>) — <justification>`",
            analysis.deny_count()
        );
        return Ok(ExitCode::from(2));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("dbclint: error: {e}");
            ExitCode::FAILURE
        }
    }
}
