//! Shard supervision: keeps detector workers alive across panics and
//! wedges.
//!
//! Each shard seat owns the current worker generation: its job channel,
//! its heartbeat, and a *generation fence*. The monitor thread polls the
//! seats and replaces a generation that has died (its thread finished
//! outside shutdown — a panic) or wedged (jobs queued but the processed
//! counter stalled past the deadline). A replacement is rebuilt
//! synchronously from `snapshot + WAL suffix` (see [`crate::shard::build_seed`])
//! before it takes the seat, so the registry's expected ticks and the
//! detector positions always agree by the time producers are re-admitted.
//!
//! The restart ordering is the load-bearing part. While a seat is
//! `restarting`, connection readers reject ticks with a backpressure
//! hint — checked *inside* the registry critical section, so the
//! registry mutex orders it against the seed's expected-tick resets:
//! any reader that can observe a reset expected tick also observes
//! `restarting` and rejects. Ticks accepted before the fence but never
//! processed are recovered by the client's out-of-order rewind — the
//! reset expected tick sits at the recovered detector position, below
//! anything that was lost, so the producer resends the gap in order.
//! With a WAL the replay itself loses nothing; without one the rewind
//! still re-feeds the detector from its last snapshot.
//!
//! A seat that exhausts `restart_limit` is marked failed: its units are
//! hard-degraded (the readers reject with `Degraded`), the failure is
//! visible in [`crate::metrics::ShardStatus`], and the rest of the
//! daemon keeps serving.

use crate::metrics::ServerMetrics;
use crate::server::ServerHandle;
use crate::shard::{build_seed, run_worker, Job, Registry, ShardBeat, ShardContext, UnitHealth};
use crate::sync::LockRecover;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Monitor poll cadence.
const MONITOR_POLL: Duration = Duration::from_millis(25);

/// How long control-plane jobs (`Hello`/`Flush`/`Reset`/`Stop`) keep
/// retrying a full or mid-swap shard channel before giving up.
const SEND_DEADLINE: Duration = Duration::from_secs(5);

/// How long a clean shutdown waits for a worker before fencing and
/// abandoning it.
const STOP_DEADLINE: Duration = Duration::from_secs(10);

type Factory = Box<dyn Fn(usize, Arc<ShardBeat>, Arc<AtomicBool>) -> ShardContext + Send + Sync>;

struct WorkerCell {
    handle: JoinHandle<()>,
    fence: Arc<AtomicBool>,
}

/// One shard's seat: whatever generation currently owns the shard.
struct Seat {
    sender: Mutex<SyncSender<Job>>,
    beat: Arc<ShardBeat>,
    cell: Mutex<Option<WorkerCell>>,
    restarts: AtomicU32,
    restarting: AtomicBool,
    failed: AtomicBool,
}

pub(crate) struct ShardSupervisor {
    shards: usize,
    channel_cap: usize,
    restart_limit: u32,
    wedge_timeout: Duration,
    factory: Factory,
    registry: Arc<Registry>,
    metrics: Arc<ServerMetrics>,
    handle: ServerHandle,
    seats: Vec<Seat>,
    stopping: AtomicBool,
    monitor: Mutex<Option<JoinHandle<()>>>,
}

impl ShardSupervisor {
    /// Spawns the initial worker generation per shard plus the monitor
    /// thread.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        shards: usize,
        max_units: usize,
        queue_cap: usize,
        restart_limit: u32,
        wedge_timeout: Duration,
        registry: Arc<Registry>,
        metrics: Arc<ServerMetrics>,
        handle: ServerHandle,
        factory: impl Fn(usize, Arc<ShardBeat>, Arc<AtomicBool>) -> ShardContext + Send + Sync + 'static,
    ) -> Arc<Self> {
        let factory: Factory = Box::new(factory);
        // Headroom so per-unit queue caps, not the shared shard channel,
        // are what normally trip backpressure.
        let channel_cap = max_units.div_ceil(shards) * queue_cap + 8;
        let mut seats = Vec::with_capacity(shards);
        for shard in 0..shards {
            let beat = Arc::new(ShardBeat::default());
            let (sender, cell) = Self::launch(
                &factory,
                shard,
                shards,
                channel_cap,
                Arc::clone(&beat),
                false,
            );
            seats.push(Seat {
                sender: Mutex::new(sender),
                beat,
                cell: Mutex::new(Some(cell)),
                restarts: AtomicU32::new(0),
                restarting: AtomicBool::new(false),
                failed: AtomicBool::new(false),
            });
        }
        let supervisor = Arc::new(Self {
            shards,
            channel_cap,
            restart_limit,
            wedge_timeout,
            factory,
            registry,
            metrics,
            handle,
            seats,
            stopping: AtomicBool::new(false),
            monitor: Mutex::new(None),
        });
        let monitor_ref = Arc::clone(&supervisor);
        let monitor = std::thread::Builder::new()
            .name("dbcatcher-supervisor".into())
            .spawn(move || monitor_ref.monitor_loop())
            // dbclint: allow(panic-free) — OS thread-spawn failure at daemon boot is unrecoverable; fail loud
            .expect("spawn shard supervisor");
        *supervisor.monitor.lock_clean() = Some(monitor);
        supervisor
    }

    /// Builds one worker generation: context, recovered seed, channel,
    /// thread. `revive` re-owns the shard's registered units (restarts).
    fn launch(
        factory: &Factory,
        shard: usize,
        shards: usize,
        channel_cap: usize,
        beat: Arc<ShardBeat>,
        revive: bool,
    ) -> (SyncSender<Job>, WorkerCell) {
        let fence = Arc::new(AtomicBool::new(false));
        let ctx = factory(shard, beat, Arc::clone(&fence));
        let seed = build_seed(&ctx, shards, revive);
        let (sender, receiver) = sync_channel(channel_cap);
        let handle = std::thread::Builder::new()
            .name(format!("dbcatcher-shard-{shard}"))
            .spawn(move || run_worker(ctx, receiver, seed))
            // dbclint: allow(panic-free) — OS thread-spawn failure has no graceful recovery; fail loud
            .expect("spawn shard worker");
        (sender, WorkerCell { handle, fence })
    }

    fn seat(&self, unit: usize) -> &Seat {
        &self.seats[unit % self.shards]
    }

    /// Whether the unit's shard currently accepts new ticks. Readers
    /// must consult this *inside* the registry critical section — the
    /// registry mutex is what orders it against restart-time expected
    /// resets.
    pub fn accepting(&self, unit: usize) -> bool {
        let seat = self.seat(unit);
        !seat.failed.load(Ordering::SeqCst) && !seat.restarting.load(Ordering::SeqCst)
    }

    /// Queue-depth-proportional backpressure hint: an idle shard says
    /// "retry almost immediately", a saturated one backs producers off
    /// up to the configured base.
    pub fn retry_hint(&self, unit: usize, base: u64) -> u64 {
        let backlog = self.seat(unit).beat.backlog();
        ((base * backlog) / self.channel_cap as u64).clamp(1, base.max(1))
    }

    /// Enqueues a tick job without blocking; the caller maps failure to
    /// a backpressure rejection.
    pub fn try_send_tick(&self, unit: usize, job: Job) -> Result<(), ()> {
        let seat = self.seat(unit);
        let result = {
            let sender = seat.sender.lock_clean();
            sender.try_send(job)
        };
        match result {
            Ok(()) => {
                seat.beat.note_enqueued();
                Ok(())
            }
            Err(_) => Err(()),
        }
    }

    /// Enqueues a control-plane job, retrying across full channels and
    /// generation swaps for up to [`SEND_DEADLINE`].
    pub fn send(&self, unit: usize, job: Job) -> Result<(), ()> {
        let seat = self.seat(unit);
        let deadline = Instant::now() + SEND_DEADLINE;
        let mut job = job;
        loop {
            if seat.failed.load(Ordering::SeqCst) {
                return Err(());
            }
            let result = {
                let sender = seat.sender.lock_clean();
                sender.try_send(job)
            };
            match result {
                Ok(()) => {
                    seat.beat.note_enqueued();
                    return Ok(());
                }
                Err(TrySendError::Full(j)) | Err(TrySendError::Disconnected(j)) => job = j,
            }
            if Instant::now() >= deadline {
                return Err(());
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn monitor_loop(self: Arc<Self>) {
        let now = Instant::now();
        let mut progress: Vec<(u64, Instant)> = self
            .seats
            .iter()
            .map(|s| (s.beat.processed(), now))
            .collect();
        while !self.stopping.load(Ordering::SeqCst) && !self.handle.stopping() {
            std::thread::sleep(MONITOR_POLL);
            for (shard, seen) in progress.iter_mut().enumerate().take(self.shards) {
                let seat = &self.seats[shard];
                if seat.failed.load(Ordering::SeqCst) {
                    continue;
                }
                if self.stopping.load(Ordering::SeqCst) || self.handle.stopping() {
                    return;
                }
                let finished = seat
                    .cell
                    .lock_clean()
                    .as_ref()
                    .is_some_and(|c| c.handle.is_finished());
                if finished {
                    self.replace(shard, None);
                    *seen = (seat.beat.processed(), Instant::now());
                    continue;
                }
                let processed = seat.beat.processed();
                if processed != seen.0 || seat.beat.backlog() == 0 {
                    *seen = (processed, Instant::now());
                } else if seen.1.elapsed() >= self.wedge_timeout {
                    let stalled = format!(
                        "wedged: {} jobs queued, no progress for {:?}",
                        seat.beat.backlog(),
                        self.wedge_timeout
                    );
                    self.replace(shard, Some(stalled));
                    *seen = (seat.beat.processed(), Instant::now());
                }
            }
        }
    }

    /// Replaces the worker generation of `shard` (or fails the shard when
    /// the restart budget is spent). `wedge` carries the stall diagnostic
    /// when the old generation is stuck rather than dead.
    fn replace(&self, shard: usize, wedge: Option<String>) {
        let seat = &self.seats[shard];
        // Gate new accepts for the whole swap window. This store is
        // sequenced before the seed's registry writes, so the registry
        // mutex makes it visible to any reader that could see a reset
        // expected tick.
        seat.restarting.store(true, Ordering::SeqCst);
        let old = seat.cell.lock_clean().take();
        if let Some(cell) = &old {
            cell.fence.store(true, Ordering::SeqCst);
        }
        let reason = match &wedge {
            Some(stall) => {
                // A wedged worker is still running; fencing it is all we
                // can do — it exits at its next fence poll. Joining here
                // could block the monitor, so the handle is dropped.
                drop(old);
                stall.clone()
            }
            None => old
                .map(|cell| match cell.handle.join() {
                    Err(payload) => panic_message(payload.as_ref()),
                    Ok(()) => "worker exited unexpectedly".to_string(),
                })
                .unwrap_or_else(|| "worker missing".to_string()),
        };
        let attempt = seat.restarts.fetch_add(1, Ordering::SeqCst) + 1;
        if attempt > self.restart_limit {
            seat.failed.store(true, Ordering::SeqCst);
            seat.restarting.store(false, Ordering::SeqCst);
            self.metrics.record_shard_failed(
                shard,
                format!("restart limit ({}) exhausted: {reason}", self.restart_limit),
            );
            for (unit, _) in self.registry.registered() {
                if unit % self.shards == shard {
                    self.registry
                        .with_entry(unit, |e| e.health = UnitHealth::Degraded);
                    self.metrics
                        .record_degraded(unit, format!("shard {shard} failed: {reason}"));
                }
            }
            return;
        }
        // Rebuild synchronously: `build_seed(revive=true)` restores every
        // registered unit of this shard from snapshot + WAL suffix and
        // resets the registry expected ticks to the recovered positions.
        let (sender, cell) = Self::launch(
            &self.factory,
            shard,
            self.shards,
            self.channel_cap,
            Arc::clone(&seat.beat),
            true,
        );
        // Swapping drops the old generation's sender; a fenced-but-alive
        // worker blocked on `recv` wakes on the disconnect and exits.
        *seat.sender.lock_clean() = sender;
        seat.beat.reset();
        *seat.cell.lock_clean() = Some(cell);
        seat.restarting.store(false, Ordering::SeqCst);
        self.metrics
            .record_shard_restart(shard, wedge.is_some(), reason);
    }

    /// Clean shutdown: stop the monitor, drain the workers via `Stop`
    /// jobs (final snapshots + WAL sync happen in the workers), fence and
    /// abandon anything that will not finish.
    pub fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        if let Some(monitor) = self.monitor.lock_clean().take() {
            let _ = monitor.join();
        }
        for seat in &self.seats {
            let deadline = Instant::now() + SEND_DEADLINE;
            loop {
                let result = {
                    let sender = seat.sender.lock_clean();
                    sender.try_send(Job::Stop)
                };
                match result {
                    Ok(()) | Err(TrySendError::Disconnected(_)) => break,
                    Err(TrySendError::Full(_)) if Instant::now() >= deadline => break,
                    Err(TrySendError::Full(_)) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        }
        for seat in &self.seats {
            let Some(cell) = seat.cell.lock_clean().take() else {
                continue;
            };
            let deadline = Instant::now() + STOP_DEADLINE;
            while !cell.handle.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            if cell.handle.is_finished() {
                let _ = cell.handle.join();
            } else {
                // Wedged past the deadline: fence it (skips final
                // snapshots) and leave the thread to die with the process.
                cell.fence.store(true, Ordering::SeqCst);
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked: (non-string payload)".to_string()
    }
}
