//! Hand-rolled argument parsing (the workspace's dependency policy keeps
//! the CLI free of an argument-parser crate).

use dbcatcher_core::config::CorrelationBackend;
use dbcatcher_core::ingest::GapPolicy;
use dbcatcher_sim::faults::FaultPreset;
use dbcatcher_sim::CorrelatedKind;
use dbcatcher_workload::dataset::{Subset, WorkloadKind};

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
dbcatcher — cloud-database anomaly detection (DBCatcher, ICDE 2023)

USAGE:
  dbcatcher simulate  --kind <tencent|sysbench|tpcc> [--subset <mixed|irregular|periodic>]
                      [--units N] [--ticks T] [--seed S] [--anomaly-ratio R] --out <ds.json>
  dbcatcher simulate  --correlated <noisy-neighbour|shared-storage|rolling-regression>
                      [--units N] [--group G] [--ticks T] [--seed S] --out <ds.json>
  dbcatcher simulate  --chaos [--seed S] [--units N] [--ticks T] [--boots B] [--no-crash]
                      [--out <events.jsonl>] [--verdicts <verdicts.jsonl>] [--no-shrink]
  dbcatcher detect    --data <ds.json> [--learn] [--train-frac F] [--out <verdicts.jsonl>]
                      [--backend <naive|incremental>]
                      [--faults <none|standard|heavy>] [--fault-seed S]
                      [--gap-policy <hold-last|linear-fill|mark-missing>]
  dbcatcher evaluate  --data <ds.json> [--learn] [--train-frac F]
                      [--backend <naive|incremental>]
                      [--faults <none|standard|heavy>] [--fault-seed S]
                      [--gap-policy <hold-last|linear-fill|mark-missing>]
  dbcatcher export-csv --data <ds.json> [--unit I] --out <unit.csv>
  dbcatcher serve     --listen <addr> [--units N] [--shards S] [--queue-cap Q]
                      [--snapshot-dir D] [--snapshot-every T] [--resume D]
                      [--wal-dir D] [--fsync-every N] [--shard-restart-limit N]
                      [--wedge-timeout-ms T] [--backend <naive|incremental>]
                      [--gap-policy <hold-last|linear-fill|mark-missing>]
                      [--port-file <path>]
                      [--hierarchy] [--units-per-cluster N] [--clusters-per-region N]
                      [--scope-out <scope.jsonl>]
  dbcatcher emit      --connect <addr> --data <ds.json> [--rate R] [--window W]
                      [--faults <none|standard|heavy>] [--fault-seed S]
                      [--out <verdicts.jsonl>] [--stop-server]
  dbcatcher stats     --connect <addr>
  dbcatcher reset-unit --connect <addr> --unit I
  dbcatcher analyze-fleet --verdicts <hierarchy.wal> [--units N]
                      [--units-per-cluster N] [--clusters-per-region N]
                      [--out <scope.jsonl>]
  dbcatcher help

--faults corrupts the telemetry stream on its way into the detector
(dropped frames, NaN bursts, duplicated ticks, stuck sensors, collector
outages); --gap-policy selects how the ingest layer repairs the gaps.

serve runs the online daemon (newline-delimited JSON over TCP); emit
streams a dataset to it and collects the verdicts; stats prints one
metrics snapshot as JSON. --listen 127.0.0.1:0 picks an ephemeral port
(written to --port-file for scripts). --wal-dir enables the per-shard
write-ahead log: every accepted tick is durable before detection, so a
restart with --resume replays snapshot + WAL and loses nothing
(--fsync-every batches fsyncs). A supervisor restarts panicked or wedged
shard workers (no progress for --wedge-timeout-ms with work queued) up to
--shard-restart-limit times per shard; past that the
shard's units are hard-degraded and reset-unit re-admits a stream on
probation.

simulate --correlated generates a fleet dataset sharing one scheduled
correlated failure: the first --group unit ids form the blast radius
(default: all but one unit, keeping a clean bystander) and the rest run
clean. serve --hierarchy turns on fleet-scope detection: per-unit
verdicts roll up a unit -> cluster -> region -> fleet topology, scope
alarms (with CUSUM incident class and a blamed epicenter) are broadcast
to subscribers, every consumed verdict is appended to
<wal-dir>/hierarchy.wal, and a clean shutdown writes the scope stream
to --scope-out. analyze-fleet replays such a verdict JSONL offline and
prints the byte-identical scope stream (--units defaults to the highest
unit id seen + 1).

simulate --chaos runs the deterministic whole-system chaos simulator:
one seed (--seed or the SEED env var) draws unit topology, anomaly and
collector-fault schedules, producer churn and daemon kill/resume points,
executes them against a real in-process daemon and property-checks the
verdicts against an offline replay. Same seed, same bytes. On failure the
minimized schedule is printed to stderr and the exit code is nonzero.
";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a dataset and write it as JSON.
    Simulate {
        /// Benchmark family.
        kind: WorkloadKind,
        /// Periodicity subset.
        subset: Subset,
        /// Number of units.
        units: usize,
        /// Ticks per unit.
        ticks: usize,
        /// Master seed.
        seed: u64,
        /// Target fraction of anomalous database-ticks.
        anomaly_ratio: f64,
        /// Correlated-failure fleet mode: the scheduled failure kind.
        correlated: Option<CorrelatedKind>,
        /// Units in the correlated group (first `group` unit ids);
        /// `0` = auto (all but one unit, at least two).
        group: usize,
        /// Output path.
        out: String,
    },
    /// Run the deterministic whole-system chaos simulator.
    Chaos {
        /// Seed; `None` falls back to the `SEED` env var at run time.
        seed: Option<u64>,
        /// Most units in the plan.
        units: usize,
        /// Most ticks per unit.
        ticks: usize,
        /// Most daemon boots (restarts).
        boots: usize,
        /// Disallow simulated mid-tick kills.
        no_crash: bool,
        /// Optional event-log path (stdout when absent).
        out: Option<String>,
        /// Optional canonical verdict-stream path.
        verdicts: Option<String>,
        /// Skip schedule minimization when the run fails.
        no_shrink: bool,
    },
    /// Stream a dataset through the detector, emitting verdicts.
    Detect {
        /// Dataset path.
        data: String,
        /// Learn thresholds on a leading fraction first.
        learn: bool,
        /// Fraction used for threshold learning when `--learn` is given.
        train_frac: f64,
        /// Optional JSONL output path (stdout when absent).
        out: Option<String>,
        /// Correlation engine.
        backend: CorrelationBackend,
        /// Collector faults injected into the telemetry stream.
        faults: FaultPreset,
        /// Seed for the fault injector's dice.
        fault_seed: u64,
        /// Gap-repair policy of the ingest layer.
        gap_policy: GapPolicy,
    },
    /// Detect and score against the dataset's ground truth.
    Evaluate {
        /// Dataset path.
        data: String,
        /// Learn thresholds on a leading fraction first.
        learn: bool,
        /// Fraction used for threshold learning.
        train_frac: f64,
        /// Correlation engine.
        backend: CorrelationBackend,
        /// Collector faults injected into the telemetry stream.
        faults: FaultPreset,
        /// Seed for the fault injector's dice.
        fault_seed: u64,
        /// Gap-repair policy of the ingest layer.
        gap_policy: GapPolicy,
    },
    /// Run the online detection daemon.
    Serve {
        /// Listen address (`host:port`; port `0` = ephemeral).
        listen: String,
        /// Maximum unit id is `units - 1`.
        units: usize,
        /// Shard worker threads (`0` = auto).
        shards: usize,
        /// Per-unit bounded ingress queue depth.
        queue_cap: usize,
        /// Directory for periodic detector snapshots.
        snapshot_dir: Option<String>,
        /// Snapshot every N ingested ticks per unit.
        snapshot_every: u64,
        /// Directory to restore unit snapshots from at Hello time.
        resume: Option<String>,
        /// Root directory for per-shard write-ahead logs.
        wal_dir: Option<String>,
        /// Batch this many WAL appends per fsync.
        fsync_every: u64,
        /// Supervisor restarts tolerated per shard before it is failed.
        shard_restart_limit: u32,
        /// Milliseconds without shard progress (with work queued) before the
        /// supervisor declares a wedge and replaces the worker.
        wedge_timeout_ms: u64,
        /// Correlation engine.
        backend: CorrelationBackend,
        /// Gap-repair policy of the ingest layer.
        gap_policy: GapPolicy,
        /// File to write the bound address to (ephemeral-port scripting).
        port_file: Option<String>,
        /// Enable the fleet-scope hierarchy feed.
        hierarchy: bool,
        /// Consecutive units per cluster in the rollup topology.
        units_per_cluster: usize,
        /// Consecutive clusters per region in the rollup topology.
        clusters_per_region: usize,
        /// Scope-verdict stream written on clean shutdown.
        scope_out: Option<String>,
    },
    /// Stream a dataset to a running daemon and collect verdicts.
    Emit {
        /// Daemon address.
        connect: String,
        /// Dataset path.
        data: String,
        /// Ticks per second per unit (`0` = full speed).
        rate: f64,
        /// Max unacknowledged ticks in flight.
        window: usize,
        /// Collector faults injected into the stream before sending.
        faults: FaultPreset,
        /// Seed for the fault injector's dice.
        fault_seed: u64,
        /// Optional JSONL output path (stdout when absent).
        out: Option<String>,
        /// Ask the daemon to shut down after the stream completes.
        stop_server: bool,
    },
    /// Print one daemon metrics snapshot as JSON.
    Stats {
        /// Daemon address.
        connect: String,
    },
    /// Re-admit a hard-degraded unit (it restarts on probation).
    ResetUnit {
        /// Daemon address.
        connect: String,
        /// Unit index.
        unit: usize,
    },
    /// Replay a unit-verdict JSONL through the hierarchy engine offline.
    AnalyzeFleet {
        /// Unit-verdict JSONL path (a daemon's `hierarchy.wal` or any
        /// stream in the same format).
        verdicts: String,
        /// Fleet roster size (`0` = highest unit id seen + 1).
        units: usize,
        /// Consecutive units per cluster in the rollup topology.
        units_per_cluster: usize,
        /// Consecutive clusters per region in the rollup topology.
        clusters_per_region: usize,
        /// Optional scope-stream output path (stdout when absent).
        out: Option<String>,
    },
    /// Export one unit as CSV.
    ExportCsv {
        /// Dataset path.
        data: String,
        /// Unit index.
        unit: usize,
        /// Output path.
        out: String,
    },
    /// Print usage.
    Help,
}

fn value<'a>(argv: &'a [String], flag: &str) -> Option<&'a str> {
    argv.windows(2)
        .find(|w| w[0] == flag)
        .map(|w| w[1].as_str())
}

fn parse_backend(argv: &[String]) -> Result<CorrelationBackend, String> {
    match value(argv, "--backend") {
        None => Ok(CorrelationBackend::default()),
        Some("naive") => Ok(CorrelationBackend::Naive),
        Some("incremental") => Ok(CorrelationBackend::Incremental),
        Some(other) => Err(format!("unknown backend: {other}")),
    }
}

fn parse_num<T: std::str::FromStr>(argv: &[String], flag: &str, default: T) -> Result<T, String> {
    match value(argv, flag) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value for {flag}: {raw}")),
    }
}

/// Parses an argument vector (without the program name).
///
/// # Errors
/// A human-readable message for unknown commands, bad flags or missing
/// required arguments.
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let Some(command) = argv.first() else {
        return Err("missing command".into());
    };
    let rest = &argv[1..];
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "simulate" if rest.iter().any(|a| a == "--chaos") => Ok(Command::Chaos {
            seed: match value(rest, "--seed") {
                None => None,
                Some(raw) => Some(
                    raw.parse()
                        .map_err(|_| format!("invalid value for --seed: {raw}"))?,
                ),
            },
            units: parse_num(rest, "--units", 3)?,
            ticks: parse_num(rest, "--ticks", 240)?,
            boots: parse_num(rest, "--boots", 3)?,
            no_crash: rest.iter().any(|a| a == "--no-crash"),
            out: value(rest, "--out").map(str::to_string),
            verdicts: value(rest, "--verdicts").map(str::to_string),
            no_shrink: rest.iter().any(|a| a == "--no-shrink"),
        }),
        "simulate" => {
            let kind = match value(rest, "--kind").unwrap_or("tencent") {
                "tencent" => WorkloadKind::Tencent,
                "sysbench" => WorkloadKind::Sysbench,
                "tpcc" => WorkloadKind::Tpcc,
                other => return Err(format!("unknown workload kind: {other}")),
            };
            let subset = match value(rest, "--subset").unwrap_or("mixed") {
                "mixed" => Subset::Mixed,
                "irregular" => Subset::Irregular,
                "periodic" => Subset::Periodic,
                other => return Err(format!("unknown subset: {other}")),
            };
            let correlated = match value(rest, "--correlated") {
                None => None,
                Some(name) => Some(
                    CorrelatedKind::parse(name)
                        .ok_or_else(|| format!("unknown correlated kind: {name}"))?,
                ),
            };
            Ok(Command::Simulate {
                kind,
                subset,
                units: parse_num(rest, "--units", 4)?,
                ticks: parse_num(rest, "--ticks", 400)?,
                seed: parse_num(rest, "--seed", 1)?,
                anomaly_ratio: parse_num(rest, "--anomaly-ratio", 0.035)?,
                correlated,
                group: parse_num(rest, "--group", 0)?,
                out: value(rest, "--out")
                    .ok_or("simulate requires --out <path>")?
                    .to_string(),
            })
        }
        "detect" => Ok(Command::Detect {
            data: value(rest, "--data")
                .ok_or("detect requires --data <path>")?
                .to_string(),
            learn: rest.iter().any(|a| a == "--learn"),
            train_frac: parse_num(rest, "--train-frac", 0.5)?,
            out: value(rest, "--out").map(str::to_string),
            backend: parse_backend(rest)?,
            faults: parse_num(rest, "--faults", FaultPreset::None)?,
            fault_seed: parse_num(rest, "--fault-seed", 7)?,
            gap_policy: parse_num(rest, "--gap-policy", GapPolicy::default())?,
        }),
        "evaluate" => Ok(Command::Evaluate {
            data: value(rest, "--data")
                .ok_or("evaluate requires --data <path>")?
                .to_string(),
            learn: rest.iter().any(|a| a == "--learn"),
            train_frac: parse_num(rest, "--train-frac", 0.5)?,
            backend: parse_backend(rest)?,
            faults: parse_num(rest, "--faults", FaultPreset::None)?,
            fault_seed: parse_num(rest, "--fault-seed", 7)?,
            gap_policy: parse_num(rest, "--gap-policy", GapPolicy::default())?,
        }),
        "serve" => Ok(Command::Serve {
            listen: value(rest, "--listen")
                .ok_or("serve requires --listen <addr>")?
                .to_string(),
            units: parse_num(rest, "--units", 64)?,
            shards: parse_num(rest, "--shards", 0)?,
            queue_cap: parse_num(rest, "--queue-cap", 256)?,
            snapshot_dir: value(rest, "--snapshot-dir").map(str::to_string),
            snapshot_every: parse_num(rest, "--snapshot-every", 64)?,
            resume: value(rest, "--resume").map(str::to_string),
            wal_dir: value(rest, "--wal-dir").map(str::to_string),
            fsync_every: parse_num(rest, "--fsync-every", 8)?,
            shard_restart_limit: parse_num(rest, "--shard-restart-limit", 3)?,
            wedge_timeout_ms: parse_num(rest, "--wedge-timeout-ms", 2000)?,
            backend: parse_backend(rest)?,
            gap_policy: parse_num(rest, "--gap-policy", GapPolicy::default())?,
            port_file: value(rest, "--port-file").map(str::to_string),
            hierarchy: rest.iter().any(|a| a == "--hierarchy"),
            units_per_cluster: parse_num(rest, "--units-per-cluster", 4)?,
            clusters_per_region: parse_num(rest, "--clusters-per-region", 4)?,
            scope_out: value(rest, "--scope-out").map(str::to_string),
        }),
        "emit" => Ok(Command::Emit {
            connect: value(rest, "--connect")
                .ok_or("emit requires --connect <addr>")?
                .to_string(),
            data: value(rest, "--data")
                .ok_or("emit requires --data <path>")?
                .to_string(),
            rate: parse_num(rest, "--rate", 0.0)?,
            window: parse_num(rest, "--window", 32)?,
            faults: parse_num(rest, "--faults", FaultPreset::None)?,
            fault_seed: parse_num(rest, "--fault-seed", 7)?,
            out: value(rest, "--out").map(str::to_string),
            stop_server: rest.iter().any(|a| a == "--stop-server"),
        }),
        "stats" => Ok(Command::Stats {
            connect: value(rest, "--connect")
                .ok_or("stats requires --connect <addr>")?
                .to_string(),
        }),
        "reset-unit" => Ok(Command::ResetUnit {
            connect: value(rest, "--connect")
                .ok_or("reset-unit requires --connect <addr>")?
                .to_string(),
            unit: value(rest, "--unit")
                .ok_or("reset-unit requires --unit <index>")?
                .parse()
                .map_err(|_| "invalid value for --unit".to_string())?,
        }),
        "analyze-fleet" => Ok(Command::AnalyzeFleet {
            verdicts: value(rest, "--verdicts")
                .ok_or("analyze-fleet requires --verdicts <path>")?
                .to_string(),
            units: parse_num(rest, "--units", 0)?,
            units_per_cluster: parse_num(rest, "--units-per-cluster", 4)?,
            clusters_per_region: parse_num(rest, "--clusters-per-region", 4)?,
            out: value(rest, "--out").map(str::to_string),
        }),
        "export-csv" => Ok(Command::ExportCsv {
            data: value(rest, "--data")
                .ok_or("export-csv requires --data <path>")?
                .to_string(),
            unit: parse_num(rest, "--unit", 0)?,
            out: value(rest, "--out")
                .ok_or("export-csv requires --out <path>")?
                .to_string(),
        }),
        other => Err(format!("unknown command: {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn simulate_full() {
        let cmd = parse(&argv(
            "simulate --kind sysbench --subset periodic --units 6 --ticks 300 --seed 9 \
             --anomaly-ratio 0.05 --out ds.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Simulate {
                kind: WorkloadKind::Sysbench,
                subset: Subset::Periodic,
                units: 6,
                ticks: 300,
                seed: 9,
                anomaly_ratio: 0.05,
                correlated: None,
                group: 0,
                out: "ds.json".into(),
            }
        );
    }

    #[test]
    fn simulate_correlated() {
        let cmd = parse(&argv(
            "simulate --correlated shared-storage --units 3 --group 2 --ticks 200 \
             --seed 5 --out fleet.json",
        ))
        .unwrap();
        match cmd {
            Command::Simulate {
                correlated,
                units,
                group,
                ticks,
                seed,
                ..
            } => {
                assert_eq!(correlated, Some(CorrelatedKind::SharedStorageStall));
                assert_eq!((units, group, ticks, seed), (3, 2, 200, 5));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("simulate --correlated avalanche --out x.json")).is_err());
    }

    #[test]
    fn simulate_defaults() {
        let cmd = parse(&argv("simulate --out x.json")).unwrap();
        match cmd {
            Command::Simulate {
                kind, units, ticks, ..
            } => {
                assert_eq!(kind, WorkloadKind::Tencent);
                assert_eq!(units, 4);
                assert_eq!(ticks, 400);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn simulate_requires_out() {
        assert!(parse(&argv("simulate --kind tpcc")).is_err());
    }

    #[test]
    fn simulate_chaos_full() {
        let cmd = parse(&argv(
            "simulate --chaos --seed 17 --units 2 --ticks 160 --boots 2 --no-crash \
             --out e.jsonl --verdicts v.jsonl --no-shrink",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Chaos {
                seed: Some(17),
                units: 2,
                ticks: 160,
                boots: 2,
                no_crash: true,
                out: Some("e.jsonl".into()),
                verdicts: Some("v.jsonl".into()),
                no_shrink: true,
            }
        );
    }

    #[test]
    fn simulate_chaos_defaults_leave_seed_to_env() {
        let cmd = parse(&argv("simulate --chaos")).unwrap();
        assert_eq!(
            cmd,
            Command::Chaos {
                seed: None,
                units: 3,
                ticks: 240,
                boots: 3,
                no_crash: false,
                out: None,
                verdicts: None,
                no_shrink: false,
            }
        );
        assert!(parse(&argv("simulate --chaos --seed banana")).is_err());
    }

    #[test]
    fn detect_and_evaluate() {
        let cmd = parse(&argv("detect --data ds.json --learn --out v.jsonl")).unwrap();
        assert_eq!(
            cmd,
            Command::Detect {
                data: "ds.json".into(),
                learn: true,
                train_frac: 0.5,
                out: Some("v.jsonl".into()),
                backend: CorrelationBackend::Incremental,
                faults: FaultPreset::None,
                fault_seed: 7,
                gap_policy: GapPolicy::HoldLast,
            }
        );
        let cmd = parse(&argv("evaluate --data ds.json --train-frac 0.6")).unwrap();
        assert_eq!(
            cmd,
            Command::Evaluate {
                data: "ds.json".into(),
                learn: false,
                train_frac: 0.6,
                backend: CorrelationBackend::Incremental,
                faults: FaultPreset::None,
                fault_seed: 7,
                gap_policy: GapPolicy::HoldLast,
            }
        );
    }

    #[test]
    fn fault_and_gap_flags() {
        let cmd = parse(&argv(
            "detect --data ds.json --faults heavy --fault-seed 99 --gap-policy linear-fill",
        ))
        .unwrap();
        match cmd {
            Command::Detect {
                faults,
                fault_seed,
                gap_policy,
                ..
            } => {
                assert_eq!(faults, FaultPreset::Heavy);
                assert_eq!(fault_seed, 99);
                assert_eq!(gap_policy, GapPolicy::LinearFill);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&argv(
            "evaluate --data ds.json --faults standard --gap-policy mark-missing",
        ))
        .unwrap();
        match cmd {
            Command::Evaluate {
                faults, gap_policy, ..
            } => {
                assert_eq!(faults, FaultPreset::Standard);
                assert_eq!(gap_policy, GapPolicy::MarkMissing);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("detect --data ds.json --faults catastrophic")).is_err());
        assert!(parse(&argv("detect --data ds.json --gap-policy zero-fill")).is_err());
    }

    #[test]
    fn backend_flag() {
        let cmd = parse(&argv("detect --data ds.json --backend naive")).unwrap();
        match cmd {
            Command::Detect { backend, .. } => assert_eq!(backend, CorrelationBackend::Naive),
            other => panic!("{other:?}"),
        }
        let cmd = parse(&argv("evaluate --data ds.json --backend incremental")).unwrap();
        match cmd {
            Command::Evaluate { backend, .. } => {
                assert_eq!(backend, CorrelationBackend::Incremental)
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("detect --data ds.json --backend turbo")).is_err());
    }

    #[test]
    fn export_csv() {
        let cmd = parse(&argv("export-csv --data ds.json --unit 2 --out u.csv")).unwrap();
        assert_eq!(
            cmd,
            Command::ExportCsv {
                data: "ds.json".into(),
                unit: 2,
                out: "u.csv".into(),
            }
        );
    }

    #[test]
    fn serve_and_emit() {
        let cmd = parse(&argv(
            "serve --listen 127.0.0.1:0 --units 8 --shards 2 --queue-cap 16 \
             --snapshot-dir snaps --snapshot-every 32 --resume snaps \
             --wal-dir wal --fsync-every 4 --shard-restart-limit 5 --wedge-timeout-ms 750 \
             --port-file p.txt --hierarchy --units-per-cluster 2 --clusters-per-region 2 \
             --scope-out scope.jsonl",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                listen: "127.0.0.1:0".into(),
                units: 8,
                shards: 2,
                queue_cap: 16,
                snapshot_dir: Some("snaps".into()),
                snapshot_every: 32,
                resume: Some("snaps".into()),
                wal_dir: Some("wal".into()),
                fsync_every: 4,
                shard_restart_limit: 5,
                wedge_timeout_ms: 750,
                backend: CorrelationBackend::Incremental,
                gap_policy: GapPolicy::HoldLast,
                port_file: Some("p.txt".into()),
                hierarchy: true,
                units_per_cluster: 2,
                clusters_per_region: 2,
                scope_out: Some("scope.jsonl".into()),
            }
        );
        let cmd = parse(&argv(
            "emit --connect 127.0.0.1:7070 --data ds.json --rate 50 --window 8 \
             --faults standard --out v.jsonl --stop-server",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Emit {
                connect: "127.0.0.1:7070".into(),
                data: "ds.json".into(),
                rate: 50.0,
                window: 8,
                faults: FaultPreset::Standard,
                fault_seed: 7,
                out: Some("v.jsonl".into()),
                stop_server: true,
            }
        );
        assert_eq!(
            parse(&argv("stats --connect 127.0.0.1:7070")).unwrap(),
            Command::Stats {
                connect: "127.0.0.1:7070".into()
            }
        );
        assert_eq!(
            parse(&argv("reset-unit --connect 127.0.0.1:7070 --unit 3")).unwrap(),
            Command::ResetUnit {
                connect: "127.0.0.1:7070".into(),
                unit: 3,
            }
        );
        assert!(parse(&argv("serve --units 4")).is_err());
        assert!(parse(&argv("emit --connect x")).is_err());
        assert!(parse(&argv("stats")).is_err());
        assert!(parse(&argv("reset-unit --connect x")).is_err());
    }

    #[test]
    fn serve_durability_defaults() {
        let cmd = parse(&argv("serve --listen 127.0.0.1:0")).unwrap();
        match cmd {
            Command::Serve {
                wal_dir,
                fsync_every,
                shard_restart_limit,
                wedge_timeout_ms,
                hierarchy,
                units_per_cluster,
                clusters_per_region,
                scope_out,
                ..
            } => {
                assert_eq!(wal_dir, None);
                assert_eq!(fsync_every, 8);
                assert_eq!(shard_restart_limit, 3);
                assert_eq!(wedge_timeout_ms, 2000);
                assert!(!hierarchy);
                assert_eq!(units_per_cluster, 4);
                assert_eq!(clusters_per_region, 4);
                assert_eq!(scope_out, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn analyze_fleet() {
        let cmd = parse(&argv(
            "analyze-fleet --verdicts wal/hierarchy.wal --units 6 --units-per-cluster 3 \
             --clusters-per-region 2 --out scope.jsonl",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::AnalyzeFleet {
                verdicts: "wal/hierarchy.wal".into(),
                units: 6,
                units_per_cluster: 3,
                clusters_per_region: 2,
                out: Some("scope.jsonl".into()),
            }
        );
        let cmd = parse(&argv("analyze-fleet --verdicts v.jsonl")).unwrap();
        assert_eq!(
            cmd,
            Command::AnalyzeFleet {
                verdicts: "v.jsonl".into(),
                units: 0,
                units_per_cluster: 4,
                clusters_per_region: 4,
                out: None,
            }
        );
        assert!(parse(&argv("analyze-fleet --units 4")).is_err());
    }

    #[test]
    fn errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("simulate --kind nosql --out x")).is_err());
        assert!(parse(&argv("simulate --units abc --out x")).is_err());
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
    }
}
