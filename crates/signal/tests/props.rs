//! Property-based tests for the signal substrate.

use dbcatcher_signal::dct::{dct2, dct3};
use dbcatcher_signal::fft::{dft, irfft_truncated, rfft_padded};
use dbcatcher_signal::filters::{detrend_linear, diff, ewma, moving_average, moving_median};
use dbcatcher_signal::linalg::{least_squares, solve};
use dbcatcher_signal::normalize::{min_max, z_score};
use dbcatcher_signal::stats::{l2_norm, mad, mean, median, quantile, std_dev};
use proptest::prelude::*;

fn series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e5f64..1e5, 1..80)
}

proptest! {
    /// FFT round trip recovers the signal.
    #[test]
    fn fft_round_trip(xs in series()) {
        let spec = rfft_padded(&xs).unwrap();
        let back = irfft_truncated(&spec, xs.len()).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    /// Fast FFT agrees with the O(n²) DFT on power-of-two lengths.
    #[test]
    fn fft_matches_dft(xs in prop::collection::vec(-1e3f64..1e3, 1..5)) {
        // build a 16-point series from the seed values
        let padded: Vec<f64> = (0..16).map(|i| xs[i % xs.len()] * (i as f64 * 0.3).cos()).collect();
        let fast = rfft_padded(&padded).unwrap();
        let slow = dft(&padded).unwrap();
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert!((f.re - s.re).abs() < 1e-6);
            prop_assert!((f.im - s.im).abs() < 1e-6);
        }
    }

    /// DCT round trip and energy preservation.
    #[test]
    fn dct_round_trip_and_parseval(xs in series()) {
        let coeffs = dct2(&xs).unwrap();
        let back = dct3(&coeffs).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
        let te: f64 = xs.iter().map(|x| x * x).sum();
        let fe: f64 = coeffs.iter().map(|c| c * c).sum();
        prop_assert!((te - fe).abs() < 1e-5 * (1.0 + te));
    }

    /// Summary statistics basic identities.
    #[test]
    fn stats_identities(xs in series()) {
        let m = mean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        let med = median(&xs);
        prop_assert!(med >= lo && med <= hi);
        prop_assert!(std_dev(&xs) >= 0.0);
        prop_assert!(mad(&xs) >= 0.0);
        prop_assert!(l2_norm(&xs) >= 0.0);
        // quantile endpoints
        prop_assert!((quantile(&xs, 0.0).unwrap() - lo).abs() < 1e-9);
        prop_assert!((quantile(&xs, 1.0).unwrap() - hi).abs() < 1e-9);
    }

    /// Normalisation contracts.
    #[test]
    fn normalisation_contracts(xs in series()) {
        let mm = min_max(&xs);
        prop_assert!(mm.iter().all(|v| (0.0..=1.0).contains(v)));
        let z = z_score(&xs);
        if std_dev(&xs) > 1e-9 {
            prop_assert!(mean(&z).abs() < 1e-6);
            prop_assert!((std_dev(&z) - 1.0).abs() < 1e-6);
        }
    }

    /// Filters preserve length (except diff) and bounds.
    #[test]
    fn filter_contracts(xs in series(), w in 1usize..9, alpha in 0.01f64..1.0) {
        prop_assert_eq!(moving_average(&xs, w).unwrap().len(), xs.len());
        let mm = moving_median(&xs, w).unwrap();
        prop_assert_eq!(mm.len(), xs.len());
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mm.iter().all(|&v| v >= lo - 1e-9 && v <= hi + 1e-9));
        let e = ewma(&xs, alpha).unwrap();
        prop_assert_eq!(e.len(), xs.len());
        prop_assert!(e.iter().all(|&v| v >= lo - 1e-9 && v <= hi + 1e-9));
        prop_assert_eq!(diff(&xs).len(), xs.len().saturating_sub(1));
        // detrended residuals of a pure line are ~zero
        let line: Vec<f64> = (0..xs.len()).map(|i| 3.0 * i as f64 - 7.0).collect();
        prop_assert!(detrend_linear(&line).iter().all(|r| r.abs() < 1e-6));
    }

    /// solve() actually solves: residual of A x − b vanishes for
    /// well-conditioned diagonally dominant systems.
    #[test]
    fn linear_solver_residual(
        diag in prop::collection::vec(1.0f64..10.0, 2..6),
        rhs_seed in prop::collection::vec(-5.0f64..5.0, 2..6),
    ) {
        let n = diag.len().min(rhs_seed.len());
        let a: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| if i == j { diag[i] + n as f64 } else { 0.3 })
                    .collect()
            })
            .collect();
        let b: Vec<f64> = rhs_seed[..n].to_vec();
        let x = solve(&a, &b).expect("diagonally dominant");
        for i in 0..n {
            let r: f64 = (0..n).map(|j| a[i][j] * x[j]).sum::<f64>() - b[i];
            prop_assert!(r.abs() < 1e-8, "residual {r}");
        }
        // least squares on a square nonsingular system agrees with solve
        let ls = least_squares(&a, &b).expect("solvable");
        for (u, v) in x.iter().zip(&ls) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }
}
