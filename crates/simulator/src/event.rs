//! Deterministic event log.
//!
//! The log is the simulator's reproducibility contract: two runs of the
//! same seed must produce **byte-identical** logs. Everything written
//! here is therefore derived from deterministic facts — the plan, the
//! offline oracle, canonical verdict digests and invariant verdicts.
//! Timing-dependent observables (reject counts, which worker tripped the
//! kill, poll samples) are diagnostics, not events; the harness routes
//! them to the failure details instead.

use crate::plan::{BootEnd, InjectionKind, ShardInjection, SimPlan};
use dbcatcher_serve::client::VerdictRecord;
use serde::Serialize;

/// A fully comparable image of one verdict: every score collapsed to a
/// bit pattern with NaN mapped to a single sentinel (non-participating
/// KPIs legitimately score NaN, and `NaN != NaN` would break equality).
pub type VerdictKey = (usize, u64, usize, u64, u64, String, usize, u32, Vec<u64>);

/// Builds the canonical key of a verdict record.
pub fn verdict_key(r: &VerdictRecord) -> VerdictKey {
    (
        r.unit,
        r.at_tick,
        r.verdict.db,
        r.verdict.start_tick,
        r.verdict.end_tick,
        format!("{:?}", r.verdict.state),
        r.verdict.window_size,
        r.verdict.expansions,
        r.verdict
            .scores
            .iter()
            .map(|s| if s.is_nan() { u64::MAX } else { s.to_bits() })
            .collect(),
    )
}

/// Sorts and dedups records into the canonical stream order
/// `(unit, at_tick, db, start_tick, …)`. Re-ingested ticks after a
/// restart re-emit bit-identical verdicts, so key-dedup removes exactly
/// the replay duplicates.
pub fn canonicalize(records: &[VerdictRecord]) -> Vec<VerdictRecord> {
    let mut keyed: Vec<(VerdictKey, VerdictRecord)> = records
        .iter()
        .map(|r| (verdict_key(r), r.clone()))
        .collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    keyed.dedup_by(|a, b| a.0 == b.0);
    keyed.into_iter().map(|(_, r)| r).collect()
}

/// One canonical verdict line (the `--verdicts` output format).
#[derive(Debug, Serialize)]
struct VerdictLine {
    unit: usize,
    at_tick: u64,
    db: usize,
    start_tick: u64,
    end_tick: u64,
    state: String,
    window_size: usize,
    expansions: u32,
    scores: Vec<f64>,
}

/// Renders one canonical verdict as a JSONL line.
pub fn verdict_line(r: &VerdictRecord) -> String {
    serde_json::to_string(&VerdictLine {
        unit: r.unit,
        at_tick: r.at_tick,
        db: r.verdict.db,
        start_tick: r.verdict.start_tick,
        end_tick: r.verdict.end_tick,
        state: format!("{:?}", r.verdict.state),
        window_size: r.verdict.window_size,
        expansions: r.verdict.expansions,
        scores: r.verdict.scores.clone(),
    })
    // dbclint: allow(panic-free) — serialising a plain in-memory struct through the vendored shim cannot fail.
    .expect("verdict line serialises")
}

/// FNV-1a digest over the canonical verdict lines — a compact stream
/// fingerprint for the event log.
pub fn verdict_digest(lines: &[String]) -> String {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for line in lines {
        for b in line.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash ^= u64::from(b'\n');
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{hash:016x}")
}

#[derive(Serialize)]
struct PlanEvent {
    event: &'static str,
    plan: SimPlan,
}

#[derive(Serialize)]
struct BootEvent {
    event: &'static str,
    index: usize,
    sessions: usize,
    crash: bool,
    after_ticks: u64,
    /// `"none"`, `"panic"` or `"wedge"` — the planned shard-failure
    /// injection for this boot, if any.
    injection: &'static str,
    /// Tick-job countdown of the injection (0 when `injection == "none"`).
    injection_after: u64,
}

#[derive(Serialize)]
struct UnitSummaryEvent {
    event: &'static str,
    unit: usize,
    databases: usize,
    ticks: usize,
    offline_verdicts: usize,
    non_voting: Vec<usize>,
}

#[derive(Serialize)]
struct InvariantEvent {
    event: &'static str,
    scope: String,
    name: String,
    ok: bool,
}

#[derive(Serialize)]
struct DigestEvent {
    event: &'static str,
    verdicts: usize,
    digest: String,
}

#[derive(Serialize)]
struct ScopeDigestEvent {
    event: &'static str,
    scope_verdicts: usize,
    digest: String,
}

#[derive(Serialize)]
struct ResultEvent {
    event: &'static str,
    ok: bool,
    failed_invariants: usize,
}

/// Ordered builder for the deterministic event log.
#[derive(Debug, Default)]
pub struct EventLog {
    lines: Vec<String>,
    failed: usize,
}

impl EventLog {
    fn push<T: Serialize>(&mut self, value: &T) {
        self.lines
            // dbclint: allow(panic-free) — serialising a plain in-memory struct through the vendored shim cannot fail.
            .push(serde_json::to_string(value).expect("event serialises"));
    }

    /// Records the full plan as the first event.
    pub fn plan(&mut self, plan: &SimPlan) {
        self.push(&PlanEvent {
            event: "plan",
            plan: plan.clone(),
        });
    }

    /// Records a boot boundary.
    pub fn boot(
        &mut self,
        index: usize,
        boot_sessions: usize,
        end: &BootEnd,
        injection: Option<ShardInjection>,
    ) {
        let (crash, after_ticks) = match end {
            BootEnd::CleanStop => (false, 0),
            BootEnd::Crash { after_ticks } => (true, *after_ticks),
        };
        let (injection, injection_after) = match injection {
            None => ("none", 0),
            Some(inj) => (
                match inj.kind {
                    InjectionKind::Panic => "panic",
                    InjectionKind::Wedge => "wedge",
                },
                inj.after_ticks,
            ),
        };
        self.push(&BootEvent {
            event: "boot",
            index,
            sessions: boot_sessions,
            crash,
            after_ticks,
            injection,
            injection_after,
        });
    }

    /// Records one unit's offline-oracle summary.
    pub fn unit_summary(
        &mut self,
        unit: usize,
        databases: usize,
        ticks: usize,
        offline_verdicts: usize,
        non_voting: Vec<usize>,
    ) {
        self.push(&UnitSummaryEvent {
            event: "unit_summary",
            unit,
            databases,
            ticks,
            offline_verdicts,
            non_voting,
        });
    }

    /// Records one invariant verdict.
    pub fn invariant(&mut self, scope: &str, name: &str, ok: bool) {
        if !ok {
            self.failed += 1;
        }
        self.push(&InvariantEvent {
            event: "invariant",
            scope: scope.to_string(),
            name: name.to_string(),
            ok,
        });
    }

    /// Records the canonical verdict-stream digest.
    pub fn digest(&mut self, verdicts: usize, digest: &str) {
        self.push(&DigestEvent {
            event: "verdict_stream",
            verdicts,
            digest: digest.to_string(),
        });
    }

    /// Records the canonical fleet-scope stream digest.
    pub fn scope_digest(&mut self, scope_verdicts: usize, digest: &str) {
        self.push(&ScopeDigestEvent {
            event: "scope_stream",
            scope_verdicts,
            digest: digest.to_string(),
        });
    }

    /// Records the final result and returns the finished log.
    pub fn finish(mut self) -> Vec<String> {
        let failed_invariants = self.failed;
        self.push(&ResultEvent {
            event: "result",
            ok: failed_invariants == 0,
            failed_invariants,
        });
        self.lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcatcher_core::pipeline::Verdict;
    use dbcatcher_core::state::DbState;

    fn record(unit: usize, at_tick: u64, db: usize) -> VerdictRecord {
        VerdictRecord {
            unit,
            at_tick,
            verdict: Verdict {
                db,
                start_tick: at_tick.saturating_sub(10),
                end_tick: at_tick,
                state: DbState::Healthy,
                window_size: 10,
                expansions: 0,
                scores: vec![0.9, f64::NAN],
            },
        }
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        let records = vec![record(1, 20, 0), record(0, 10, 1), record(1, 20, 0)];
        let canon = canonicalize(&records);
        assert_eq!(canon.len(), 2);
        assert_eq!((canon[0].unit, canon[0].at_tick), (0, 10));
        assert_eq!((canon[1].unit, canon[1].at_tick), (1, 20));
    }

    #[test]
    fn nan_scores_compare_equal_via_keys() {
        assert_eq!(verdict_key(&record(0, 5, 2)), verdict_key(&record(0, 5, 2)));
    }

    #[test]
    fn digest_is_stable_and_order_sensitive() {
        let a = vec!["x".to_string(), "y".to_string()];
        let b = vec!["y".to_string(), "x".to_string()];
        assert_eq!(verdict_digest(&a), verdict_digest(&a));
        assert_ne!(verdict_digest(&a), verdict_digest(&b));
    }
}
