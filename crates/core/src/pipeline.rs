//! The streaming detection pipeline (paper Fig. 6).
//!
//! [`DbCatcher`] wires the data-processing queues, the correlation
//! measurement, the level quantisation and the flexible-window state
//! machine into an online detector: call [`DbCatcher::ingest_tick`] once
//! per 5-second monitoring frame and collect the final verdicts it emits.
//!
//! Per-component wall-clock accounting ([`ComponentTiming`]) reproduces
//! the paper's §IV-D4 breakdown (correlation measurement ≈ 70 % of the
//! online cost, window observation ≈ 30 %).

use crate::config::{ConfigError, CorrelationBackend, DbCatcherConfig};
use crate::ingest::{IngestError, IngestReport, TelemetryHealth};
use crate::kcd::kcd_normalized;
use crate::kcd_incremental::IncrementalCorrelator;
use crate::levels::{aggregate_scores, level_row};
use crate::queues::KpiQueues;
use crate::scratch::{BatchEntry, TickScratch};
use crate::state::{determine_state, DbState};
use crate::window::{WindowAction, WindowTracker};
use dbcatcher_signal::normalize::min_max_in_place;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// A final (healthy/abnormal) judgement of one database over one window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Database index within the unit.
    pub db: usize,
    /// First tick of the judged window.
    pub start_tick: u64,
    /// One past the last tick of the judged window.
    pub end_tick: u64,
    /// The resolved state — never [`DbState::Observable`].
    pub state: DbState,
    /// Final window size in ticks.
    pub window_size: usize,
    /// How many times the window expanded before resolving.
    pub expansions: u32,
    /// Aggregated per-KPI correlation scores that produced the verdict
    /// (`NaN` where the database does not participate). These are the
    /// "judgment records" the adaptive threshold learner re-plays.
    pub scores: Vec<f64>,
}

/// Accumulated per-component wall-clock time (paper §IV-D4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComponentTiming {
    /// Time spent computing KCD scores / correlation matrices.
    pub correlation: Duration,
    /// Time spent on window observation (levels, state, bookkeeping).
    pub observation: Duration,
}

/// The online detector for one database unit.
#[derive(Debug, Clone)]
pub struct DbCatcher {
    config: DbCatcherConfig,
    num_dbs: usize,
    queues: KpiQueues,
    /// `Some` iff the configured backend is [`CorrelationBackend::Incremental`].
    correlator: Option<IncrementalCorrelator>,
    trackers: Vec<WindowTracker>,
    /// Telemetry health ledger (gap repair, staleness, non-voting state).
    health: TelemetryHealth,
    /// Reusable per-tick buffers; not part of the persisted state.
    scratch: TickScratch,
    timing: ComponentTiming,
    window_size_sum: u64,
    verdict_count: u64,
}

impl DbCatcher {
    /// Creates a detector for a unit of `num_dbs` databases.
    ///
    /// # Panics
    /// Panics when [`Self::try_new`] would return an error.
    pub fn new(config: DbCatcherConfig, num_dbs: usize) -> Self {
        // dbclint: allow(panic-free) — documented panicking wrapper; try_new is the fallible form.
        Self::try_new(config, num_dbs).expect("invalid DbCatcher configuration")
    }

    /// Fallible constructor: validates the configuration instead of
    /// panicking.
    ///
    /// # Errors
    /// The first [`ConfigError`] found, including [`ConfigError::NoDatabases`]
    /// for an empty unit.
    pub fn try_new(config: DbCatcherConfig, num_dbs: usize) -> Result<Self, ConfigError> {
        config.validate()?;
        if num_dbs == 0 {
            return Err(ConfigError::NoDatabases);
        }
        let capacity = config.max_window * 2 + config.initial_window;
        let queues = KpiQueues::new(num_dbs, config.num_kpis, capacity);
        let correlator = match config.backend {
            CorrelationBackend::Naive => None,
            CorrelationBackend::Incremental => Some(IncrementalCorrelator::new(
                num_dbs,
                config.num_kpis,
                capacity,
            )),
        };
        let trackers = (0..num_dbs)
            .map(|_| WindowTracker::new(0, config.initial_window))
            // dbclint: allow(hot-path-alloc) — one-time tracker allocation at construction.
            .collect();
        let health = TelemetryHealth::new(num_dbs, config.num_kpis);
        Ok(Self {
            config,
            num_dbs,
            queues,
            correlator,
            trackers,
            health,
            scratch: TickScratch::new(),
            timing: ComponentTiming::default(),
            window_size_sum: 0,
            verdict_count: 0,
        })
    }

    /// Installs a participation mask (`mask[kpi][db]`, Table II
    /// semantics).
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn with_participation(mut self, mask: Vec<Vec<bool>>) -> Self {
        assert_eq!(mask.len(), self.config.num_kpis, "mask KPI arity mismatch");
        for row in &mask {
            assert_eq!(row.len(), self.num_dbs, "mask database arity mismatch");
        }
        self.config.participation = Some(mask);
        self
    }

    /// Current configuration (the feedback module reads thresholds here).
    pub fn config(&self) -> &DbCatcherConfig {
        &self.config
    }

    /// Replaces the learned thresholds (α, θ, N) at runtime.
    pub fn set_genes(&mut self, genes: &crate::ga::Genes) {
        self.config.apply_genes(genes);
    }

    /// Number of databases monitored.
    pub fn num_databases(&self) -> usize {
        self.num_dbs
    }

    /// Next absolute tick the detector expects — equal to the number of
    /// ticks ingested since creation, and preserved across
    /// snapshot/restore. Online front-ends use this to resume a stream
    /// exactly where the detector left off.
    pub fn next_tick(&self) -> u64 {
        self.queues.next_tick()
    }

    /// Per-component timing accumulated so far.
    pub fn timing(&self) -> ComponentTiming {
        self.timing
    }

    /// Total verdicts emitted so far.
    pub fn verdict_count(&self) -> u64 {
        self.verdict_count
    }

    /// The telemetry health ledger: repair counters, staleness, voting
    /// state.
    pub fn health(&self) -> &TelemetryHealth {
        &self.health
    }

    /// Databases currently demoted to non-voting, ascending.
    pub fn non_voting(&self) -> Vec<usize> {
        self.health.non_voting()
    }

    /// Internal: queue state (snapshot support).
    pub(crate) fn queues_ref(&self) -> &crate::queues::KpiQueues {
        &self.queues
    }

    /// Internal: tracker state (snapshot support).
    pub(crate) fn trackers_ref(&self) -> &[crate::window::WindowTracker] {
        &self.trackers
    }

    /// Internal: raw window-size accumulator (snapshot support).
    pub(crate) fn window_size_sum_raw(&self) -> u64 {
        self.window_size_sum
    }

    /// Internal: rebuilds a detector from persisted parts (snapshot
    /// support). Timing accumulators restart at zero — wall-clock
    /// accounting is per-process.
    pub(crate) fn from_parts(
        config: crate::config::DbCatcherConfig,
        num_dbs: usize,
        queues: crate::queues::KpiQueues,
        trackers: Vec<crate::window::WindowTracker>,
        health: TelemetryHealth,
        window_size_sum: u64,
        verdict_count: u64,
    ) -> Self {
        // The incremental engine is derived state: replay the retained
        // queue samples instead of persisting it in the snapshot format.
        let correlator = match config.backend {
            CorrelationBackend::Naive => None,
            CorrelationBackend::Incremental => Some(IncrementalCorrelator::from_queues(&queues)),
        };
        Self {
            config,
            num_dbs,
            queues,
            correlator,
            trackers,
            health,
            scratch: TickScratch::new(),
            timing: ComponentTiming::default(),
            window_size_sum,
            verdict_count,
        }
    }

    /// Mean final window size over all verdicts (the paper's Window-Size
    /// efficiency metric).
    pub fn average_window_size(&self) -> f64 {
        if self.verdict_count == 0 {
            return 0.0;
        }
        self.window_size_sum as f64 / self.verdict_count as f64
    }

    /// Ingests one monitoring frame (`frame[db][kpi]`) and returns the
    /// verdicts that became final at this tick.
    ///
    /// # Panics
    /// Panics when [`Self::try_ingest_tick`] would return an error.
    pub fn ingest_tick(&mut self, frame: &[Vec<f64>]) -> Vec<Verdict> {
        match self.try_ingest_tick(frame) {
            Ok(report) => report.verdicts,
            // dbclint: allow(panic-free) — documented panicking wrapper; try_ingest_tick is the fallible form.
            Err(e) => panic!("frame rejected: {e}"),
        }
    }

    /// Ingests one monitoring frame without panicking: the frame shape is
    /// validated, non-finite samples are repaired by the configured
    /// [`crate::ingest::GapPolicy`], and the telemetry health ledger
    /// (staleness, non-voting demotion / re-admission) is updated before
    /// any window is judged.
    ///
    /// # Errors
    /// [`IngestError::FrameArity`] / [`IngestError::KpiArity`] on shape
    /// mismatch — the frame is rejected whole and the detector state is
    /// untouched. [`IngestError::WindowUnavailable`] signals an internal
    /// retention inconsistency (never expected with a validated
    /// configuration).
    pub fn try_ingest_tick(&mut self, frame: &[Vec<f64>]) -> Result<IngestReport, IngestError> {
        // Swap the owned arena out so the shared-arena entry point below
        // is the single implementation (both swaps are plain moves and
        // the `Default` placeholder buffers are empty — no allocation).
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = self.try_ingest_tick_with(frame, &mut scratch);
        self.scratch = scratch;
        result
    }

    /// [`Self::try_ingest_tick`] staging through a caller-owned
    /// [`TickScratch`] arena — the batch entry point. A shard or fleet
    /// worker that owns many detectors drives them all through one arena
    /// per thread ([`crate::fleet::score_batch`]), so the pooled batch
    /// matrices, staging buffers and score vectors stay warm across the
    /// whole batch instead of per unit.
    ///
    /// # Errors
    /// Same contract as [`Self::try_ingest_tick`].
    pub fn try_ingest_tick_with(
        &mut self,
        frame: &[Vec<f64>],
        scratch: &mut TickScratch,
    ) -> Result<IngestReport, IngestError> {
        if frame.len() != self.num_dbs {
            return Err(IngestError::FrameArity {
                expected: self.num_dbs,
                got: frame.len(),
            });
        }
        for (db, kpis) in frame.iter().enumerate() {
            if kpis.len() != self.config.num_kpis {
                return Err(IngestError::KpiArity {
                    db,
                    expected: self.config.num_kpis,
                    got: kpis.len(),
                });
            }
        }
        let tick = self.queues.next_tick();
        // Sanitize into the reusable staging buffer; the queues and the
        // incremental engine then read it by shared borrow — on a clean
        // steady-state tick nothing below allocates.
        let tick_health = self.health.observe_into(
            frame,
            tick,
            &self.config.ingest,
            self.queues.capacity(),
            &mut scratch.sanitized,
        );
        self.queues.push(&scratch.sanitized);
        if let Some(correlator) = &mut self.correlator {
            correlator.push(&scratch.sanitized);
        }
        let next_tick = self.queues.next_tick();
        let mut report = IngestReport {
            repaired: tick_health.repaired,
            stale: tick_health.stale,
            demoted: tick_health.demoted,
            readmitted: tick_health.readmitted,
            ..IngestReport::default()
        };
        // KCD scores are symmetric and window-scoped; when several
        // databases judge the same bounds in one tick, share the work
        // through the scratch memo — the naive backend's pair cache and
        // the incremental backend's pooled batch matrices (both reset
        // each tick, capacity kept — this arena may have just served a
        // different unit of the same shard).
        scratch.pair_cache.clear();
        scratch.batch_used = 0;
        for db in 0..self.num_dbs {
            // A database may resolve several consecutive windows in one
            // tick only if sizes shrank; normally at most one iteration.
            while self.trackers[db].action(next_tick) == WindowAction::Judge {
                match self.judge(db, scratch)? {
                    Some(v) => {
                        self.window_size_sum += v.window_size as u64;
                        self.verdict_count += 1;
                        report.verdicts.push(v);
                    }
                    None => break, // window expanded; wait for data
                }
            }
        }
        Ok(report)
    }

    /// Judges database `db`'s current window. Returns `Ok(None)` when the
    /// state was observable and the window expanded instead of resolving.
    fn judge(
        &mut self,
        db: usize,
        scratch: &mut TickScratch,
    ) -> Result<Option<Verdict>, IngestError> {
        let tracker = self.trackers[db];
        let (start, size) = (tracker.start, tracker.size);

        let t0 = Instant::now();
        let scores = self.aggregated_scores(db, start, size, scratch)?;
        self.timing.correlation += t0.elapsed();

        let t1 = Instant::now();
        let row = level_row(&scores, &self.config.alphas, self.config.theta);
        let state = determine_state(&row, self.config.max_tolerance);

        let resolved = match state {
            DbState::Observable => {
                let step = self.config.expansion_step();
                if self.trackers[db].expand(step, self.config.max_window) {
                    self.timing.observation += t1.elapsed();
                    return Ok(None); // wait for the expanded window to fill
                }
                match self.config.resolve_at_max {
                    crate::config::ResolvePolicy::Abnormal => DbState::Abnormal,
                    crate::config::ResolvePolicy::Healthy => DbState::Healthy,
                }
            }
            final_state => final_state,
        };

        let tracker = self.trackers[db];
        let verdict = Verdict {
            db,
            start_tick: tracker.start,
            end_tick: tracker.end(),
            state: resolved,
            window_size: tracker.size,
            expansions: tracker.expansions,
            scores,
        };
        self.trackers[db].advance(self.config.initial_window);
        self.timing.observation += t1.elapsed();
        Ok(Some(verdict))
    }

    /// Aggregated per-KPI scores of `db` against participating peers over
    /// the window. `NaN` marks KPIs without a vote.
    ///
    /// Participation per `(kpi, d)` combines four gates: the
    /// unused-database rule (paper §III-B, computed into the scratch
    /// mask), the configured Table II mask, the telemetry voting state (a
    /// demoted database contributes to no peer's score) and — under
    /// mark-missing gap repair — a clean window (no repaired sample inside
    /// the judged range).
    ///
    /// Everything transient lives in the [`TickScratch`] arena; only the
    /// returned score vector (owned by the eventual [`Verdict`]) is
    /// allocated here.
    fn aggregated_scores(
        &mut self,
        db: usize,
        start: u64,
        size: usize,
        scratch: &mut TickScratch,
    ) -> Result<Vec<f64>, IngestError> {
        // Disjoint field borrows: the incremental engine needs `&mut`
        // while config/queues/health stay shared.
        let Self {
            config,
            num_dbs,
            queues,
            correlator,
            health,
            ..
        } = self;
        let num_dbs = *num_dbs;
        let TickScratch {
            usable,
            own_norm,
            peer_norm,
            pair_scores,
            pair_cache,
            batch,
            batch_used,
            ..
        } = scratch;

        // A database is *usable* in a window when any KPI shows activity
        // above the unused-epsilon (paper §III-B unused-database rule).
        usable.clear();
        usable.extend((0..num_dbs).map(|d| {
            (0..config.num_kpis).any(|k| {
                queues
                    .window_max_abs(d, k, start, size)
                    .map(|m| m > config.unused_epsilon)
                    .unwrap_or(false)
            })
        }));
        let usable: &[bool] = usable;

        let mut correlator = correlator.as_mut();
        let max_delay = config.delay_scan.max_lag(size);
        let mut out = Vec::with_capacity(config.num_kpis);
        for kpi in 0..config.num_kpis {
            let participates = |d: usize| {
                health.is_voting(d)
                    && usable[d]
                    && config
                        .participation
                        .as_ref()
                        .map(|m| m[kpi][d])
                        .unwrap_or(true)
                    && health.window_clean(d, kpi, start, size)
            };
            if !participates(db) {
                out.push(f64::NAN);
                continue;
            }
            if let Some(engine) = correlator.as_deref_mut() {
                // Batched fast path: all of this tick's judgements over
                // one `(kpi, window)` share a pooled score matrix. The
                // lag-scan setup — window-bound checks and normalised-
                // cache refresh — is hoisted once per matrix
                // (`prepare_windows`), and each pair then runs the
                // read-only kernel sweep (`pair_score_prepared`) at most
                // once per tick via the lazy row fill.
                let key = (kpi, start, size);
                let idx = match (0..*batch_used).find(|&i| batch[i].key == key) {
                    Some(i) => i,
                    None => {
                        if *batch_used == batch.len() {
                            // Pool growth: at most one entry per KPI,
                            // then steady-state reuse of the free list.
                            batch.push(BatchEntry::default());
                        }
                        let i = *batch_used;
                        *batch_used += 1;
                        let entry = &mut batch[i];
                        entry.key = key;
                        entry.mask.clear();
                        entry.mask.extend((0..num_dbs).map(&participates));
                        entry.rows.clear();
                        entry.rows.resize(num_dbs, false);
                        entry.matrix.from_pairwise_into(num_dbs, |_, _| 0.0);
                        i
                    }
                };
                // Refresh the engine's per-series window caches for this
                // entry even on a pool hit: the cache is one window per
                // `(db, kpi)`, so a *different* window of the same KPI
                // judged earlier this tick repoints it. Re-preparing is a
                // no-op validity sweep when nothing changed.
                engine.prepare_windows(kpi, start, size, &batch[idx].mask);
                let BatchEntry {
                    matrix, mask, rows, ..
                } = &mut batch[idx];
                let engine = &*engine;
                if !rows[db] {
                    rows[db] = true;
                    for peer in 0..num_dbs {
                        // A peer whose own row is filled already holds
                        // the symmetric entry — skip the recompute.
                        if peer != db && mask[peer] && !rows[peer] {
                            matrix.set(
                                db,
                                peer,
                                engine.pair_score_prepared(db, peer, kpi, size, max_delay),
                            );
                        }
                    }
                }
                pair_scores.clear();
                for peer in 0..num_dbs {
                    if peer != db && mask[peer] {
                        pair_scores.push(matrix.get(db, peer));
                    }
                }
                out.push(aggregate_scores(pair_scores, config.aggregation).unwrap_or(f64::NAN));
                continue;
            }
            // Naive path (the differential oracle): `db`'s normalised
            // window is shared across every peer of this KPI, symmetric
            // pairs memoised in the tick-scoped cache.
            let mut own_valid = false;
            pair_scores.clear();
            for peer in 0..num_dbs {
                if peer == db || !participates(peer) {
                    continue;
                }
                let key = (db.min(peer), db.max(peer), kpi, start, size);
                let score = if let Some(&s) = pair_cache.get(&key) {
                    s
                } else {
                    if !own_valid {
                        let w = queues.window_slice(db, kpi, start, size).ok_or(
                            IngestError::WindowUnavailable {
                                db,
                                kpi,
                                start,
                                len: size,
                            },
                        )?;
                        own_norm.clear();
                        own_norm.extend_from_slice(w);
                        min_max_in_place(own_norm);
                        own_valid = true;
                    }
                    let w = queues.window_slice(peer, kpi, start, size).ok_or(
                        IngestError::WindowUnavailable {
                            db: peer,
                            kpi,
                            start,
                            len: size,
                        },
                    )?;
                    peer_norm.clear();
                    peer_norm.extend_from_slice(w);
                    min_max_in_place(peer_norm);
                    let s = kcd_normalized(own_norm, peer_norm, max_delay);
                    pair_cache.insert(key, s);
                    s
                };
                pair_scores.push(score);
            }
            out.push(aggregate_scores(pair_scores, config.aggregation).unwrap_or(f64::NAN));
        }
        Ok(out)
    }
}

// Offline replay lives in `crate::offline`; re-exported here because the
// evaluation harness and integration tests historically import it from
// the pipeline module.
pub use crate::offline::detect_series;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DelayScan, ResolvePolicy};

    /// A synthetic 3-database unit: a shared sinusoid trend with per-db
    /// gain/offset, optionally distorting one database over a tick range.
    fn unit_series(
        dbs: usize,
        kpis: usize,
        ticks: usize,
        distort_db: Option<(usize, std::ops::Range<usize>)>,
    ) -> Vec<Vec<Vec<f64>>> {
        (0..dbs)
            .map(|db| {
                (0..kpis)
                    .map(|kpi| {
                        (0..ticks)
                            .map(|t| {
                                let trend =
                                    ((t as f64) * std::f64::consts::TAU / 30.0 + kpi as f64).sin();
                                let mut v = 100.0
                                    + 40.0 * trend * (1.0 + 0.1 * db as f64)
                                    + 10.0 * db as f64;
                                if let Some((target, range)) = &distort_db {
                                    if db == *target && range.contains(&t) {
                                        // opposite trend: strong de-correlation
                                        v = 100.0 - 60.0 * trend + 10.0 * db as f64;
                                    }
                                }
                                v
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    fn small_config(kpis: usize) -> DbCatcherConfig {
        DbCatcherConfig {
            initial_window: 10,
            max_window: 30,
            delay_scan: DelayScan::Fixed(3),
            ..DbCatcherConfig::with_kpis(kpis)
        }
    }

    #[test]
    fn healthy_unit_stays_healthy() {
        let series = unit_series(3, 4, 120, None);
        let (verdicts, predictions) = detect_series(small_config(4), &series, None);
        assert!(!verdicts.is_empty());
        assert!(
            verdicts.iter().all(|v| v.state == DbState::Healthy),
            "{verdicts:?}"
        );
        assert!(predictions.iter().flatten().all(|&p| !p));
    }

    #[test]
    fn distorted_database_flagged_abnormal() {
        // 5 databases as in the paper's units: the median aggregation needs
        // >= 3 healthy peers to stay robust when one database goes bad.
        let series = unit_series(5, 4, 120, Some((1, 40..80)));
        let (verdicts, predictions) = detect_series(small_config(4), &series, None);
        // db 1 must be abnormal somewhere inside 40..80
        let hit = predictions[1][40..80].iter().any(|&p| p);
        assert!(hit, "distortion not detected: {verdicts:?}");
        // healthy databases stay clean
        for db in [0usize, 2, 3, 4] {
            assert!(
                predictions[db].iter().all(|&p| !p),
                "db {db} falsely flagged"
            );
        }
    }

    #[test]
    fn verdict_windows_tile_the_timeline() {
        let series = unit_series(3, 2, 100, None);
        let (verdicts, _) = detect_series(small_config(2), &series, None);
        for db in 0..3 {
            let mut windows: Vec<(u64, u64)> = verdicts
                .iter()
                .filter(|v| v.db == db)
                .map(|v| (v.start_tick, v.end_tick))
                .collect();
            windows.sort_unstable();
            assert!(!windows.is_empty());
            assert_eq!(windows[0].0, 0);
            for pair in windows.windows(2) {
                assert_eq!(pair[0].1, pair[1].0, "gap/overlap between windows");
            }
        }
    }

    #[test]
    fn observable_state_expands_window() {
        // Craft a borderline score by a mild distortion: use Min
        // aggregation + large theta so slight deviations yield level-2.
        let mut config = small_config(4);
        config.alphas = vec![0.95; 4];
        config.theta = 0.5; // level-2 band: [0.45, 0.95)
        config.max_tolerance = 10; // all four KPIs may sit at level-2
        let series = unit_series(3, 4, 200, Some((2, 30..45)));
        let (verdicts, _) = detect_series(config, &series, None);
        let expanded = verdicts.iter().any(|v| v.expansions > 0);
        assert!(expanded, "no window ever expanded: {verdicts:?}");
        // expanded windows never exceed W_M
        assert!(verdicts.iter().all(|v| v.window_size <= 30));
    }

    #[test]
    fn resolve_policy_at_max_window() {
        // Force perpetual observability: alpha > 1 so no score reaches
        // level-3, theta = 1 so only scores below ~0.5 would be level-1 —
        // the healthy unit's scores sit at ~1.0, always level-2.
        let mut config = small_config(2);
        config.alphas = vec![1.5; 2];
        config.theta = 1.0;
        config.max_tolerance = 99;
        config.resolve_at_max = ResolvePolicy::Abnormal;
        let series = unit_series(2, 2, 100, None);
        let (verdicts, _) = detect_series(config.clone(), &series, None);
        assert!(verdicts.iter().all(|v| v.state == DbState::Abnormal));
        assert!(verdicts.iter().all(|v| v.window_size == config.max_window));

        config.resolve_at_max = ResolvePolicy::Healthy;
        let (verdicts, _) = detect_series(config, &series, None);
        assert!(verdicts.iter().all(|v| v.state == DbState::Healthy));
    }

    #[test]
    fn participation_mask_silences_kpi() {
        // distort only KPI 0 of db 0, then exclude db 0 from KPI 0:
        // the anomaly becomes invisible.
        let mut series = unit_series(3, 2, 100, None);
        for t in 30..60 {
            series[0][0][t] = 500.0 - series[0][0][t];
        }
        let (_, with_mask) = detect_series(
            small_config(2),
            &series,
            Some(vec![vec![false, true, true], vec![true, true, true]]),
        );
        assert!(with_mask[0].iter().all(|&p| !p), "masked KPI still fired");
        let (_, without_mask) = detect_series(small_config(2), &series, None);
        assert!(
            without_mask[0][30..60].iter().any(|&p| p),
            "unmasked anomaly missed"
        );
    }

    #[test]
    fn unused_database_not_flagged() {
        let mut series = unit_series(3, 2, 100, None);
        // db 2 is unused: all zeros
        for kpi in series[2].iter_mut() {
            kpi.iter_mut().for_each(|v| *v = 0.0);
        }
        let (verdicts, predictions) = detect_series(small_config(2), &series, None);
        assert!(predictions[2].iter().all(|&p| !p), "unused db flagged");
        // the remaining pair still judges healthy
        assert!(verdicts
            .iter()
            .filter(|v| v.db != 2)
            .all(|v| v.state == DbState::Healthy));
    }

    #[test]
    fn average_window_size_tracks_verdicts() {
        let series = unit_series(3, 2, 100, None);
        let mut catcher = DbCatcher::new(small_config(2), 3);
        let mut frame: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for t in 0..100 {
            for (row, db) in frame.iter_mut().zip(&series) {
                row.clear();
                row.extend(db.iter().map(|k| k[t]));
            }
            catcher.ingest_tick(&frame);
        }
        assert!((catcher.average_window_size() - 10.0).abs() < 1e-9);
        let timing = catcher.timing();
        assert!(timing.correlation > Duration::ZERO);
    }

    #[test]
    fn scores_recorded_for_feedback() {
        let series = unit_series(3, 4, 60, None);
        let (verdicts, _) = detect_series(small_config(4), &series, None);
        for v in &verdicts {
            assert_eq!(v.scores.len(), 4);
            assert!(v
                .scores
                .iter()
                .all(|s| s.is_nan() || (-1.0..=1.0).contains(s)));
        }
    }

    #[test]
    #[should_panic(expected = "invalid DbCatcher configuration")]
    fn invalid_config_panics() {
        let mut config = DbCatcherConfig::default();
        config.alphas.pop();
        let _ = DbCatcher::new(config, 3);
    }

    #[test]
    fn set_genes_changes_behaviour() {
        let mut catcher = DbCatcher::new(small_config(2), 3);
        let genes = crate::ga::Genes {
            alphas: vec![0.65, 0.75],
            theta: 0.12,
            max_tolerance: 1,
        };
        catcher.set_genes(&genes);
        assert_eq!(catcher.config().alphas, genes.alphas);
    }
}
