//! Table III: statistical information of the generated datasets.

use dbcatcher_bench::print_scale_banner;
use dbcatcher_eval::experiments::{mixed_specs, Scale};
use dbcatcher_eval::report::{pct, render_table};

fn main() {
    let scale = Scale::from_args();
    print_scale_banner("Table III — dataset statistics", &scale);
    let mut rows = Vec::new();
    for spec in mixed_specs(&scale) {
        let stats = spec.build().stats();
        rows.push(vec![
            spec.name.clone(),
            stats.units.to_string(),
            stats.dimensions.to_string(),
            stats.total_points.to_string(),
            stats.anomal_points.to_string(),
            pct(stats.abnormal_ratio),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Table III: statistical information of different datasets",
            &[
                "Dataset",
                "No. of Units",
                "No. of Dimensions",
                "Total Points",
                "Anomal Points",
                "Abnormal Ratio",
            ],
            &rows,
        )
    );
    println!(
        "(paper at scale 1.0: Tencent 100 units / 5 529 600 points / 3.11%, \
         Sysbench 50 / 648 000 / 4.21%, TPCC 50 / 648 000 / 4.06%)"
    );
}
