//! `dbclint --self-test`: prove the gate actually gates.
//!
//! The self-test runs the *checked-in* config against synthetic files
//! that seed exactly the violations the acceptance criteria name — a
//! `to_vec()` added to `core::kcd_incremental`, an `unwrap()` added to
//! `serve::shard`, a wall-clock read in `sim`, an `unsafe` block in
//! `core` — and fails unless every seed is caught by the expected rule
//! *and* a matching clean variant passes. A misconfigured scope (a
//! moved file, a typo'd path in `dbclint.toml`) therefore fails CI even
//! when the tree itself is clean.

use crate::config::Config;
use crate::engine::{analyze, SourceFile};

struct Seed {
    /// Path the synthetic file pretends to live at.
    path: &'static str,
    content: &'static str,
    /// Rule expected to fire (exactly once) — or None for a clean file.
    expect: Option<&'static str>,
    /// What this seed demonstrates.
    why: &'static str,
}

const SEEDS: &[Seed] = &[
    Seed {
        path: "crates/core/src/kcd_incremental.rs",
        content: "pub fn window(buf: &[f64]) -> Vec<f64> {\n    buf.to_vec()\n}\n",
        expect: Some("hot-path-alloc"),
        why: "a to_vec() added to core::kcd_incremental must fail the gate",
    },
    Seed {
        path: "crates/serve/src/shard.rs",
        content: "pub fn take(x: Option<u64>) -> u64 {\n    x.unwrap()\n}\n",
        expect: Some("panic-free"),
        why: "an unwrap() added to serve::shard must fail the gate",
    },
    Seed {
        path: "crates/sim/src/kpi.rs",
        content: "pub fn stamp() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
        expect: Some("determinism"),
        why: "a wall-clock read added to sim must fail the gate",
    },
    Seed {
        path: "crates/core/src/matrix.rs",
        content: "pub fn peek(xs: &[f64]) -> f64 {\n    unsafe { *xs.as_ptr() }\n}\n",
        expect: Some("no-unsafe"),
        why: "an unsafe block added to core must fail the gate",
    },
    Seed {
        path: "crates/core/src/scratch.rs",
        content: "pub fn id(x: f64) -> f64 { x } // dbclint: allow(hot-path-alloc)\n",
        expect: Some("waiver-syntax"),
        why: "a waiver without justification must fail the gate",
    },
    Seed {
        path: "crates/core/src/window.rs",
        content: "pub fn sum(xs: &[f64]) -> f64 { xs.iter().sum() }\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let v: Vec<f64> = (0..4).map(|i| i as f64).collect();\n        assert_eq!(super::sum(&v).max(0.0), v.iter().sum::<f64>().max(0.0));\n    }\n}\n",
        expect: None,
        why: "allocation inside #[cfg(test)] must NOT fail the gate",
    },
    Seed {
        path: "crates/core/src/kcd.rs",
        content: "pub fn clean(xs: &[f64], acc: &mut f64) {\n    for x in xs.iter() {\n        *acc += x;\n    }\n}\n",
        expect: None,
        why: "pure streaming code in a hot-path module must pass",
    },
];

/// Run the self-test. Returns the list of failures (empty = pass).
pub fn run(cfg: &Config) -> Vec<String> {
    let mut failures = Vec::new();
    for seed in SEEDS {
        let files = [SourceFile {
            path: seed.path.to_string(),
            content: seed.content.to_string(),
        }];
        let a = analyze(cfg, &files);
        match seed.expect {
            Some(rule) => {
                let hits: Vec<_> = a
                    .violations
                    .iter()
                    .filter(|v| v.rule == rule && v.severity == crate::rules::Severity::Deny)
                    .collect();
                if hits.is_empty() {
                    failures.push(format!(
                        "seeded violation NOT caught: {} ({}) — expected rule `{}`",
                        seed.path, seed.why, rule
                    ));
                }
            }
            None => {
                if a.deny_count() > 0 {
                    failures.push(format!(
                        "clean seed wrongly flagged: {} ({}) — {:?}",
                        seed.path,
                        seed.why,
                        a.violations
                            .iter()
                            .filter(|v| v.severity == crate::rules::Severity::Deny)
                            .map(|v| format!("{}:{} {}", v.rule, v.line, v.pattern))
                            .collect::<Vec<_>>()
                    ));
                }
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The self-test must pass against the real checked-in config.
    #[test]
    fn self_test_passes_with_repo_config() {
        let toml = include_str!("../../../dbclint.toml");
        let cfg = crate::config::parse_config(toml).unwrap();
        let failures = run(&cfg);
        assert!(failures.is_empty(), "{failures:#?}");
    }
}
