//! Fig. 13 case study: a resource-consuming task is mapped onto one
//! database — its CPU doubles while Total Requests stays level with its
//! peers (a level-2 anomaly).

use dbcatcher_core::{DbCatcher, DbCatcherConfig};
use dbcatcher_eval::experiments::Scale;
use dbcatcher_eval::report::sparkline;
use dbcatcher_signal::normalize::min_max;
use dbcatcher_sim::Kpi;
use dbcatcher_workload::scenario::UnitScenario;

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 13 — resource-hog case study (level-2 anomaly)");
    let scenario = UnitScenario::case_study_resource_hog(scale.seed);
    println!("{}", scenario.description);
    let data = scenario.generate();
    for kpi in [Kpi::TotalRequests, Kpi::CpuUtilization, Kpi::InnodbRowsRead] {
        println!("\nnormalized {}:", kpi.name());
        for db in 0..data.num_databases() {
            let s = min_max(data.kpi_series(db, kpi.index()));
            println!("  D{}  {}", db + 1, sparkline(&s, 100));
        }
    }

    let mut catcher = DbCatcher::new(DbCatcherConfig::default(), data.num_databases())
        .with_participation(data.participation.clone());
    let mut alarms = Vec::new();
    for t in 0..data.num_ticks() {
        for v in catcher.ingest_tick(&data.tick_matrix(t)) {
            if v.state.is_abnormal() {
                alarms.push((v.db, v.start_tick, v.end_tick));
            }
        }
    }
    println!("\nDBCatcher alarms (db, window):");
    for (db, s, e) in &alarms {
        println!("  D{}: ticks [{s}..{e})", db + 1);
    }
    let hit = alarms
        .iter()
        .any(|&(db, s, e)| db == 1 && e > 350 && s < 450);
    println!(
        "\nanomaly window 350..450 on D2 {}",
        if hit { "DETECTED" } else { "MISSED" }
    );
}
