//! Incremental correlation engine (the fast path of [`crate::pipeline`]).
//!
//! The naive backend treats every KCD evaluation as independent: copy both
//! windows out of the queues, min–max normalise each, then run the lag
//! scan with two passes per lag. On a unit of D databases judging aligned
//! windows that costs D·(D−1)/2 normalisations per KPI per tick and
//! re-derives every segment mean from scratch.
//!
//! This module keeps per-`(db, kpi)` state across ticks and exploits three
//! structural facts of the pipeline:
//!
//! 1. **Windows are suffixes.** The window state machine judges a window
//!    exactly when its end reaches the newest tick, so every min/max query
//!    is over a suffix of the ingested history — answered in O(log k) from
//!    a pair of monotonic deques instead of an O(k) scan.
//! 2. **Normalisation is shared, and expansions extend it.** The
//!    normalised window of `(db, kpi)` is cached with the `(start, lo,
//!    hi)` that produced it; every peer pair reuses it, and an expanded
//!    window whose min/max did not change appends only the new points
//!    instead of renormalising (the cache invalidates only when the
//!    min/max actually moves or the window advances).
//! 3. **Lag-scan moments come from prefix sums.** Prefix sums of the
//!    normalised window and its squares give every lag segment's mean and
//!    energy in O(1), collapsing each lag to a single fused dot-product
//!    pass — versus two passes per lag per direction in the naive path.
//!
//! Numerical contract: scores are algebraically identical to
//! [`crate::kcd::kcd_normalized`] but may differ in the last few ulps
//! because moments are derived from prefix sums and the dot products run
//! through the four-lane SIMD scheme of [`crate::simd`] (dispatch tier
//! chosen at construction; every tier is bit-identical, see that
//! module's contract). Whole-window constants take the exact convention
//! branches (detected from the deques), and near-constant *segments*
//! fall back to the exact two-pass formulation, so the degenerate
//! conventions (constant-vs-constant = 1, constant-vs-varying = 0) are
//! preserved bit-for-bit. The differential suite
//! (`tests/differential.rs`, `tests/simd_differential.rs`) pins the
//! backends to verdict-for-verdict equality and the dispatch tiers to
//! bit equality.

use crate::queues::KpiQueues;
use crate::simd::{self, SimdTier};
use std::collections::VecDeque;

/// A segment's energy below `EPS_PER_POINT · len` is treated as
/// potentially degenerate and re-evaluated with the exact two-pass
/// formula. Normalised values live in [0, 1], so this is a relative
/// threshold on the variance scale.
const EPS_PER_POINT: f64 = 1e-12;

/// Cached min–max-normalised window of one series, with prefix sums.
#[derive(Debug, Clone, Default)]
struct NormCache {
    valid: bool,
    start: u64,
    lo: f64,
    hi: f64,
    /// Normalised points; `norm.len()` is the cached window length.
    norm: Vec<f64>,
    /// `psum[i]` = sum of `norm[..i]` (length `norm.len() + 1`).
    psum: Vec<f64>,
    /// `psumsq[i]` = sum of squares of `norm[..i]`.
    psumsq: Vec<f64>,
}

impl NormCache {
    /// A cache whose buffers never reallocate for windows up to
    /// `capacity` points.
    fn with_capacity(capacity: usize) -> Self {
        Self {
            norm: Vec::with_capacity(capacity),
            psum: Vec::with_capacity(capacity + 1),
            psumsq: Vec::with_capacity(capacity + 1),
            ..Self::default()
        }
    }

    fn reset(&mut self) {
        self.valid = false;
        self.norm.clear();
        self.psum.clear();
        self.psumsq.clear();
    }

    /// Appends normalised points for `raw` under the cached `(lo, hi)`.
    fn extend(&mut self, raw: &[f64]) {
        if self.psum.is_empty() {
            self.psum.push(0.0);
            self.psumsq.push(0.0);
        }
        let range = self.hi - self.lo;
        // The leading 0.0 pushed above doubles as the neutral fallback.
        let mut sum = self.psum.last().copied().unwrap_or(0.0);
        let mut sumsq = self.psumsq.last().copied().unwrap_or(0.0);
        if range == 0.0 {
            // Constant window: min_max maps it to all zeros.
            for _ in raw {
                self.norm.push(0.0);
                self.psum.push(sum);
                self.psumsq.push(sumsq);
            }
        } else {
            let inv = 1.0 / range;
            for &x in raw {
                let v = (x - self.lo) * inv;
                self.norm.push(v);
                sum += v;
                sumsq += v * v;
                self.psum.push(sum);
                self.psumsq.push(sumsq);
            }
        }
    }
}

/// Rolling state of one `(db, kpi)` series.
#[derive(Debug, Clone, Default)]
struct SeriesState {
    /// Contiguous retained samples; `data[0]` holds absolute tick `base`.
    data: Vec<f64>,
    base: u64,
    /// `(tick, value)` candidates, ticks ascending, values ascending —
    /// front is the minimum of the whole retained suffix.
    min_deque: VecDeque<(u64, f64)>,
    /// Same, values descending — front is the maximum.
    max_deque: VecDeque<(u64, f64)>,
    cache: NormCache,
}

impl SeriesState {
    /// State sized so the steady-state push/normalise cycle never
    /// reallocates: `data` grows to `2 * capacity + 1` before its lazy
    /// compaction and the deques briefly hold `capacity + 1` candidates
    /// before horizon eviction.
    fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity * 2 + 1),
            base: 0,
            min_deque: VecDeque::with_capacity(capacity + 1),
            max_deque: VecDeque::with_capacity(capacity + 1),
            cache: NormCache::with_capacity(capacity),
        }
    }

    fn push(&mut self, tick: u64, value: f64, capacity: usize) {
        self.data.push(value);
        // Compact lazily at 2× capacity so slices stay contiguous and the
        // amortised cost per push is O(1).
        if self.data.len() > capacity * 2 {
            let drop = self.data.len() - capacity;
            self.data.drain(..drop);
            self.base += drop as u64;
        }
        while self.min_deque.back().is_some_and(|&(_, v)| v >= value) {
            self.min_deque.pop_back();
        }
        self.min_deque.push_back((tick, value));
        while self.max_deque.back().is_some_and(|&(_, v)| v <= value) {
            self.max_deque.pop_back();
        }
        self.max_deque.push_back((tick, value));
        // Evict candidates that no valid window can reach any more.
        let horizon = (tick + 1).saturating_sub(capacity as u64);
        while self.min_deque.front().is_some_and(|&(t, _)| t < horizon) {
            self.min_deque.pop_front();
        }
        while self.max_deque.front().is_some_and(|&(t, _)| t < horizon) {
            self.max_deque.pop_front();
        }
    }

    /// Minimum and maximum over the suffix window starting at `start`
    /// and ending at the newest retained tick.
    fn suffix_min_max(&self, start: u64) -> (f64, f64) {
        (
            Self::suffix_query(&self.min_deque, start),
            Self::suffix_query(&self.max_deque, start),
        )
    }

    fn suffix_query(deque: &VecDeque<(u64, f64)>, start: u64) -> f64 {
        // Ticks ascend, so the first candidate at or after `start` is the
        // extremum of the suffix.
        let idx = deque.partition_point(|&(t, _)| t < start);
        deque[idx].1
    }

    /// Ensures the normalised-window cache covers `[start, start + len)`,
    /// extending incrementally when only the window length grew.
    fn ensure_normalized(&mut self, start: u64, len: usize) {
        let (lo, hi) = self.suffix_min_max(start);
        let reusable = self.cache.valid
            && self.cache.start == start
            && self.cache.lo == lo
            && self.cache.hi == hi
            && self.cache.norm.len() <= len;
        if !reusable {
            self.cache.reset();
            self.cache.start = start;
            self.cache.lo = lo;
            self.cache.hi = hi;
            self.cache.valid = true;
        }
        let cached = self.cache.norm.len();
        if cached < len {
            let offset = (start - self.base) as usize;
            // Split the borrow so the cache extends straight from the
            // retained samples — no temporary copy of the fresh points.
            let Self { data, cache, .. } = self;
            cache.extend(&data[offset + cached..offset + len]);
        }
    }
}

/// Incremental pairwise KCD engine over a unit's KPI streams.
///
/// Feed it the same frames as [`KpiQueues`] and ask for pair scores over
/// suffix windows; see the module docs for the caching contract.
#[derive(Debug, Clone)]
pub struct IncrementalCorrelator {
    num_dbs: usize,
    num_kpis: usize,
    capacity: usize,
    /// `states[db * num_kpis + kpi]`.
    states: Vec<SeriesState>,
    /// Total ticks ingested (== next absolute tick).
    len: u64,
    /// Kernel dispatch tier, resolved once at construction.
    tier: SimdTier,
}

impl IncrementalCorrelator {
    /// Creates an engine retaining the last `capacity` ticks per series.
    ///
    /// # Panics
    /// Panics when any dimension is zero.
    pub fn new(num_dbs: usize, num_kpis: usize, capacity: usize) -> Self {
        assert!(
            num_dbs > 0 && num_kpis > 0 && capacity > 0,
            "dimensions must be positive"
        );
        Self {
            num_dbs,
            num_kpis,
            capacity,
            states: (0..num_dbs * num_kpis)
                .map(|_| SeriesState::with_capacity(capacity))
                // dbclint: allow(hot-path-alloc) — one-time per-series state slab at construction.
                .collect(),
            len: 0,
            tier: SimdTier::detect(),
        }
    }

    /// Overrides the kernel dispatch tier (differential tests, benches).
    ///
    /// # Panics
    /// Panics when the host cannot execute `tier` — a forced tier must
    /// never reach the intrinsic back-ends unguarded.
    pub fn with_tier(mut self, tier: SimdTier) -> Self {
        assert!(tier.is_supported(), "SIMD tier not supported on this host");
        self.tier = tier;
        self
    }

    /// The kernel dispatch tier this engine resolved at construction.
    pub fn tier(&self) -> SimdTier {
        self.tier
    }

    /// Rebuilds the engine from a queue snapshot by replaying its retained
    /// samples (snapshot restore support).
    pub fn from_queues(queues: &KpiQueues) -> Self {
        let mut engine = Self::new(queues.num_dbs(), queues.num_kpis(), queues.capacity());
        let base = queues.base_tick();
        let retained = (queues.next_tick() - base) as usize;
        for db in 0..engine.num_dbs {
            for kpi in 0..engine.num_kpis {
                let series = queues
                    .window_slice(db, kpi, base, retained)
                    // dbclint: allow(panic-free) — snapshot restore: the span was just computed from the same queues; failure means a corrupt snapshot worth failing loud on.
                    .expect("retained range readable");
                let state = &mut engine.states[db * engine.num_kpis + kpi];
                state.base = base;
                for (i, &v) in series.iter().enumerate() {
                    state.push(base + i as u64, v, engine.capacity);
                }
            }
        }
        engine.len = queues.next_tick();
        engine
    }

    /// Next absolute tick to be ingested.
    pub fn next_tick(&self) -> u64 {
        self.len
    }

    /// Ingests one frame (`frame[db][kpi]`), mirroring
    /// [`KpiQueues::push`].
    ///
    /// # Panics
    /// Panics when the frame shape mismatches the engine dimensions.
    pub fn push(&mut self, frame: &[Vec<f64>]) {
        assert_eq!(frame.len(), self.num_dbs, "frame database arity mismatch");
        let tick = self.len;
        for (db, kpis) in frame.iter().enumerate() {
            assert_eq!(kpis.len(), self.num_kpis, "frame KPI arity mismatch");
            for (k, &v) in kpis.iter().enumerate() {
                self.states[db * self.num_kpis + k].push(tick, v, self.capacity);
            }
        }
        self.len += 1;
    }

    /// KCD score of databases `a` and `b` on `kpi` over the suffix window
    /// `[start, start + len)`, scanning lags up to `max_delay`.
    ///
    /// # Panics
    /// Panics when the window is not the current suffix (its end must be
    /// the newest ingested tick), has been evicted, or indices are out of
    /// range.
    pub fn pair_score(
        &mut self,
        a: usize,
        b: usize,
        kpi: usize,
        start: u64,
        len: usize,
        max_delay: usize,
    ) -> f64 {
        assert!(
            a < self.num_dbs && b < self.num_dbs && kpi < self.num_kpis,
            "index out of range"
        );
        assert!(len > 0, "empty window");
        assert_eq!(
            start + len as u64,
            self.len,
            "incremental engine judges suffix windows only"
        );
        assert!(
            self.len - start <= self.capacity as u64,
            "window reaches into evicted history"
        );

        let ia = a * self.num_kpis + kpi;
        let ib = b * self.num_kpis + kpi;
        self.states[ia].ensure_normalized(start, len);
        self.states[ib].ensure_normalized(start, len);
        self.pair_score_prepared(a, b, kpi, len, max_delay)
    }

    /// Hoists the per-window setup for one `(kpi, window)` batch: checks
    /// the suffix-window contract once and refreshes the normalised cache
    /// of every series flagged in `participates`, so subsequent
    /// [`Self::pair_score_prepared`] calls over that window are read-only
    /// kernel sweeps.
    ///
    /// # Panics
    /// Panics when the window is not the current suffix, has been
    /// evicted, or `kpi` / mask arity is out of range.
    pub fn prepare_windows(&mut self, kpi: usize, start: u64, len: usize, participates: &[bool]) {
        assert!(kpi < self.num_kpis, "kpi out of range");
        assert_eq!(participates.len(), self.num_dbs, "mask arity mismatch");
        assert!(len > 0, "empty window");
        assert_eq!(
            start + len as u64,
            self.len,
            "incremental engine judges suffix windows only"
        );
        assert!(
            self.len - start <= self.capacity as u64,
            "window reaches into evicted history"
        );
        for (db, &p) in participates.iter().enumerate() {
            if p {
                self.states[db * self.num_kpis + kpi].ensure_normalized(start, len);
            }
        }
    }

    /// KCD score over window caches previously refreshed by
    /// [`Self::prepare_windows`] — the batch fast path. Immutable, so the
    /// matrix builder can sweep every pair of a unit without re-running
    /// the window checks and cache maintenance per pair.
    ///
    /// Bit-identical to [`Self::pair_score`] on the same window. Both
    /// series must have been prepared for `kpi` at window length `len`;
    /// debug builds assert the cache state.
    pub fn pair_score_prepared(
        &self,
        a: usize,
        b: usize,
        kpi: usize,
        len: usize,
        max_delay: usize,
    ) -> f64 {
        debug_assert!(
            a < self.num_dbs && b < self.num_dbs && kpi < self.num_kpis,
            "index out of range"
        );
        let sa = &self.states[a * self.num_kpis + kpi];
        let sb = &self.states[b * self.num_kpis + kpi];
        debug_assert!(
            sa.cache.valid && sa.cache.norm.len() == len,
            "series (db {a}, kpi {kpi}) not prepared for window length {len}"
        );
        debug_assert!(
            sb.cache.valid && sb.cache.norm.len() == len,
            "series (db {b}, kpi {kpi}) not prepared for window length {len}"
        );
        let a_const = sa.cache.hi == sa.cache.lo;
        let b_const = sb.cache.hi == sb.cache.lo;
        // min_max maps constants to all-zero windows; the conventions of
        // `centered_correlation` then collapse the whole lag scan.
        match (a_const, b_const) {
            (true, true) => return 1.0,
            (true, false) | (false, true) => return 0.0,
            (false, false) => {}
        }

        let max_s = max_delay.min(len.saturating_sub(2));
        // Lags 0..=2 share one five-chain sweep when the scan reaches that
        // far; shorter scans start from a plain lag-0 pass. Scores clamp
        // to [-1, 1], so folding extra lags into a sweep that already hit
        // 1.0 cannot change the maximum — early exit stays sound.
        let mut best;
        let mut s;
        if max_s >= 2 {
            let (c0, c1, c2, c3, c4) = lag_correlation_penta(self.tier, &sa.cache, &sb.cache, len);
            best = c0.max(c1).max(c2).max(c3).max(c4);
            s = 3;
        } else {
            best = lag_correlation(self.tier, &sa.cache, &sb.cache, 0, 0, len);
            s = 1;
        }
        // Remaining lags go two at a time — four direction chains per
        // memory sweep — with an odd final lag on the dual-chain pass.
        while s <= max_s && best < 1.0 {
            if s < max_s {
                let (c1, c2, c3, c4) =
                    lag_correlation_quad(self.tier, &sa.cache, &sb.cache, s, len - s);
                best = best.max(c1).max(c2).max(c3).max(c4);
                s += 2;
            } else {
                let (c1, c2) = lag_correlation_pair(self.tier, &sa.cache, &sb.cache, s, len - s);
                best = best.max(c1).max(c2);
                s += 1;
            }
        }
        best
    }
}

/// Mean and centred energy of `c.norm[off..off + len]`, in O(1) from the
/// prefix sums.
#[inline]
fn segment_moments(c: &NormCache, off: usize, len: usize) -> (f64, f64) {
    let n = len as f64;
    let m = (c.psum[off + len] - c.psum[off]) / n;
    let e = (c.psumsq[off + len] - c.psumsq[off] - n * m * m).max(0.0);
    (m, e)
}

/// Correlation of `x.norm[x_off..x_off + len]` against
/// `y.norm[y_off..y_off + len]`, moments from prefix sums, one
/// lane-parallel dot sweep ([`simd::dot`]). Falls back to the exact
/// two-pass formula on degenerate segments.
fn lag_correlation(
    tier: SimdTier,
    x: &NormCache,
    y: &NormCache,
    x_off: usize,
    y_off: usize,
    len: usize,
) -> f64 {
    let n = len as f64;
    let xs = &x.norm[x_off..x_off + len];
    let ys = &y.norm[y_off..y_off + len];
    let (mx, nx) = segment_moments(x, x_off, len);
    let (my, ny) = segment_moments(y, y_off, len);
    let eps = EPS_PER_POINT * n;
    if nx <= eps || ny <= eps {
        // A (near-)constant segment: the convention branches depend on
        // *exact* zero energy, which prefix-sum cancellation cannot
        // witness — defer to the naive formulation.
        return crate::kcd::centered_correlation(xs, ys);
    }
    let dot = simd::dot(tier, xs, ys);
    let centered = dot - n * mx * my;
    (centered / (nx.sqrt() * ny.sqrt())).clamp(-1.0, 1.0)
}

/// Both directions of lag `s` in one fused pass: the dot products of
/// `x[s..]·y[..len]` and `x[..len]·y[s..]` run as the two chains of one
/// [`simd::dot2`] sweep, halving the number of memory sweeps while
/// keeping each chain's lane scheme — and therefore every score bit —
/// identical to [`lag_correlation`] run twice. Either direction with a
/// (near-)degenerate segment takes the exact-oracle path unchanged.
fn lag_correlation_pair(
    tier: SimdTier,
    x: &NormCache,
    y: &NormCache,
    s: usize,
    len: usize,
) -> (f64, f64) {
    let n = len as f64;
    let eps = EPS_PER_POINT * n;
    let (mx1, nx1) = segment_moments(x, s, len);
    let (my1, ny1) = segment_moments(y, 0, len);
    let (mx2, nx2) = segment_moments(x, 0, len);
    let (my2, ny2) = segment_moments(y, s, len);
    if nx1 <= eps || ny1 <= eps || nx2 <= eps || ny2 <= eps {
        return (
            lag_correlation(tier, x, y, s, 0, len),
            lag_correlation(tier, x, y, 0, s, len),
        );
    }
    let xa = &x.norm[s..s + len];
    let yb = &y.norm[..len];
    let xb = &x.norm[..len];
    let ya = &y.norm[s..s + len];
    let (d1, d2) = simd::dot2(tier, xa, yb, xb, ya);
    let c1 = ((d1 - n * mx1 * my1) / (nx1.sqrt() * ny1.sqrt())).clamp(-1.0, 1.0);
    let c2 = ((d2 - n * mx2 * my2) / (nx2.sqrt() * ny2.sqrt())).clamp(-1.0, 1.0);
    (c1, c2)
}

/// Lags 0, 1 and 2 — five chains (lag 0 is its own reverse) — grouped
/// behind one moments/degeneracy check over `x.norm[..len]` and
/// `y.norm[..len]`. Every chain runs the shared lane scheme
/// ([`simd::dot`] / [`simd::dot2`]), so all five scores are
/// bit-identical to the unfused passes; any (near-)degenerate segment
/// drops the whole step back to the narrower kernels. Requires
/// `len >= 4`.
fn lag_correlation_penta(
    tier: SimdTier,
    x: &NormCache,
    y: &NormCache,
    len: usize,
) -> (f64, f64, f64, f64, f64) {
    let l1 = len - 1;
    let l2 = len - 2;
    let (n0, n1, n2) = (len as f64, l1 as f64, l2 as f64);
    let (mx0, nx0) = segment_moments(x, 0, len);
    let (my0, ny0) = segment_moments(y, 0, len);
    let (mx1, nx1) = segment_moments(x, 1, l1);
    let (my1, ny1) = segment_moments(y, 0, l1);
    let (mx2, nx2) = segment_moments(x, 0, l1);
    let (my2, ny2) = segment_moments(y, 1, l1);
    let (mx3, nx3) = segment_moments(x, 2, l2);
    let (my3, ny3) = segment_moments(y, 0, l2);
    let (mx4, nx4) = segment_moments(x, 0, l2);
    let (my4, ny4) = segment_moments(y, 2, l2);
    let (eps0, eps1, eps2) = (EPS_PER_POINT * n0, EPS_PER_POINT * n1, EPS_PER_POINT * n2);
    if nx0 <= eps0
        || ny0 <= eps0
        || nx1 <= eps1
        || ny1 <= eps1
        || nx2 <= eps1
        || ny2 <= eps1
        || nx3 <= eps2
        || ny3 <= eps2
        || nx4 <= eps2
        || ny4 <= eps2
    {
        let c0 = lag_correlation(tier, x, y, 0, 0, len);
        let (c1, c2) = lag_correlation_pair(tier, x, y, 1, l1);
        let (c3, c4) = lag_correlation_pair(tier, x, y, 2, l2);
        return (c0, c1, c2, c3, c4);
    }
    let xs = &x.norm[..len];
    let ys = &y.norm[..len];
    let d0 = simd::dot(tier, xs, ys);
    let (d1, d2) = simd::dot2(tier, &xs[1..], &ys[..l1], &xs[..l1], &ys[1..]);
    let (d3, d4) = simd::dot2(tier, &xs[2..], &ys[..l2], &xs[..l2], &ys[2..]);
    let c0 = ((d0 - n0 * mx0 * my0) / (nx0.sqrt() * ny0.sqrt())).clamp(-1.0, 1.0);
    let c1 = ((d1 - n1 * mx1 * my1) / (nx1.sqrt() * ny1.sqrt())).clamp(-1.0, 1.0);
    let c2 = ((d2 - n1 * mx2 * my2) / (nx2.sqrt() * ny2.sqrt())).clamp(-1.0, 1.0);
    let c3 = ((d3 - n2 * mx3 * my3) / (nx3.sqrt() * ny3.sqrt())).clamp(-1.0, 1.0);
    let c4 = ((d4 - n2 * mx4 * my4) / (nx4.sqrt() * ny4.sqrt())).clamp(-1.0, 1.0);
    (c0, c1, c2, c3, c4)
}

/// Lags `s` and `s + 1` — four direction chains — grouped behind one
/// moments/degeneracy check. The lag-`s` segments are `len` points, the
/// lag-`s + 1` segments `len - 1`; each direction pair runs as one
/// [`simd::dot2`] sweep under the shared lane scheme, so each of the
/// four scores is bit-identical to the unfused passes; any
/// (near-)degenerate segment drops the whole step back to the
/// dual-chain path.
fn lag_correlation_quad(
    tier: SimdTier,
    x: &NormCache,
    y: &NormCache,
    s: usize,
    len: usize,
) -> (f64, f64, f64, f64) {
    let n1 = len as f64;
    let short = len - 1;
    let n2 = short as f64;
    let (mx1, nx1) = segment_moments(x, s, len);
    let (my1, ny1) = segment_moments(y, 0, len);
    let (mx2, nx2) = segment_moments(x, 0, len);
    let (my2, ny2) = segment_moments(y, s, len);
    let (mx3, nx3) = segment_moments(x, s + 1, short);
    let (my3, ny3) = segment_moments(y, 0, short);
    let (mx4, nx4) = segment_moments(x, 0, short);
    let (my4, ny4) = segment_moments(y, s + 1, short);
    let eps1 = EPS_PER_POINT * n1;
    let eps2 = EPS_PER_POINT * n2;
    if nx1 <= eps1
        || ny1 <= eps1
        || nx2 <= eps1
        || ny2 <= eps1
        || nx3 <= eps2
        || ny3 <= eps2
        || nx4 <= eps2
        || ny4 <= eps2
    {
        let (c1, c2) = lag_correlation_pair(tier, x, y, s, len);
        let (c3, c4) = lag_correlation_pair(tier, x, y, s + 1, short);
        return (c1, c2, c3, c4);
    }
    let xa = &x.norm[s..s + len];
    let ya = &y.norm[s..s + len];
    let xb = &x.norm[..len];
    let yb = &y.norm[..len];
    let xc = &x.norm[s + 1..s + 1 + short];
    let yd = &y.norm[s + 1..s + 1 + short];
    let (d1, d2) = simd::dot2(tier, xa, yb, xb, ya);
    let (d3, d4) = simd::dot2(tier, xc, &yb[..short], &xb[..short], yd);
    let c1 = ((d1 - n1 * mx1 * my1) / (nx1.sqrt() * ny1.sqrt())).clamp(-1.0, 1.0);
    let c2 = ((d2 - n1 * mx2 * my2) / (nx2.sqrt() * ny2.sqrt())).clamp(-1.0, 1.0);
    let c3 = ((d3 - n2 * mx3 * my3) / (nx3.sqrt() * ny3.sqrt())).clamp(-1.0, 1.0);
    let c4 = ((d4 - n2 * mx4 * my4) / (nx4.sqrt() * ny4.sqrt())).clamp(-1.0, 1.0);
    (c1, c2, c3, c4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcd::kcd_normalized;
    use dbcatcher_signal::normalize::min_max;

    /// Deterministic pseudo-random stream.
    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        }
    }

    fn feed(engine: &mut IncrementalCorrelator, series: &[Vec<f64>], upto: usize) {
        let start = engine.next_tick() as usize;
        for t in start..upto {
            let frame: Vec<Vec<f64>> = series.iter().map(|kpis| vec![kpis[t]]).collect();
            engine.push(&frame);
        }
    }

    /// Reference score via the naive path over the same window.
    fn naive(series: &[Vec<f64>], a: usize, b: usize, start: usize, len: usize, m: usize) -> f64 {
        let x = min_max(&series[a][start..start + len]);
        let y = min_max(&series[b][start..start + len]);
        kcd_normalized(&x, &y, m)
    }

    #[test]
    fn matches_naive_on_random_windows() {
        let mut next = lcg(42);
        let series: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..200).map(|_| next() * 50.0).collect())
            .collect();
        let mut engine = IncrementalCorrelator::new(3, 1, 140);
        for (start, len) in [(0usize, 20usize), (20, 30), (50, 25), (75, 60)] {
            feed(&mut engine, &series, start + len);
            for (a, b) in [(0, 1), (0, 2), (1, 2)] {
                for m in [0usize, 3, 5] {
                    let fast = engine.pair_score(a, b, 0, start as u64, len, m);
                    let slow = naive(&series, a, b, start, len, m);
                    assert!(
                        (fast - slow).abs() < 1e-9,
                        "({a},{b}) window ({start},{len}) m={m}: {fast} vs {slow}"
                    );
                }
            }
        }
    }

    #[test]
    fn expansion_extends_cache_and_matches_naive() {
        let mut next = lcg(7);
        let series: Vec<Vec<f64>> = (0..2)
            .map(|_| (0..100).map(|_| next() * 10.0 - 5.0).collect())
            .collect();
        let mut engine = IncrementalCorrelator::new(2, 1, 140);
        // same start, growing window — the expansion path
        for len in [10usize, 20, 30, 40, 60] {
            feed(&mut engine, &series, len);
            let fast = engine.pair_score(0, 1, 0, 0, len, 3);
            let slow = naive(&series, 0, 1, 0, len, 3);
            assert!((fast - slow).abs() < 1e-9, "len {len}: {fast} vs {slow}");
        }
    }

    #[test]
    fn constant_conventions_are_exact() {
        let flat = vec![5.0; 60];
        let flat2 = vec![-3.0; 60];
        let varying: Vec<f64> = (0..60).map(|i| (i as f64 * 0.3).sin()).collect();
        let series = vec![flat, flat2, varying];
        let mut engine = IncrementalCorrelator::new(3, 1, 140);
        feed(&mut engine, &series, 40);
        assert_eq!(engine.pair_score(0, 1, 0, 10, 30, 5), 1.0);
        assert_eq!(engine.pair_score(0, 2, 0, 10, 30, 5), 0.0);
        assert_eq!(engine.pair_score(2, 1, 0, 10, 30, 5), 0.0);
    }

    #[test]
    fn flat_segment_inside_varying_window_matches_naive() {
        // A window whose interior contains an exactly constant stretch —
        // the degenerate-segment fallback must reproduce the naive
        // convention for lags that align onto the flat part.
        let mut a = vec![1.0; 30];
        a[0] = 0.0; // varies overall, flat on [1..30)
        let b: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let series = vec![a, b];
        let mut engine = IncrementalCorrelator::new(2, 1, 140);
        feed(&mut engine, &series, 30);
        for m in [0usize, 5, 14] {
            let fast = engine.pair_score(0, 1, 0, 0, 30, m);
            let slow = naive(&series, 0, 1, 0, 30, m);
            assert!((fast - slow).abs() < 1e-9, "m={m}: {fast} vs {slow}");
        }
    }

    #[test]
    fn symmetric_in_arguments() {
        let mut next = lcg(99);
        let series: Vec<Vec<f64>> = (0..2).map(|_| (0..50).map(|_| next()).collect()).collect();
        let mut engine = IncrementalCorrelator::new(2, 1, 140);
        feed(&mut engine, &series, 50);
        let ab = engine.pair_score(0, 1, 0, 20, 30, 4);
        let ba = engine.pair_score(1, 0, 0, 20, 30, 4);
        assert!((ab - ba).abs() < 1e-12, "{ab} vs {ba}");
    }

    #[test]
    fn long_run_with_eviction_matches_naive() {
        let mut next = lcg(1234);
        let cap = 50usize;
        let series: Vec<Vec<f64>> = (0..2)
            .map(|_| (0..400).map(|_| next() * 100.0).collect())
            .collect();
        let mut engine = IncrementalCorrelator::new(2, 1, cap);
        let mut start = 0usize;
        let len = 20usize;
        while start + len <= 400 {
            feed(&mut engine, &series, start + len);
            let fast = engine.pair_score(0, 1, 0, start as u64, len, 3);
            let slow = naive(&series, 0, 1, start, len, 3);
            assert!(
                (fast - slow).abs() < 1e-9,
                "start {start}: {fast} vs {slow}"
            );
            start += len;
        }
    }

    #[test]
    fn from_queues_replays_state() {
        let mut next = lcg(5);
        let series: Vec<Vec<f64>> = (0..2)
            .map(|_| (0..80).map(|_| next() * 9.0).collect())
            .collect();
        let mut queues = KpiQueues::new(2, 1, 60);
        let mut live = IncrementalCorrelator::new(2, 1, 60);
        for t in 0..80 {
            let frame: Vec<Vec<f64>> = series.iter().map(|kpis| vec![kpis[t]]).collect();
            queues.push(&frame);
            live.push(&frame);
        }
        let mut restored = IncrementalCorrelator::from_queues(&queues);
        assert_eq!(restored.next_tick(), live.next_tick());
        let a = live.pair_score(0, 1, 0, 60, 20, 3);
        let b = restored.pair_score(0, 1, 0, 60, 20, 3);
        assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
    }

    #[test]
    fn fused_pair_is_bit_identical_to_two_single_passes() {
        // The dual-chain kernel is an instruction-scheduling change only:
        // each direction's summation order is untouched, so the golden
        // verdict streams (full-precision incremental scores) cannot move.
        let mut next = lcg(77);
        for len in [2usize, 3, 5, 17, 60, 140] {
            let raw_x: Vec<f64> = (0..len).map(|_| next() * 20.0 - 10.0).collect();
            let raw_y: Vec<f64> = (0..len).map(|_| next() * 20.0 - 10.0).collect();
            let mut cx = NormCache::with_capacity(len);
            let mut cy = NormCache::with_capacity(len);
            let (lo_x, hi_x) = raw_x
                .iter()
                .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
            let (lo_y, hi_y) = raw_y
                .iter()
                .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
            cx.lo = lo_x;
            cx.hi = hi_x;
            cy.lo = lo_y;
            cy.hi = hi_y;
            cx.extend(&raw_x);
            cy.extend(&raw_y);
            for s in 1..len.saturating_sub(1) {
                let seg = len - s;
                for &tier in SimdTier::supported() {
                    let (c1, c2) = lag_correlation_pair(tier, &cx, &cy, s, seg);
                    let r1 = lag_correlation(tier, &cx, &cy, s, 0, seg);
                    let r2 = lag_correlation(tier, &cx, &cy, 0, s, seg);
                    assert_eq!(c1.to_bits(), r1.to_bits(), "{tier:?} len {len} s {s} dir 1");
                    assert_eq!(c2.to_bits(), r2.to_bits(), "{tier:?} len {len} s {s} dir 2");
                }
            }
        }
    }

    #[test]
    fn fused_quad_is_bit_identical_to_two_pairs() {
        // Same contract one level up: folding lags s and s + 1 into one
        // sweep must leave all four scores bit-identical to the
        // dual-chain passes.
        let mut next = lcg(99);
        for len in [4usize, 5, 17, 60, 140] {
            let raw_x: Vec<f64> = (0..len).map(|_| next() * 20.0 - 10.0).collect();
            let raw_y: Vec<f64> = (0..len).map(|_| next() * 20.0 - 10.0).collect();
            let mut cx = NormCache::with_capacity(len);
            let mut cy = NormCache::with_capacity(len);
            let (lo_x, hi_x) = raw_x
                .iter()
                .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
            let (lo_y, hi_y) = raw_y
                .iter()
                .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
            cx.lo = lo_x;
            cx.hi = hi_x;
            cy.lo = lo_y;
            cy.hi = hi_y;
            cx.extend(&raw_x);
            cy.extend(&raw_y);
            for s in 1..len.saturating_sub(2) {
                let seg = len - s;
                for &tier in SimdTier::supported() {
                    let (q1, q2, q3, q4) = lag_correlation_quad(tier, &cx, &cy, s, seg);
                    let (p1, p2) = lag_correlation_pair(tier, &cx, &cy, s, seg);
                    let (p3, p4) = lag_correlation_pair(tier, &cx, &cy, s + 1, seg - 1);
                    assert_eq!(
                        q1.to_bits(),
                        p1.to_bits(),
                        "{tier:?} len {len} s {s} lag s dir 1"
                    );
                    assert_eq!(
                        q2.to_bits(),
                        p2.to_bits(),
                        "{tier:?} len {len} s {s} lag s dir 2"
                    );
                    assert_eq!(
                        q3.to_bits(),
                        p3.to_bits(),
                        "{tier:?} len {len} s {s} lag s+1 dir 1"
                    );
                    assert_eq!(
                        q4.to_bits(),
                        p4.to_bits(),
                        "{tier:?} len {len} s {s} lag s+1 dir 2"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_penta_is_bit_identical_to_narrow_kernels() {
        // The lag-0..=2 sweep must reproduce the plain pass and both
        // dual-chain passes bit for bit.
        let mut next = lcg(1234);
        for len in [4usize, 5, 17, 60, 140] {
            let raw_x: Vec<f64> = (0..len).map(|_| next() * 20.0 - 10.0).collect();
            let raw_y: Vec<f64> = (0..len).map(|_| next() * 20.0 - 10.0).collect();
            let mut cx = NormCache::with_capacity(len);
            let mut cy = NormCache::with_capacity(len);
            let (lo_x, hi_x) = raw_x
                .iter()
                .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
            let (lo_y, hi_y) = raw_y
                .iter()
                .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
            cx.lo = lo_x;
            cx.hi = hi_x;
            cy.lo = lo_y;
            cy.hi = hi_y;
            cx.extend(&raw_x);
            cy.extend(&raw_y);
            for &tier in SimdTier::supported() {
                let (c0, c1, c2, c3, c4) = lag_correlation_penta(tier, &cx, &cy, len);
                let r0 = lag_correlation(tier, &cx, &cy, 0, 0, len);
                let (r1, r2) = lag_correlation_pair(tier, &cx, &cy, 1, len - 1);
                let (r3, r4) = lag_correlation_pair(tier, &cx, &cy, 2, len - 2);
                assert_eq!(c0.to_bits(), r0.to_bits(), "{tier:?} len {len} lag 0");
                assert_eq!(c1.to_bits(), r1.to_bits(), "{tier:?} len {len} lag 1 dir 1");
                assert_eq!(c2.to_bits(), r2.to_bits(), "{tier:?} len {len} lag 1 dir 2");
                assert_eq!(c3.to_bits(), r3.to_bits(), "{tier:?} len {len} lag 2 dir 1");
                assert_eq!(c4.to_bits(), r4.to_bits(), "{tier:?} len {len} lag 2 dir 2");
            }
        }
    }

    #[test]
    fn pair_score_is_bit_identical_across_tiers_and_batch_path() {
        // One engine per supported dispatch tier over the same stream:
        // every tier and both entry points (classic pair_score vs
        // prepare + prepared) must agree bit for bit.
        let mut next = lcg(31);
        let series: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..100).map(|_| next() * 30.0 - 15.0).collect())
            .collect();
        let mask = [true, true, true];
        let mut reference: Option<Vec<u64>> = None;
        for &tier in SimdTier::supported() {
            let mut engine = IncrementalCorrelator::new(3, 1, 140).with_tier(tier);
            assert_eq!(engine.tier(), tier);
            feed(&mut engine, &series, 100);
            let mut bits = Vec::new();
            for (start, len) in [(40u64, 60usize), (70, 30)] {
                for (a, b) in [(0usize, 1usize), (0, 2), (1, 2)] {
                    let direct = engine.pair_score(a, b, 0, start, len, 5);
                    engine.prepare_windows(0, start, len, &mask);
                    let prepared = engine.pair_score_prepared(a, b, 0, len, 5);
                    assert_eq!(
                        direct.to_bits(),
                        prepared.to_bits(),
                        "{tier:?} ({a},{b}) window ({start},{len}): batch path diverged"
                    );
                    bits.push(direct.to_bits());
                }
            }
            match &reference {
                None => reference = Some(bits),
                Some(want) => assert_eq!(want, &bits, "{tier:?} diverged from first tier"),
            }
        }
    }

    #[test]
    fn steady_state_pair_scores_do_not_reallocate() {
        // After warmup the per-series buffers (data, deques, norm cache)
        // must hold their allocations through push + pair_score cycles.
        let mut next = lcg(2024);
        let cap = 60usize;
        let mut engine = IncrementalCorrelator::new(2, 1, cap);
        let len = 20usize;
        for t in 0..3 * cap as u64 {
            engine.push(&[vec![next() * 4.0], vec![next() * 4.0]]);
            if t as usize + 1 >= len {
                let _ = engine.pair_score(0, 1, 0, t + 1 - len as u64, len, 3);
            }
        }
        let fingerprints: Vec<(*const f64, usize)> = engine
            .states
            .iter()
            .map(|s| (s.data.as_ptr(), s.data.capacity()))
            .collect();
        let norm_caps: Vec<usize> = engine
            .states
            .iter()
            .map(|s| s.cache.norm.capacity())
            .collect();
        for t in 3 * cap as u64..5 * cap as u64 {
            engine.push(&[vec![next() * 4.0], vec![next() * 4.0]]);
            let _ = engine.pair_score(0, 1, 0, t + 1 - len as u64, len, 3);
        }
        for (state, (ptr, cap_before)) in engine.states.iter().zip(&fingerprints) {
            assert_eq!(state.data.as_ptr(), *ptr, "data buffer must not move");
            assert_eq!(state.data.capacity(), *cap_before);
        }
        for (state, cap_before) in engine.states.iter().zip(&norm_caps) {
            assert_eq!(state.cache.norm.capacity(), *cap_before);
        }
    }

    #[test]
    #[should_panic(expected = "suffix windows only")]
    fn non_suffix_window_panics() {
        let mut engine = IncrementalCorrelator::new(2, 1, 40);
        for t in 0..30 {
            engine.push(&[vec![t as f64], vec![t as f64 * 2.0]]);
        }
        let _ = engine.pair_score(0, 1, 0, 0, 20, 3);
    }
}
