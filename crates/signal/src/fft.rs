//! Fast Fourier transform.
//!
//! Iterative radix-2 Cooley–Tukey FFT over a minimal [`Complex`] type.
//! Non-power-of-two inputs are handled by the callers either via zero
//! padding ([`next_pow2`]) or by the O(n²) reference DFT ([`dft`]), which is
//! also used to cross-check the fast path in tests.

use crate::error::SignalError;
use std::ops::{Add, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// Deliberately tiny: only the operations the FFT and the detectors need.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    #[inline]
    pub const fn zero() -> Self {
        Self { re: 0.0, im: 0.0 }
    }

    /// `e^{iθ}` — a point on the unit circle.
    #[inline]
    pub fn from_polar_unit(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude (L2 norm).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude; cheaper than [`Complex::abs`] when comparing.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Scales both components by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Smallest power of two `>= n` (and `>= 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT.
///
/// # Errors
/// Returns [`SignalError::InvalidParameter`] when the length is not a power
/// of two, and [`SignalError::EmptyInput`] on an empty buffer.
pub fn fft_in_place(buf: &mut [Complex]) -> Result<(), SignalError> {
    transform(buf, false)
}

/// In-place inverse FFT (includes the `1/n` scaling).
///
/// # Errors
/// Same contract as [`fft_in_place`].
pub fn ifft_in_place(buf: &mut [Complex]) -> Result<(), SignalError> {
    transform(buf, true)?;
    let inv = 1.0 / buf.len() as f64;
    for v in buf.iter_mut() {
        *v = v.scale(inv);
    }
    Ok(())
}

fn transform(buf: &mut [Complex], inverse: bool) -> Result<(), SignalError> {
    let n = buf.len();
    if n == 0 {
        return Err(SignalError::EmptyInput);
    }
    if !n.is_power_of_two() {
        return Err(SignalError::InvalidParameter {
            name: "len",
            reason: format!("{n} is not a power of two"),
        });
    }
    // Bit-reversal permutation (n == 1 has no bits to reverse, and the
    // shift by usize::BITS would overflow).
    let bits = n.trailing_zeros();
    if bits > 0 {
        for i in 0..n {
            let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
            if j > i {
                buf.swap(i, j);
            }
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::from_polar_unit(ang);
        for chunk in buf.chunks_exact_mut(len) {
            let (lo, hi) = chunk.split_at_mut(len / 2);
            let mut w = Complex::new(1.0, 0.0);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *a;
                let v = *b * w;
                *a = u + v;
                *b = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Forward FFT of a real series, zero-padded to the next power of two.
///
/// Returns the full complex spectrum of the padded series.
///
/// # Errors
/// Returns [`SignalError::EmptyInput`] on an empty slice.
pub fn rfft_padded(series: &[f64]) -> Result<Vec<Complex>, SignalError> {
    if series.is_empty() {
        return Err(SignalError::EmptyInput);
    }
    let n = next_pow2(series.len());
    let mut buf = Vec::with_capacity(n);
    buf.extend(series.iter().map(|&x| Complex::new(x, 0.0)));
    buf.resize(n, Complex::zero());
    fft_in_place(&mut buf)?;
    Ok(buf)
}

/// Inverse FFT returning only real parts, truncated to `out_len` samples.
///
/// # Errors
/// Propagates [`ifft_in_place`] errors; `out_len` must not exceed the
/// spectrum length.
pub fn irfft_truncated(spectrum: &[Complex], out_len: usize) -> Result<Vec<f64>, SignalError> {
    if out_len > spectrum.len() {
        return Err(SignalError::InvalidParameter {
            name: "out_len",
            reason: format!("{out_len} exceeds spectrum length {}", spectrum.len()),
        });
    }
    let mut buf = spectrum.to_vec();
    ifft_in_place(&mut buf)?;
    Ok(buf.iter().take(out_len).map(|c| c.re).collect())
}

/// Reference O(n²) DFT of a real series — any length.
///
/// Used to validate the fast path and for tiny inputs where padding would
/// distort the spectrum.
///
/// # Errors
/// Returns [`SignalError::EmptyInput`] on an empty slice.
pub fn dft(series: &[f64]) -> Result<Vec<Complex>, SignalError> {
    let n = series.len();
    if n == 0 {
        return Err(SignalError::EmptyInput);
    }
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Complex::zero();
        for (t, &x) in series.iter().enumerate() {
            let ang = -std::f64::consts::TAU * (k * t) as f64 / n as f64;
            acc = acc + Complex::from_polar_unit(ang).scale(x);
        }
        out.push(acc);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} vs {b}");
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert_close(Complex::new(3.0, 4.0).abs(), 5.0, 1e-12);
        assert_close(Complex::new(3.0, 4.0).norm_sqr(), 25.0, 1e-12);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(17), 32);
        assert_eq!(next_pow2(1024), 1024);
    }

    #[test]
    fn fft_rejects_non_pow2() {
        let mut buf = vec![Complex::zero(); 3];
        assert!(matches!(
            fft_in_place(&mut buf),
            Err(SignalError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn fft_rejects_empty() {
        let mut buf: Vec<Complex> = vec![];
        assert_eq!(fft_in_place(&mut buf), Err(SignalError::EmptyInput));
    }

    #[test]
    fn single_element_fft_is_identity() {
        // regression: n = 1 used to overflow the bit-reversal shift in
        // debug builds
        let mut buf = vec![Complex::new(3.5, -1.25)];
        fft_in_place(&mut buf).unwrap();
        assert_eq!(buf[0], Complex::new(3.5, -1.25));
        ifft_in_place(&mut buf).unwrap();
        assert_eq!(buf[0], Complex::new(3.5, -1.25));
        let spec = rfft_padded(&[7.0]).unwrap();
        assert_eq!(spec.len(), 1);
        let back = irfft_truncated(&spec, 1).unwrap();
        assert!((back[0] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::zero(); 8];
        buf[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut buf).unwrap();
        for c in &buf {
            assert_close(c.re, 1.0, 1e-12);
            assert_close(c.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_concentrates_dc() {
        let mut buf = vec![Complex::new(2.0, 0.0); 16];
        fft_in_place(&mut buf).unwrap();
        assert_close(buf[0].re, 32.0, 1e-9);
        for c in &buf[1..] {
            assert_close(c.abs(), 0.0, 1e-9);
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let series: Vec<f64> = (0..64)
            .map(|i| {
                let t = i as f64;
                (t * 0.3).sin() + 0.5 * (t * 1.7).cos() + 0.1 * t
            })
            .collect();
        let fast = rfft_padded(&series).unwrap();
        let slow = dft(&series).unwrap();
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert_close(f.re, s.re, 1e-8);
            assert_close(f.im, s.im, 1e-8);
        }
    }

    #[test]
    fn fft_round_trip_recovers_signal() {
        let series: Vec<f64> = (0..100).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let spectrum = rfft_padded(&series).unwrap();
        let back = irfft_truncated(&spectrum, series.len()).unwrap();
        for (orig, rec) in series.iter().zip(back.iter()) {
            assert_close(*orig, *rec, 1e-9);
        }
    }

    #[test]
    fn ifft_round_trip_complex() {
        let mut buf: Vec<Complex> = (0..32)
            .map(|i| Complex::new(i as f64, (i as f64).sin()))
            .collect();
        let orig = buf.clone();
        fft_in_place(&mut buf).unwrap();
        ifft_in_place(&mut buf).unwrap();
        for (a, b) in orig.iter().zip(buf.iter()) {
            assert_close(a.re, b.re, 1e-9);
            assert_close(a.im, b.im, 1e-9);
        }
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        let n = 128usize;
        let k = 5usize;
        let series: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * k as f64 * i as f64 / n as f64).sin())
            .collect();
        let spec = rfft_padded(&series).unwrap();
        let (argmax, _) = spec
            .iter()
            .take(n / 2)
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .unwrap();
        assert_eq!(argmax, k);
    }

    #[test]
    fn irfft_truncated_rejects_oversize() {
        let spec = vec![Complex::zero(); 4];
        assert!(irfft_truncated(&spec, 5).is_err());
    }

    #[test]
    fn dft_rejects_empty() {
        assert_eq!(dft(&[]), Err(SignalError::EmptyInput));
    }

    #[test]
    fn parseval_energy_preserved() {
        let series: Vec<f64> = (0..64).map(|i| ((i * 31) % 17) as f64 / 17.0).collect();
        let spec = rfft_padded(&series).unwrap();
        let time_energy: f64 = series.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / spec.len() as f64;
        assert_close(time_energy, freq_energy, 1e-8);
    }
}
