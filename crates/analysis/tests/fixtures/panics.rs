//! Known-bad fixture: panic shapes, a doc comment, and a valid waiver.

/// Docs may say unwrap() freely without firing.
pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

pub fn second(xs: &[f64]) -> f64 {
    // dbclint: allow(panic-free) — fixture waiver carrying a reason.
    *xs.get(1).expect("needs two samples")
}

pub fn boom() {
    panic!("fixture");
}
