//! Client side of the wire protocol: the `dbcatcher emit` engine plus
//! small helpers (`stats`, `stop`, verdict subscription).
//!
//! The emitter is windowed: it keeps at most `window` unacknowledged
//! ticks in flight per connection, and treats every `Rejected` as a
//! rewind instruction — the per-unit cursor moves back to the server's
//! `expected` tick and the stream is resent from there. Because replies
//! arrive in request order, any already-in-flight later ticks bounce as
//! out-of-order and converge to the same cursor, so backpressure costs
//! retries, never correctness.

use crate::metrics::MetricsSnapshot;
use crate::protocol::{self, ProtocolError, Request, Response, MAX_LINE_BYTES};
use dbcatcher_core::pipeline::Verdict;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent a line this client cannot decode.
    Protocol(ProtocolError),
    /// The server reported an error (`Response::Error`).
    Server(String),
    /// The server replied with something the protocol does not allow
    /// here.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(e) => write!(f, "bad server reply: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected server reply: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One unit's telemetry to stream: `frames[tick][db][kpi]`, already
/// fault-injected if the caller wants faults on the wire.
#[derive(Debug, Clone)]
pub struct UnitStream {
    /// Unit id on the server.
    pub unit: usize,
    /// Databases in the unit.
    pub dbs: usize,
    /// KPIs per database.
    pub kpis: usize,
    /// Optional participation mask (`mask[kpi][db]`).
    pub participation: Option<Vec<Vec<bool>>>,
    /// The frames, tick-major.
    pub frames: Vec<Vec<Vec<f64>>>,
}

/// Emitter knobs.
#[derive(Debug, Clone)]
pub struct EmitOptions {
    /// Ticks per second per unit; `0.0` streams at full speed.
    pub rate: f64,
    /// Max unacknowledged ticks in flight on the connection.
    pub window: usize,
    /// Stop the daemon after the stream completes.
    pub stop_after: bool,
}

impl Default for EmitOptions {
    fn default() -> Self {
        Self {
            rate: 0.0,
            window: 32,
            stop_after: false,
        }
    }
}

/// One verdict received over the wire.
#[derive(Debug, Clone)]
pub struct VerdictRecord {
    /// Unit id.
    pub unit: usize,
    /// Tick whose ingestion resolved the verdict.
    pub at_tick: u64,
    /// The verdict.
    pub verdict: Verdict,
}

/// What an emit run did.
#[derive(Debug, Clone, Default)]
pub struct EmitReport {
    /// Ticks accepted by the server.
    pub ticks_accepted: u64,
    /// Backpressure rejections (each later resent).
    pub rejects_backpressure: u64,
    /// Out-of-order rejections (rewind echoes).
    pub rejects_order: u64,
    /// All verdicts received, in arrival order.
    pub verdicts: Vec<VerdictRecord>,
    /// `(unit, next_tick)` for units the server resumed from a snapshot.
    pub resumed: Vec<(usize, u64)>,
    /// Unit-scoped server errors (degraded units); the stream for such a
    /// unit stops but the run continues.
    pub errors: Vec<String>,
    /// Set when the run died on a connection-level failure (daemon
    /// crashed or closed mid-stream) and the report is partial. Only
    /// [`emit_surviving`] produces aborted reports; [`emit`] turns the
    /// same failures into `Err`.
    pub aborted: Option<String>,
}

impl EmitReport {
    /// Sorts verdicts into the offline emission order
    /// `(unit, at_tick, db, start_tick)` so the stream can be diffed
    /// against `dbcatcher detect` output.
    pub fn sorted_verdicts(&self) -> Vec<VerdictRecord> {
        let mut out = self.verdicts.clone();
        out.sort_by_key(|r| (r.unit, r.at_tick, r.verdict.db, r.verdict.start_tick));
        out
    }
}

/// A line-oriented protocol connection.
struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    line: String,
}

impl Connection {
    fn open<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            line: String::new(),
        })
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let line = protocol::encode(request);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        self.line.clear();
        let mut taken = (&mut self.reader).take((MAX_LINE_BYTES + 2) as u64);
        let n = taken.read_line(&mut self.line)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        protocol::decode_response(&self.line).map_err(ClientError::Protocol)
    }
}

/// Per-unit emit progress.
struct UnitCursor {
    stream: UnitStream,
    /// Next frame index to send.
    next: u64,
    /// The unit stopped accepting ticks (degraded).
    dead: bool,
}

/// Streams every [`UnitStream`] to the daemon and collects the verdicts.
///
/// # Errors
/// Connection-level failures abort; unit-degradation errors are recorded
/// in the report instead.
pub fn emit<A: ToSocketAddrs>(
    addr: A,
    streams: Vec<UnitStream>,
    options: &EmitOptions,
) -> Result<EmitReport, ClientError> {
    let mut conn = Connection::open(addr)?;
    let mut report = EmitReport::default();
    emit_core(&mut conn, streams, options, &mut report)?;
    Ok(report)
}

/// Like [`emit`], but a connection-level failure mid-run (the daemon
/// crashed, was killed, or closed the socket) returns the *partial*
/// report with [`EmitReport::aborted`] set instead of discarding the
/// verdicts and counters collected so far. Before giving up it drains
/// whatever the server managed to flush onto the wire, so verdicts for
/// ticks that were persisted before the crash are not lost.
///
/// Chaos harnesses use this to reconcile online observations across
/// daemon kills; ordinary producers should keep using [`emit`].
///
/// # Errors
/// Only failing to open the connection errors — past that point every
/// failure is folded into the report.
pub fn emit_surviving<A: ToSocketAddrs>(
    addr: A,
    streams: Vec<UnitStream>,
    options: &EmitOptions,
) -> Result<EmitReport, ClientError> {
    let mut conn = Connection::open(addr)?;
    let mut report = EmitReport::default();
    if let Err(e) = emit_core(&mut conn, streams, options, &mut report) {
        // Best-effort drain of already-buffered broadcasts: bounded by a
        // read timeout so a wedged server cannot hang the harness.
        let _ = conn
            .reader
            .get_ref()
            .set_read_timeout(Some(Duration::from_millis(500)));
        while let Ok(response) = conn.recv() {
            if let Response::Verdict {
                unit,
                at_tick,
                verdict,
            } = response
            {
                report.verdicts.push(VerdictRecord {
                    unit,
                    at_tick,
                    verdict,
                });
            }
        }
        report.aborted = Some(e.to_string());
    }
    Ok(report)
}

fn emit_core(
    conn: &mut Connection,
    streams: Vec<UnitStream>,
    options: &EmitOptions,
    report: &mut EmitReport,
) -> Result<(), ClientError> {
    let mut units: Vec<UnitCursor> = Vec::with_capacity(streams.len());

    // Register every unit up front; a warm-restarted server tells us
    // where to resume.
    for stream in streams {
        conn.send(&Request::Hello {
            unit: stream.unit,
            dbs: stream.dbs,
            kpis: stream.kpis,
            participation: stream.participation.clone(),
        })?;
        let next = loop {
            match conn.recv()? {
                Response::HelloAck {
                    unit,
                    next_tick,
                    resumed,
                } => {
                    if unit != stream.unit {
                        return Err(ClientError::Unexpected(format!(
                            "HelloAck for unit {unit}, expected {}",
                            stream.unit
                        )));
                    }
                    if resumed {
                        report.resumed.push((unit, next_tick));
                    }
                    break next_tick;
                }
                Response::Error { message } => return Err(ClientError::Server(message)),
                Response::Verdict {
                    unit,
                    at_tick,
                    verdict,
                } => report.verdicts.push(VerdictRecord {
                    unit,
                    at_tick,
                    verdict,
                }),
                other => {
                    return Err(ClientError::Unexpected(format!("{other:?}")));
                }
            }
        };
        units.push(UnitCursor {
            stream,
            next,
            dead: false,
        });
    }

    // Windowed streaming, round-robin across units. `inflight` tracks
    // ticks sent but not yet acknowledged.
    let window = options.window.max(1);
    let mut inflight: VecDeque<usize> = VecDeque::new(); // unit ids, send order
    let started = Instant::now();
    let mut sent_rounds = 0u64;
    loop {
        let mut progressed = false;
        for (idx, cursor) in units.iter_mut().enumerate() {
            if inflight.len() >= window {
                break;
            }
            if cursor.dead || cursor.next >= cursor.stream.frames.len() as u64 {
                continue;
            }
            if options.rate > 0.0 {
                let due = Duration::from_secs_f64(sent_rounds as f64 / options.rate);
                let elapsed = started.elapsed();
                if elapsed < due {
                    std::thread::sleep(due - elapsed);
                }
            }
            let tick = cursor.next;
            conn.send(&Request::Tick {
                unit: cursor.stream.unit,
                tick,
                frame: cursor.stream.frames[tick as usize].clone(),
            })?;
            cursor.next += 1;
            inflight.push_back(idx);
            progressed = true;
        }
        if inflight.is_empty() {
            if !progressed {
                break; // every unit drained (or dead) and nothing pending
            }
            continue;
        }
        sent_rounds += 1;
        // Drain acknowledgements until the window has room again (or
        // fully, once there is nothing left to send).
        let all_sent = units
            .iter()
            .all(|c| c.dead || c.next >= c.stream.frames.len() as u64);
        let target = if all_sent { 0 } else { window.saturating_sub(1) };
        while inflight.len() > target {
            let idx = *inflight.front().expect("inflight non-empty");
            match conn.recv()? {
                Response::Accepted { .. } => {
                    inflight.pop_front();
                    report.ticks_accepted += 1;
                }
                Response::Rejected {
                    unit,
                    expected,
                    retry_after_ms,
                    reason,
                    ..
                } => {
                    inflight.pop_front();
                    let cursor = &mut units[idx];
                    debug_assert_eq!(cursor.stream.unit, unit);
                    match reason {
                        protocol::RejectReason::Backpressure => {
                            report.rejects_backpressure += 1;
                            cursor.next = cursor.next.min(expected);
                            if retry_after_ms > 0 {
                                std::thread::sleep(Duration::from_millis(retry_after_ms));
                            }
                        }
                        protocol::RejectReason::OutOfOrder => {
                            report.rejects_order += 1;
                            cursor.next = cursor.next.min(expected);
                        }
                        protocol::RejectReason::Degraded
                        | protocol::RejectReason::UnknownUnit => {
                            cursor.dead = true;
                            report
                                .errors
                                .push(format!("unit {unit} rejected: {reason:?}"));
                        }
                    }
                }
                Response::Verdict {
                    unit,
                    at_tick,
                    verdict,
                } => {
                    report.verdicts.push(VerdictRecord {
                        unit,
                        at_tick,
                        verdict,
                    });
                }
                Response::Error { message } => {
                    // Shard-originated (e.g. the unit degraded). Not an
                    // acknowledgement — the reader keeps acks in request
                    // order, so do not consume an inflight slot; the
                    // unit's next tick bounces as `Degraded` and marks
                    // the cursor dead.
                    report.errors.push(message);
                }
                other => {
                    return Err(ClientError::Unexpected(format!("{other:?}")));
                }
            }
        }
    }

    // Barrier per unit: FlushAck arrives only after every accepted tick
    // (and its verdicts) has been processed.
    for cursor in &units {
        let unit = cursor.stream.unit;
        if cursor.dead {
            continue;
        }
        conn.send(&Request::Flush { unit })?;
        loop {
            match conn.recv()? {
                Response::FlushAck { unit: acked, .. } if acked == unit => break,
                Response::Verdict {
                    unit,
                    at_tick,
                    verdict,
                } => report.verdicts.push(VerdictRecord {
                    unit,
                    at_tick,
                    verdict,
                }),
                Response::Error { message } => {
                    report.errors.push(message);
                    break;
                }
                other => {
                    return Err(ClientError::Unexpected(format!("{other:?}")));
                }
            }
        }
    }

    if options.stop_after {
        conn.send(&Request::Stop)?;
        // Verdicts cannot arrive past the flush barrier; wait for the ack.
        loop {
            match conn.recv() {
                Ok(Response::Stopping) => break,
                Ok(Response::Verdict {
                    unit,
                    at_tick,
                    verdict,
                }) => report.verdicts.push(VerdictRecord {
                    unit,
                    at_tick,
                    verdict,
                }),
                Ok(_) => continue,
                Err(_) => break, // server may close first; stop is done
            }
        }
    }
    Ok(())
}

/// Fetches one metrics snapshot.
///
/// # Errors
/// Propagates connection and protocol failures.
pub fn fetch_stats<A: ToSocketAddrs>(addr: A) -> Result<MetricsSnapshot, ClientError> {
    let mut conn = Connection::open(addr)?;
    conn.send(&Request::Stats)?;
    match conn.recv()? {
        Response::Stats(snapshot) => Ok(snapshot),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Unexpected(format!("{other:?}"))),
    }
}

/// Asks the daemon to shut down cleanly.
///
/// # Errors
/// Propagates connection and protocol failures.
pub fn send_stop<A: ToSocketAddrs>(addr: A) -> Result<(), ClientError> {
    let mut conn = Connection::open(addr)?;
    conn.send(&Request::Stop)?;
    match conn.recv()? {
        Response::Stopping => Ok(()),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Unexpected(format!("{other:?}"))),
    }
}

/// A verdict-stream consumer connection.
pub struct Subscriber {
    conn: Connection,
}

impl Subscriber {
    /// Connects and switches the connection into subscription mode.
    ///
    /// # Errors
    /// Propagates connection and protocol failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let mut conn = Connection::open(addr)?;
        conn.send(&Request::Subscribe)?;
        match conn.recv()? {
            Response::Subscribed => Ok(Self { conn }),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Blocks until the next broadcast verdict (other broadcast messages
    /// are skipped).
    ///
    /// # Errors
    /// Propagates connection and protocol failures (including EOF when
    /// the daemon shuts down).
    pub fn next_verdict(&mut self) -> Result<VerdictRecord, ClientError> {
        loop {
            if let Response::Verdict {
                unit,
                at_tick,
                verdict,
            } = self.conn.recv()?
            {
                return Ok(VerdictRecord {
                    unit,
                    at_tick,
                    verdict,
                });
            }
        }
    }
}
