//! Turns the criterion shim's raw JSON results (`DBCATCHER_BENCH_JSON`)
//! into the repo-root `BENCH_kcd.json` perf-trajectory artifact:
//! per-config naive/incremental ns-per-tick plus median speedup, so CI
//! runs can be compared across PRs.
//!
//! Usage:
//! `bench-report <raw-results.json> <BENCH_kcd.json>
//!     [--allocs <allocs.json>] [--baseline <old-BENCH_kcd.json>]`
//!
//! * `--allocs` merges the bench binary's `DBCATCHER_BENCH_ALLOCS` heap
//!   audit (allocations per steady-state tick) into each config row;
//! * `--baseline` is the CI regression gate: the run fails when the new
//!   median incremental ns/tick exceeds the baseline's by more than 25 %.

use serde::Value;

/// Maximum tolerated slowdown of median incremental ns/tick vs baseline.
const REGRESSION_LIMIT: f64 = 1.25;

fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        0.5 * (xs[mid - 1] + xs[mid])
    }
}

/// Loads the `{"allocs": [{config, *_allocs_per_tick}…]}` side channel
/// written by the bench binary's heap audit.
fn load_allocs(path: &str) -> Result<Vec<(String, f64, f64)>, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let value: Value = serde_json::from_str(&raw).map_err(|e| format!("parse {path}: {e}"))?;
    let rows = value
        .get("allocs")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: no `allocs` array"))?;
    let mut out = Vec::new();
    for row in rows {
        let Some(Value::Str(config)) = row.get("config") else {
            continue;
        };
        let get = |name: &str| row.get(name).and_then(Value::as_f64).unwrap_or(0.0);
        out.push((
            config.clone(),
            get("naive_allocs_per_tick"),
            get("incremental_allocs_per_tick"),
        ));
    }
    Ok(out)
}

/// The CI regression gate: compares the freshly-measured median
/// incremental ns/tick against a previous `BENCH_kcd.json`.
fn check_baseline(path: &str, new_median: f64) -> Result<(), String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let value: Value = serde_json::from_str(&raw).map_err(|e| format!("parse {path}: {e}"))?;
    let old_median = value
        .get("median_incremental_ns_per_tick")
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{path}: no median_incremental_ns_per_tick"))?;
    if old_median <= 0.0 {
        println!("baseline median is {old_median}; skipping regression gate");
        return Ok(());
    }
    let ratio = new_median / old_median;
    println!(
        "regression gate: median incremental {new_median:.0} ns/tick vs baseline \
         {old_median:.0} ns/tick ({ratio:.2}x, limit {REGRESSION_LIMIT:.2}x)"
    );
    if ratio > REGRESSION_LIMIT {
        return Err(format!(
            "median incremental ns/tick regressed {ratio:.2}x over the baseline \
             (limit {REGRESSION_LIMIT:.2}x)"
        ));
    }
    Ok(())
}

fn run(
    raw_path: &str,
    out_path: &str,
    allocs_path: Option<&str>,
    baseline_path: Option<&str>,
) -> Result<(), String> {
    let raw = std::fs::read_to_string(raw_path).map_err(|e| format!("read {raw_path}: {e}"))?;
    let value: Value = serde_json::from_str(&raw).map_err(|e| format!("parse {raw_path}: {e}"))?;
    let results = value
        .get("results")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{raw_path}: no `results` array"))?;

    // label shape: kcd_backends/<backend>/k<k>_m<m>_d<d>
    let mut configs: Vec<(String, Option<f64>, Option<f64>)> = Vec::new();
    for entry in results {
        let label = match entry.get("label") {
            Some(Value::Str(s)) => s.clone(),
            _ => continue,
        };
        let ns = entry
            .get("ns_per_iter")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let mut parts = label.split('/');
        if parts.next() != Some("kcd_backends") {
            continue;
        }
        let (Some(backend), Some(config)) = (parts.next(), parts.next()) else {
            continue;
        };
        let slot = match configs.iter_mut().find(|(c, _, _)| c == config) {
            Some(slot) => slot,
            None => {
                configs.push((config.to_string(), None, None));
                configs.last_mut().ok_or("push failed")?
            }
        };
        match backend {
            "naive" => slot.1 = Some(ns),
            "incremental" => slot.2 = Some(ns),
            _ => {}
        }
    }
    if configs.is_empty() {
        return Err(format!("{raw_path}: no kcd_backends results"));
    }

    // label shape: kcd_kernels/<op>_<tier>/<n> — per-sweep ns for the
    // dispatch tiers (scalar vs sse2 vs avx2).
    let mut kernels = Vec::new();
    // label shape: kcd_batch/<mode>/<units> — per-unit vs batched ticks.
    let mut batch: Vec<(String, Option<f64>, Option<f64>)> = Vec::new();
    for entry in results {
        let label = match entry.get("label") {
            Some(Value::Str(s)) => s.clone(),
            _ => continue,
        };
        let ns = entry
            .get("ns_per_iter")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let mut parts = label.split('/');
        match parts.next() {
            Some("kcd_kernels") => {
                let (Some(bench), Some(n)) = (parts.next(), parts.next()) else {
                    continue;
                };
                let Some((op, tier)) = bench.rsplit_once('_') else {
                    continue;
                };
                kernels.push(serde_json::json!({
                    "kernel": op,
                    "tier": tier,
                    "n": n,
                    "ns_per_iter": ns,
                }));
            }
            Some("kcd_batch") => {
                let (Some(mode), Some(units)) = (parts.next(), parts.next()) else {
                    continue;
                };
                let slot = match batch.iter_mut().find(|(u, _, _)| u == units) {
                    Some(slot) => slot,
                    None => {
                        batch.push((units.to_string(), None, None));
                        batch.last_mut().ok_or("push failed")?
                    }
                };
                match mode {
                    "per_unit" => slot.1 = Some(ns),
                    "batched" => slot.2 = Some(ns),
                    _ => {}
                }
            }
            _ => continue,
        }
    }
    let batch_rows: Vec<Value> = batch
        .iter()
        .map(|(units, per_unit, batched)| {
            serde_json::json!({
                "units": units,
                "per_unit_ns_per_tick": per_unit.unwrap_or(0.0),
                "batched_ns_per_tick": batched.unwrap_or(0.0),
                "batch_speedup": match (per_unit, batched) {
                    (Some(p), Some(b)) if *b > 0.0 => p / b,
                    _ => 0.0,
                },
            })
        })
        .collect();

    let allocs = match allocs_path {
        Some(path) => load_allocs(path)?,
        None => Vec::new(),
    };

    let mut rows = Vec::new();
    let mut naive_all = Vec::new();
    let mut incremental_all = Vec::new();
    let mut speedups = Vec::new();
    for (config, naive, incremental) in &configs {
        let mut row = serde_json::json!({
            "config": config,
            "naive_ns_per_tick": naive.unwrap_or(0.0),
            "incremental_ns_per_tick": incremental.unwrap_or(0.0),
            "speedup": match (naive, incremental) {
                (Some(n), Some(i)) if *i > 0.0 => n / i,
                _ => 0.0,
            },
        });
        if let Some((_, naive_allocs, incr_allocs)) = allocs.iter().find(|(c, _, _)| c == config) {
            if let Value::Object(fields) = &mut row {
                fields.push((
                    "naive_allocs_per_tick".to_string(),
                    Value::F64(*naive_allocs),
                ));
                fields.push((
                    "incremental_allocs_per_tick".to_string(),
                    Value::F64(*incr_allocs),
                ));
            }
        }
        if let Some(n) = naive {
            naive_all.push(*n);
        }
        if let Some(i) = incremental {
            incremental_all.push(*i);
            if let Some(n) = naive {
                if *i > 0.0 {
                    speedups.push(n / i);
                }
            }
        }
        rows.push(row);
    }

    let fast = std::env::var("DBCATCHER_BENCH_FAST").is_ok_and(|v| v == "1");
    let median_incremental = median(incremental_all);
    let report = serde_json::json!({
        "bench": "kcd_backends",
        "mode": if fast { "fast" } else { "full" },
        "unit": "ns_per_tick (one detector tick: push + all-pairs window scores)",
        "configs": rows,
        "median_naive_ns_per_tick": median(naive_all),
        "median_incremental_ns_per_tick": median_incremental,
        "median_speedup": median(speedups),
        "kernels": kernels,
        "batch": batch_rows,
    });
    let json = serde_json::to_string(&report).map_err(|e| format!("render report: {e}"))?;
    std::fs::write(out_path, format!("{json}\n")).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path} ({} config(s))", configs.len());

    if let Some(path) = baseline_path {
        check_baseline(path, median_incremental)?;
    }
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage: bench-report <raw-results.json> <BENCH_kcd.json> \
         [--allocs <allocs.json>] [--baseline <old-BENCH_kcd.json>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut allocs = None;
    let mut baseline = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--allocs" => {
                allocs = args.get(i + 1).cloned();
                if allocs.is_none() {
                    usage();
                }
                i += 2;
            }
            "--baseline" => {
                baseline = args.get(i + 1).cloned();
                if baseline.is_none() {
                    usage();
                }
                i += 2;
            }
            other if other.starts_with("--") => usage(),
            other => {
                positional.push(other.to_string());
                i += 1;
            }
        }
    }
    let [raw, out] = positional.as_slice() else {
        usage();
    };
    if let Err(message) = run(raw, out, allocs.as_deref(), baseline.as_deref()) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}
