//! Command implementations.

use crate::args::{Command, USAGE};
use dbcatcher_core::config::DbCatcherConfig;
use dbcatcher_core::pipeline::DbCatcher;
use dbcatcher_eval::metrics::{adjusted_confusion, windowed_any};
use dbcatcher_eval::methods::train_dbcatcher;
use dbcatcher_eval::protocol::ProtocolConfig;
use dbcatcher_workload::anomaly::AnomalyPlanConfig;
use dbcatcher_workload::dataset::{Dataset, DatasetSpec, UnitData};
use dbcatcher_workload::io::{export_unit_csv, load_dataset, save_dataset};
use dbcatcher_workload::profile::RareEventConfig;
use std::io::Write;

/// Executes a parsed command.
///
/// # Errors
/// A human-readable message on any failure.
pub fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Simulate {
            kind,
            subset,
            units,
            ticks,
            seed,
            anomaly_ratio,
            out,
        } => {
            let spec = DatasetSpec {
                name: format!("{} ({subset:?})", kind.name()),
                kind,
                subset,
                num_units: units,
                ticks,
                databases_per_unit: 5,
                anomalies: AnomalyPlanConfig {
                    target_ratio: anomaly_ratio,
                    ..AnomalyPlanConfig::default()
                },
                rare_events: RareEventConfig::default(),
                seed,
            };
            let dataset = spec.build();
            let stats = dataset.stats();
            save_dataset(&dataset, &out).map_err(|e| e.to_string())?;
            println!(
                "wrote {out}: {} units x 5 databases x {} KPIs, {} points, {:.2}% anomalous",
                stats.units,
                stats.dimensions,
                stats.total_points,
                stats.abnormal_ratio * 100.0
            );
            Ok(())
        }
        Command::Detect {
            data,
            learn,
            train_frac,
            out,
            backend,
        } => {
            let dataset = load_dataset(&data).map_err(|e| e.to_string())?;
            let (mut config, test) = prepare(&dataset, learn, train_frac)?;
            config.backend = backend;
            let mut sink: Box<dyn Write> = match out {
                Some(path) => {
                    Box::new(std::fs::File::create(path).map_err(|e| e.to_string())?)
                }
                None => Box::new(std::io::stdout()),
            };
            let mut total = 0usize;
            for (unit_idx, unit) in test.units.iter().enumerate() {
                let mut catcher = DbCatcher::new(config.clone(), unit.num_databases())
                    .with_participation(unit.participation.clone());
                for t in 0..unit.num_ticks() {
                    for v in catcher.ingest_tick(&unit.tick_matrix(t)) {
                        if v.state.is_abnormal() {
                            total += 1;
                            let record = serde_json::json!({
                                "unit": unit_idx,
                                "db": v.db,
                                "start_tick": v.start_tick,
                                "end_tick": v.end_tick,
                                "window_size": v.window_size,
                                "expansions": v.expansions,
                            });
                            writeln!(sink, "{record}").map_err(|e| e.to_string())?;
                        }
                    }
                }
            }
            eprintln!("{total} abnormal verdict(s)");
            Ok(())
        }
        Command::Evaluate {
            data,
            learn,
            train_frac,
            backend,
        } => {
            let dataset = load_dataset(&data).map_err(|e| e.to_string())?;
            let (mut config, test) = prepare(&dataset, learn, train_frac)?;
            config.backend = backend;
            let eval_w = 20usize;
            let mut confusion = dbcatcher_eval::metrics::Confusion::default();
            for unit in &test.units {
                let mut catcher = DbCatcher::new(config.clone(), unit.num_databases())
                    .with_participation(unit.participation.clone());
                let mut tick_preds = vec![false; unit.num_ticks()];
                for t in 0..unit.num_ticks() {
                    for v in catcher.ingest_tick(&unit.tick_matrix(t)) {
                        if v.state.is_abnormal() {
                            let end = (v.end_tick as usize).min(unit.num_ticks());
                            tick_preds[v.start_tick as usize..end]
                                .iter_mut()
                                .for_each(|p| *p = true);
                        }
                    }
                }
                let labels: Vec<bool> =
                    (0..unit.num_ticks()).map(|t| unit.any_anomalous(t)).collect();
                confusion.merge(&adjusted_confusion(
                    &windowed_any(&tick_preds, eval_w),
                    &windowed_any(&labels, eval_w),
                ));
            }
            println!(
                "precision {:.1}%  recall {:.1}%  f-measure {:.1}%  ({} windows)",
                confusion.precision() * 100.0,
                confusion.recall() * 100.0,
                confusion.f_measure() * 100.0,
                confusion.total()
            );
            Ok(())
        }
        Command::ExportCsv { data, unit, out } => {
            let dataset = load_dataset(&data).map_err(|e| e.to_string())?;
            let unit_data: &UnitData = dataset
                .units
                .get(unit)
                .ok_or_else(|| format!("unit {unit} of {}", dataset.units.len()))?;
            export_unit_csv(unit_data, &out).map_err(|e| e.to_string())?;
            println!(
                "wrote {out}: {} ticks x {} databases x {} KPIs",
                unit_data.num_ticks(),
                unit_data.num_databases(),
                unit_data.num_kpis()
            );
            Ok(())
        }
    }
}

/// Optionally learns thresholds on the leading fraction and returns the
/// configuration plus the split to detect on.
fn prepare(
    dataset: &Dataset,
    learn: bool,
    train_frac: f64,
) -> Result<(DbCatcherConfig, Dataset), String> {
    if !(0.0..1.0).contains(&train_frac) {
        return Err(format!("train-frac {train_frac} must lie in [0, 1)"));
    }
    if learn {
        let (train, test) = dataset.split(train_frac);
        let cfg = ProtocolConfig::default();
        let (config, train_f1) = train_dbcatcher(&train, &cfg);
        eprintln!("thresholds learned on {:.0}% of the data (train F-Measure {train_f1:.2})",
            train_frac * 100.0);
        Ok((config, test))
    } else {
        Ok((DbCatcherConfig::default(), dataset.clone()))
    }
}
