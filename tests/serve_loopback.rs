//! End-to-end tests of the online daemon: loopback equality with the
//! offline detector, warm restart, backpressure under burst, fault
//! containment, and the subscriber stream.

use dbcatcher::core::config::DbCatcherConfig;
use dbcatcher::core::pipeline::{DbCatcher, Verdict};
use dbcatcher::serve::client::VerdictRecord;
use dbcatcher::serve::server::{DetectionServer, ServeConfig, ServerHandle};
use dbcatcher::serve::{emit, fetch_stats, EmitOptions, Subscriber, UnitStream};
use dbcatcher::workload::scenario::UnitScenario;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

const TICKS: usize = 260;

/// One scenario unit's stream, truncated for test speed.
struct UnitFixture {
    frames: Vec<Vec<Vec<f64>>>,
    participation: Vec<Vec<bool>>,
    dbs: usize,
    kpis: usize,
}

fn unit_frames(seed: u64) -> UnitFixture {
    let data = UnitScenario::quickstart(seed).generate();
    let frames: Vec<_> = (0..TICKS.min(data.num_ticks()))
        .map(|t| data.tick_matrix(t))
        .collect();
    let (dbs, kpis) = (data.num_databases(), data.num_kpis());
    UnitFixture {
        frames,
        participation: data.participation,
        dbs,
        kpis,
    }
}

/// The offline reference: the same frames through a local `DbCatcher`,
/// with each verdict stamped by the tick whose ingestion resolved it.
fn offline_verdicts(
    frames: &[Vec<Vec<f64>>],
    participation: &[Vec<bool>],
    dbs: usize,
) -> Vec<(u64, Verdict)> {
    let mut catcher =
        DbCatcher::new(DbCatcherConfig::default(), dbs).with_participation(participation.to_vec());
    let mut out = Vec::new();
    for (t, frame) in frames.iter().enumerate() {
        let report = catcher.try_ingest_tick(frame).expect("clean frames ingest");
        out.extend(report.verdicts.into_iter().map(|v| (t as u64, v)));
    }
    out
}

/// A fully comparable image of a verdict. Scores are compared by bit
/// pattern with every NaN collapsed to one sentinel — `NaN != NaN` would
/// otherwise make identical streams compare unequal (non-participating
/// KPIs legitimately score NaN).
type VerdictKey = (usize, u64, usize, u64, u64, String, usize, u32, Vec<u64>);

fn verdict_key(unit: usize, at_tick: u64, v: &Verdict) -> VerdictKey {
    (
        unit,
        at_tick,
        v.db,
        v.start_tick,
        v.end_tick,
        format!("{:?}", v.state),
        v.window_size,
        v.expansions,
        v.scores
            .iter()
            .map(|s| if s.is_nan() { u64::MAX } else { s.to_bits() })
            .collect(),
    )
}

fn sorted_records(records: &[VerdictRecord]) -> Vec<VerdictKey> {
    let mut out: Vec<_> = records
        .iter()
        .map(|r| verdict_key(r.unit, r.at_tick, &r.verdict))
        .collect();
    out.sort();
    out
}

fn sorted_expected(expected: &[(u64, Verdict)]) -> Vec<VerdictKey> {
    let mut out: Vec<_> = expected
        .iter()
        .map(|(t, v)| verdict_key(0, *t, v))
        .collect();
    out.sort();
    out
}

/// Spawns a daemon on an ephemeral port; returns its address, handle and
/// the join handle of the serving thread.
fn spawn_server(config: ServeConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = DetectionServer::bind("127.0.0.1:0", config).expect("bind ephemeral");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbcatcher_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn loopback_verdicts_match_offline() {
    let UnitFixture {
        frames,
        participation,
        dbs,
        kpis,
    } = unit_frames(7);
    let expected = offline_verdicts(&frames, &participation, dbs);
    assert!(!expected.is_empty(), "scenario must produce verdicts");

    let (addr, handle, join) = spawn_server(ServeConfig::default());
    let report = emit(
        addr,
        vec![UnitStream {
            unit: 0,
            dbs,
            kpis,
            participation: Some(participation),
            frames: frames.clone(),
        }],
        &EmitOptions::default(),
    )
    .expect("emit");
    handle.stop();
    join.join().expect("server thread");

    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.ticks_accepted, frames.len() as u64);
    assert_eq!(
        sorted_records(&report.verdicts),
        sorted_expected(&expected),
        "online verdict stream must equal offline"
    );
}

#[test]
fn warm_restart_resumes_with_at_most_one_tick_lost() {
    let UnitFixture {
        frames,
        participation,
        dbs,
        kpis,
    } = unit_frames(21);
    let expected = offline_verdicts(&frames, &participation, dbs);
    let snaps = scratch_dir("serve_restart");
    let split = frames.len() / 2;

    // First run: stream the first half, then stop (final snapshot on
    // clean shutdown persists the exact stream position).
    let (addr, handle, join) = spawn_server(ServeConfig {
        snapshot_dir: Some(snaps.clone()),
        snapshot_every: 16,
        ..ServeConfig::default()
    });
    let first = emit(
        addr,
        vec![UnitStream {
            unit: 0,
            dbs,
            kpis,
            participation: Some(participation.clone()),
            frames: frames[..split].to_vec(),
        }],
        &EmitOptions::default(),
    )
    .expect("first emit");
    handle.stop();
    join.join().expect("server thread");
    assert_eq!(first.ticks_accepted, split as u64);

    // Second run: resume from the snapshot directory and offer the FULL
    // stream; `HelloAck{next_tick}` makes the client skip what the
    // snapshot already holds.
    let (addr, handle, join) = spawn_server(ServeConfig {
        resume_dir: Some(snaps.clone()),
        ..ServeConfig::default()
    });
    let second = emit(
        addr,
        vec![UnitStream {
            unit: 0,
            dbs,
            kpis,
            participation: Some(participation),
            frames: frames.clone(),
        }],
        &EmitOptions::default(),
    )
    .expect("second emit");
    handle.stop();
    join.join().expect("server thread");

    let resumed_from = second
        .resumed
        .first()
        .map(|(_, next)| *next)
        .expect("server must resume unit 0 from snapshot");
    // Clean shutdown snapshots every accepted tick; at most one in-flight
    // tick per unit may be lost by a harsher kill.
    assert!(
        resumed_from + 1 >= split as u64,
        "resume point {resumed_from} lost more than one of {split} ticks"
    );

    // Verdict union must equal the offline stream (boundary verdicts may
    // arrive in both runs; dedup by identity).
    let mut got = sorted_records(&first.verdicts);
    got.extend(sorted_records(&second.verdicts));
    got.sort();
    got.dedup();
    assert_eq!(
        got,
        sorted_expected(&expected),
        "resumed stream must reconstruct offline verdicts"
    );

    let _ = std::fs::remove_dir_all(&snaps);
}

#[test]
fn burst_hits_backpressure_and_stays_bounded() {
    let UnitFixture {
        frames,
        participation,
        dbs,
        kpis,
    } = unit_frames(3);
    let expected = offline_verdicts(&frames, &participation, dbs);

    // Tiny ingress queue + artificially slow shard: a full-speed burst
    // with a window larger than the queue must trip backpressure.
    let queue_cap = 4usize;
    let (addr, handle, join) = spawn_server(ServeConfig {
        queue_cap,
        shards: 1,
        slow_tick: Some(Duration::from_millis(2)),
        ..ServeConfig::default()
    });
    let report = emit(
        addr,
        vec![UnitStream {
            unit: 0,
            dbs,
            kpis,
            participation: Some(participation),
            frames: frames.clone(),
        }],
        &EmitOptions {
            window: 4 * queue_cap,
            ..EmitOptions::default()
        },
    )
    .expect("emit under burst");

    assert!(
        report.rejects_backpressure > 0,
        "burst must observe backpressure"
    );
    // Rejections are retried, never lost: the stream still completes and
    // matches offline exactly.
    assert_eq!(report.ticks_accepted, frames.len() as u64);
    assert_eq!(sorted_records(&report.verdicts), sorted_expected(&expected));

    // Backpressure is observable in stats, and queues drained afterwards.
    let stats = fetch_stats(addr).expect("stats");
    let unit = stats.units.iter().find(|u| u.unit == 0).expect("unit 0");
    assert_eq!(
        unit.rejected_backpressure, report.rejects_backpressure,
        "server-side reject count must match the client's"
    );
    assert_eq!(unit.queue_depth, 0, "ingress queue must drain");
    assert!(!unit.degraded);
    assert_eq!(stats.total_ticks, frames.len() as u64);

    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn malformed_lines_and_nan_bursts_degrade_gracefully() {
    use std::io::{BufRead, BufReader, Write};

    let UnitFixture {
        frames,
        participation,
        dbs,
        kpis,
    } = unit_frames(5);
    // Offline reference with the same NaN burst: db 1 goes silent (NaN)
    // from tick 40 on, long enough for TelemetryHealth to demote it.
    let mut poisoned = frames.clone();
    for frame in poisoned.iter_mut().skip(40) {
        for value in frame[1].iter_mut() {
            *value = f64::NAN;
        }
    }
    let mut reference =
        DbCatcher::new(DbCatcherConfig::default(), dbs).with_participation(participation.clone());
    for frame in &poisoned {
        reference.try_ingest_tick(frame).expect("repairable frames");
    }
    let expected_demoted = reference.non_voting();
    assert!(
        expected_demoted.contains(&1),
        "reference must demote the silent database"
    );

    let (addr, handle, join) = spawn_server(ServeConfig::default());

    // Hostile connection first: garbage, truncated JSON and an oversized
    // line must each produce an Error reply and leave the daemon healthy.
    let mut hostile = std::net::TcpStream::connect(addr).expect("connect");
    let mut replies = BufReader::new(hostile.try_clone().expect("clone"));
    for bad in [
        "not json at all\n".to_string(),
        "{\"Tick\":{\"unit\":0\n".to_string(),
        format!("{}\n", "x".repeat(2 * 1024 * 1024)),
    ] {
        hostile.write_all(bad.as_bytes()).expect("write");
        hostile.flush().expect("flush");
        let mut line = String::new();
        replies.read_line(&mut line).expect("reply");
        assert!(
            line.contains("Error"),
            "hostile line must get an Error reply, got {line:?}"
        );
    }
    drop(replies);
    drop(hostile);

    // The daemon still serves: stream the poisoned unit and compare.
    let report = emit(
        addr,
        vec![UnitStream {
            unit: 0,
            dbs,
            kpis,
            participation: Some(participation),
            frames: poisoned,
        }],
        &EmitOptions::default(),
    )
    .expect("emit after hostile connection");
    assert!(report.errors.is_empty(), "{:?}", report.errors);

    let stats = fetch_stats(addr).expect("stats");
    let unit = stats.units.iter().find(|u| u.unit == 0).expect("unit 0");
    assert_eq!(
        unit.demoted_dbs, expected_demoted,
        "NaN burst must demote via TelemetryHealth exactly as offline"
    );
    assert!(
        !unit.degraded,
        "repairable faults must not degrade the unit"
    );

    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn subscriber_churn_gets_gap_free_suffix_and_never_stalls_the_shard() {
    let UnitFixture {
        frames,
        participation,
        dbs,
        kpis,
    } = unit_frames(13);

    // Slow the shard so the stream spans real wall-clock time and the
    // mid-stream re-subscribe genuinely lands mid-stream.
    let (addr, handle, join) = spawn_server(ServeConfig {
        shards: 1,
        slow_tick: Some(Duration::from_millis(2)),
        ..ServeConfig::default()
    });

    // First subscriber connects before the stream starts...
    let mut early_sub = Subscriber::connect(addr).expect("subscribe early");
    let emit_thread = {
        let frames = frames.clone();
        let participation = participation.clone();
        std::thread::spawn(move || {
            emit(
                addr,
                vec![UnitStream {
                    unit: 0,
                    dbs,
                    kpis,
                    participation: Some(participation),
                    frames,
                }],
                &EmitOptions::default(),
            )
            .expect("emit")
        })
    };

    // ...reads a few verdicts, then disconnects mid-stream.
    for _ in 0..5 {
        early_sub.next_verdict().expect("early verdicts");
    }
    drop(early_sub);

    // A second subscriber joins mid-stream and drains to shutdown.
    let mut late_sub = Subscriber::connect(addr).expect("re-subscribe mid-stream");
    let late_thread = std::thread::spawn(move || {
        let mut seen = Vec::new();
        while let Ok(record) = late_sub.next_verdict() {
            seen.push(record);
        }
        seen
    });

    // The abandoned early subscriber must not stall the shard: the full
    // stream still completes.
    let report = emit_thread.join().expect("emit thread");
    assert_eq!(report.ticks_accepted, frames.len() as u64);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(
        report.verdicts.len() >= 10,
        "need a meaningful verdict stream, got {}",
        report.verdicts.len()
    );
    let stats = fetch_stats(addr).expect("stats");
    let unit = stats.units.iter().find(|u| u.unit == 0).expect("unit 0");
    assert_eq!(unit.queue_depth, 0, "ingress queue must drain");

    handle.stop();
    join.join().expect("server thread");
    let late_seen = late_thread.join().expect("late subscriber thread");

    // The late subscriber's stream must be a gap-free suffix of the
    // producer's emission-ordered stream: compare sequences (not sets)
    // from its first observed verdict — any gap or reorder fails.
    assert!(
        !late_seen.is_empty(),
        "mid-stream subscriber must observe the tail of the stream"
    );
    let emitted: Vec<VerdictKey> = report
        .verdicts
        .iter()
        .map(|r| verdict_key(r.unit, r.at_tick, &r.verdict))
        .collect();
    let late_keys: Vec<VerdictKey> = late_seen
        .iter()
        .map(|r| verdict_key(r.unit, r.at_tick, &r.verdict))
        .collect();
    let start = emitted
        .iter()
        .position(|k| *k == late_keys[0])
        .expect("first late verdict must exist in the emitted stream");
    assert_eq!(
        late_keys,
        emitted[start..],
        "late subscriber must see a gap-free verdict suffix from its join point"
    );
}

#[test]
fn metrics_reconcile_exactly_with_client_observations_under_churn() {
    let unit0 = unit_frames(13);
    let unit1 = unit_frames(14);

    // One slow shard, tiny queues, wide windows: both producers hammer
    // the same worker and live through real backpressure while client A
    // disconnects and reconnects mid-run.
    let (addr, handle, join) = spawn_server(ServeConfig {
        shards: 1,
        queue_cap: 4,
        slow_tick: Some(Duration::from_millis(1)),
        ..ServeConfig::default()
    });
    let options = EmitOptions {
        window: 16,
        ..EmitOptions::default()
    };

    let b_thread = {
        let options = options.clone();
        let frames = unit1.frames.clone();
        let participation = unit1.participation.clone();
        let (dbs, kpis) = (unit1.dbs, unit1.kpis);
        std::thread::spawn(move || {
            emit(
                addr,
                vec![UnitStream {
                    unit: 1,
                    dbs,
                    kpis,
                    participation: Some(participation),
                    frames,
                }],
                &options,
            )
            .expect("producer B")
        })
    };

    // Client A: half the stream, disconnect, reconnect, offer the full
    // stream (the daemon's in-memory position makes it skip the rest).
    let split = unit0.frames.len() / 2;
    let a_first = emit(
        addr,
        vec![UnitStream {
            unit: 0,
            dbs: unit0.dbs,
            kpis: unit0.kpis,
            participation: Some(unit0.participation.clone()),
            frames: unit0.frames[..split].to_vec(),
        }],
        &options,
    )
    .expect("producer A session 1");
    let a_second = emit(
        addr,
        vec![UnitStream {
            unit: 0,
            dbs: unit0.dbs,
            kpis: unit0.kpis,
            participation: Some(unit0.participation.clone()),
            frames: unit0.frames.clone(),
        }],
        &options,
    )
    .expect("producer A session 2");
    let b_report = b_thread.join().expect("producer B thread");

    // Both sessions ended with a flush barrier, so the counters are
    // settled; reconcile them exactly against what the clients saw.
    let stats = fetch_stats(addr).expect("stats");
    handle.stop();
    join.join().expect("server thread");

    let unit0_stats = stats.units.iter().find(|u| u.unit == 0).expect("unit 0");
    let unit1_stats = stats.units.iter().find(|u| u.unit == 1).expect("unit 1");

    assert_eq!(
        a_first.ticks_accepted + a_second.ticks_accepted,
        unit0.frames.len() as u64,
        "A's sessions must cover the stream exactly once"
    );
    assert_eq!(unit0_stats.ticks, unit0.frames.len() as u64);
    assert_eq!(unit1_stats.ticks, unit1.frames.len() as u64);
    assert_eq!(
        unit0_stats.rejected_backpressure,
        a_first.rejects_backpressure + a_second.rejects_backpressure,
        "unit 0 backpressure rejects must equal A's client-side count"
    );
    assert_eq!(
        unit1_stats.rejected_backpressure, b_report.rejects_backpressure,
        "unit 1 backpressure rejects must equal B's client-side count"
    );
    assert_eq!(
        unit0_stats.rejected_order,
        a_first.rejects_order + a_second.rejects_order
    );
    assert_eq!(unit1_stats.rejected_order, b_report.rejects_order);
    assert_eq!(
        unit0_stats.verdicts_healthy + unit0_stats.verdicts_abnormal,
        (a_first.verdicts.len() + a_second.verdicts.len()) as u64,
        "unit 0 verdict counters must equal what A received"
    );
    assert_eq!(
        unit1_stats.verdicts_healthy + unit1_stats.verdicts_abnormal,
        b_report.verdicts.len() as u64,
        "unit 1 verdict counters must equal what B received"
    );

    // And the rollups must be sums of the parts — no drift, no double
    // counting across the reader/worker handoff.
    assert_eq!(stats.total_ticks, unit0_stats.ticks + unit1_stats.ticks);
    assert_eq!(
        stats.total_rejects,
        unit0_stats.rejected_backpressure
            + unit0_stats.rejected_order
            + unit1_stats.rejected_backpressure
            + unit1_stats.rejected_order
    );
    assert_eq!(
        stats.total_verdicts,
        unit0_stats.verdicts_healthy
            + unit0_stats.verdicts_abnormal
            + unit1_stats.verdicts_healthy
            + unit1_stats.verdicts_abnormal
    );
    assert_eq!(unit0_stats.queue_depth, 0);
    assert_eq!(unit1_stats.queue_depth, 0);

    // Shard-level tick accounting runs at the batched granularity the
    // worker actually executes: every tick the shard thread processed
    // counts exactly once, whichever unit it served, so the sum over
    // shards must equal the per-unit rollup with no drift.
    assert_eq!(
        stats.shard_status.iter().map(|s| s.ticks).sum::<u64>(),
        stats.total_ticks,
        "shard tick counters must reconcile with the per-unit totals"
    );
    for shard in &stats.shard_status {
        if shard.ticks > 0 {
            assert!(
                shard.ns_per_tick > 0,
                "shard {} processed {} ticks but reports zero ns/tick",
                shard.shard,
                shard.ticks
            );
        } else {
            assert_eq!(shard.ns_per_tick, 0);
        }
    }
}

#[test]
fn subscriber_receives_the_verdict_stream() {
    let UnitFixture {
        frames,
        participation,
        dbs,
        kpis,
    } = unit_frames(9);
    let expected = offline_verdicts(&frames, &participation, dbs);

    let (addr, handle, join) = spawn_server(ServeConfig::default());
    let mut subscriber = Subscriber::connect(addr).expect("subscribe");
    let report = emit(
        addr,
        vec![UnitStream {
            unit: 0,
            dbs,
            kpis,
            participation: Some(participation),
            frames,
        }],
        &EmitOptions::default(),
    )
    .expect("emit");
    assert_eq!(report.verdicts.len(), expected.len());

    // The subscriber sees every verdict the producer saw.
    let mut seen = Vec::new();
    for _ in 0..expected.len() {
        seen.push(subscriber.next_verdict().expect("broadcast verdict"));
    }
    assert_eq!(sorted_records(&seen), sorted_records(&report.verdicts));

    handle.stop();
    join.join().expect("server thread");
}
