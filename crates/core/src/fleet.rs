//! Fleet detection: many units in parallel.
//!
//! The paper deploys DBCatcher over 50 units at once (§IV-D4). Units are
//! independent, so detection shards perfectly: [`FleetDetector`] owns one
//! [`DbCatcher`] per unit, partitions them across long-lived worker
//! threads, and fans each monitoring tick out over mpsc channels.

use crate::config::DbCatcherConfig;
use crate::pipeline::{ComponentTiming, DbCatcher, Verdict};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A verdict tagged with the unit that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetVerdict {
    /// Index of the unit within the fleet.
    pub unit: usize,
    /// The unit-local verdict.
    pub verdict: Verdict,
}

enum Job {
    /// One tick's frames for this worker's units: `(unit index, frame)`.
    Tick(Vec<(usize, Vec<Vec<f64>>)>),
    Stop,
}

struct Worker {
    jobs: Sender<Job>,
    results: Receiver<Vec<FleetVerdict>>,
    handle: Option<JoinHandle<()>>,
    /// Unit indices owned by this worker.
    units: Vec<usize>,
}

/// Shared end-of-run statistics, filled when workers stop.
#[derive(Debug, Default)]
struct FleetStats {
    window_size_sum: f64,
    verdict_count: u64,
    timing: ComponentTiming,
}

/// Parallel detector over a fleet of units.
pub struct FleetDetector {
    workers: Vec<Worker>,
    num_units: usize,
    stats: Arc<Mutex<FleetStats>>,
}

impl FleetDetector {
    /// Creates a fleet detector.
    ///
    /// * `config` — shared detector configuration (thresholds etc.);
    /// * `units` — per-unit database counts;
    /// * `participation` — optional per-unit participation masks;
    /// * `workers` — worker threads (`0` = one per available core, capped
    ///   at the unit count).
    ///
    /// # Panics
    /// Panics when `units` is empty or a participation list mismatches.
    pub fn new(
        config: DbCatcherConfig,
        units: &[usize],
        participation: Option<Vec<Vec<Vec<bool>>>>,
        workers: usize,
    ) -> Self {
        assert!(!units.is_empty(), "fleet needs at least one unit");
        if let Some(masks) = &participation {
            assert_eq!(masks.len(), units.len(), "participation arity mismatch");
        }
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let worker_count = if workers == 0 { hw } else { workers }.min(units.len()).max(1);
        let stats = Arc::new(Mutex::new(FleetStats::default()));

        let mut catchers: Vec<Option<DbCatcher>> = units
            .iter()
            .enumerate()
            .map(|(u, &dbs)| {
                let mut c = DbCatcher::new(config.clone(), dbs);
                if let Some(masks) = &participation {
                    c = c.with_participation(masks[u].clone());
                }
                Some(c)
            })
            .collect();

        let workers_vec = (0..worker_count)
            .map(|w| {
                let owned_units: Vec<usize> =
                    (0..units.len()).filter(|u| u % worker_count == w).collect();
                let mut owned: Vec<(usize, DbCatcher)> = owned_units
                    .iter()
                    .map(|&u| (u, catchers[u].take().expect("each unit owned once")))
                    .collect();
                let (job_tx, job_rx) = channel::<Job>();
                let (res_tx, res_rx): (SyncSender<Vec<FleetVerdict>>, Receiver<_>) =
                    sync_channel(1);
                let stats = Arc::clone(&stats);
                let handle = std::thread::spawn(move || {
                    while let Ok(job) = job_rx.recv() {
                        match job {
                            Job::Tick(frames) => {
                                let mut out = Vec::new();
                                for (unit, frame) in frames {
                                    let catcher = owned
                                        .iter_mut()
                                        .find(|(u, _)| *u == unit)
                                        .map(|(_, c)| c)
                                        .expect("frame routed to owning worker");
                                    for verdict in catcher.ingest_tick(&frame) {
                                        out.push(FleetVerdict { unit, verdict });
                                    }
                                }
                                if res_tx.send(out).is_err() {
                                    break;
                                }
                            }
                            Job::Stop => break,
                        }
                    }
                    // merge end-of-run statistics
                    let mut s = stats.lock().expect("stats mutex poisoned");
                    for (_, c) in &owned {
                        let t = c.timing();
                        s.timing.correlation += t.correlation;
                        s.timing.observation += t.observation;
                        // weighted by verdicts handled per catcher
                        s.window_size_sum += c.average_window_size() * c.verdict_count() as f64;
                        s.verdict_count += c.verdict_count();
                    }
                });
                Worker {
                    jobs: job_tx,
                    results: res_rx,
                    handle: Some(handle),
                    units: owned_units,
                }
            })
            .collect();

        Self {
            workers: workers_vec,
            num_units: units.len(),
            stats,
        }
    }

    /// Number of units monitored.
    pub fn num_units(&self) -> usize {
        self.num_units
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Ingests one tick for the whole fleet: `frames[unit][db][kpi]`.
    /// Returns every verdict that became final, in unit order.
    ///
    /// # Panics
    /// Panics when `frames.len()` mismatches the fleet size.
    pub fn ingest_tick(&mut self, frames: &[Vec<Vec<f64>>]) -> Vec<FleetVerdict> {
        assert_eq!(frames.len(), self.num_units, "fleet frame arity mismatch");
        // fan out
        for worker in &self.workers {
            let batch: Vec<(usize, Vec<Vec<f64>>)> = worker
                .units
                .iter()
                .map(|&u| (u, frames[u].clone()))
                .collect();
            worker
                .jobs
                .send(Job::Tick(batch))
                .expect("worker alive while detector exists");
        }
        // gather
        let mut verdicts = Vec::new();
        for worker in &self.workers {
            verdicts.extend(worker.results.recv().expect("worker reply"));
        }
        verdicts.sort_by_key(|v| (v.unit, v.verdict.db, v.verdict.start_tick));
        verdicts
    }

    /// Stops the workers and returns the fleet-wide mean window size and
    /// accumulated component timing.
    pub fn finish(mut self) -> (f64, ComponentTiming) {
        self.shutdown();
        let s = self.stats.lock().expect("stats mutex poisoned");
        let avg = if s.verdict_count == 0 {
            0.0
        } else {
            s.window_size_sum / s.verdict_count as f64
        };
        (avg, s.timing)
    }

    fn shutdown(&mut self) {
        for worker in &self.workers {
            let _ = worker.jobs.send(Job::Stop);
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for FleetDetector {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DelayScan;

    fn frame(units: usize, dbs: usize, kpis: usize, t: usize) -> Vec<Vec<Vec<f64>>> {
        (0..units)
            .map(|u| {
                (0..dbs)
                    .map(|db| {
                        (0..kpis)
                            .map(|k| {
                                let tf = t as f64;
                                100.0 * (1.0 + 0.05 * db as f64 + u as f64)
                                    + 30.0
                                        * (std::f64::consts::TAU * (tf + k as f64) / 30.0).sin()
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    fn config(kpis: usize) -> DbCatcherConfig {
        DbCatcherConfig {
            initial_window: 10,
            max_window: 30,
            delay_scan: DelayScan::Fixed(3),
            ..DbCatcherConfig::with_kpis(kpis)
        }
    }

    #[test]
    fn fleet_matches_sequential_detection() {
        let units = vec![3usize, 3, 3, 3];
        let kpis = 4;
        let ticks = 60;
        // sequential reference
        let mut seq: Vec<DbCatcher> = units
            .iter()
            .map(|&dbs| DbCatcher::new(config(kpis), dbs))
            .collect();
        let mut seq_verdicts = Vec::new();
        for t in 0..ticks {
            let frames = frame(4, 3, kpis, t);
            for (u, catcher) in seq.iter_mut().enumerate() {
                for v in catcher.ingest_tick(&frames[u]) {
                    seq_verdicts.push(FleetVerdict { unit: u, verdict: v });
                }
            }
        }
        seq_verdicts.sort_by_key(|v| (v.unit, v.verdict.db, v.verdict.start_tick));

        // fleet with 3 workers
        let mut fleet = FleetDetector::new(config(kpis), &units, None, 3);
        assert_eq!(fleet.num_workers(), 3);
        let mut fleet_verdicts = Vec::new();
        for t in 0..ticks {
            fleet_verdicts.extend(fleet.ingest_tick(&frame(4, 3, kpis, t)));
        }
        fleet_verdicts.sort_by_key(|v| (v.unit, v.verdict.db, v.verdict.start_tick));
        assert_eq!(seq_verdicts.len(), fleet_verdicts.len());
        for (a, b) in seq_verdicts.iter().zip(&fleet_verdicts) {
            assert_eq!(a.unit, b.unit);
            assert_eq!(a.verdict, b.verdict);
        }
    }

    #[test]
    fn fleet_backends_agree() {
        // The backend choice rides through the shared config: a naive
        // fleet and an incremental fleet must emit equal verdict sets.
        let mut collected = Vec::new();
        for backend in [
            crate::config::CorrelationBackend::Naive,
            crate::config::CorrelationBackend::Incremental,
        ] {
            let cfg = DbCatcherConfig {
                backend,
                ..config(3)
            };
            let mut fleet = FleetDetector::new(cfg, &[3, 3], None, 2);
            let mut verdicts = Vec::new();
            for t in 0..60 {
                verdicts.extend(fleet.ingest_tick(&frame(2, 3, 3, t)));
            }
            verdicts.sort_by_key(|v| (v.unit, v.verdict.db, v.verdict.start_tick));
            collected.push(verdicts);
        }
        let (naive, incr) = (&collected[0], &collected[1]);
        assert!(!naive.is_empty());
        assert_eq!(naive.len(), incr.len());
        for (a, b) in naive.iter().zip(incr) {
            assert_eq!(a.unit, b.unit);
            assert_eq!(a.verdict.db, b.verdict.db);
            assert_eq!(a.verdict.state, b.verdict.state);
            assert_eq!(a.verdict.start_tick, b.verdict.start_tick);
            assert_eq!(a.verdict.window_size, b.verdict.window_size);
        }
    }

    #[test]
    fn finish_reports_stats() {
        let mut fleet = FleetDetector::new(config(3), &[2, 2], None, 2);
        for t in 0..40 {
            fleet.ingest_tick(&frame(2, 2, 3, t));
        }
        let (avg_window, timing) = fleet.finish();
        assert!((avg_window - 10.0).abs() < 1e-9, "avg window {avg_window}");
        assert!(timing.correlation > std::time::Duration::ZERO);
    }

    #[test]
    fn zero_workers_auto_sizes() {
        let fleet = FleetDetector::new(config(3), &[2, 2, 2], None, 0);
        assert!(fleet.num_workers() >= 1);
        assert!(fleet.num_workers() <= 3);
        assert_eq!(fleet.num_units(), 3);
    }

    #[test]
    #[should_panic(expected = "fleet frame arity")]
    fn wrong_fleet_arity_panics() {
        let mut fleet = FleetDetector::new(config(3), &[2, 2], None, 1);
        fleet.ingest_tick(&frame(1, 2, 3, 0));
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn empty_fleet_panics() {
        let _ = FleetDetector::new(config(3), &[], None, 1);
    }
}
