//! Correlation-measure baselines (paper §IV-D1, Table X; related work).
//!
//! * **Pearson** — linear correlation at lag zero; blind to point-in-time
//!   delays (the paper's criticism).
//! * **DTW** — dynamic time warping turned into a similarity score; warps
//!   each point independently, which mismatches the cloud-database setting
//!   where "data point delays should be essentially the same in a time
//!   window".
//! * **Spearman** — rank correlation; only captures monotone association.
//!
//! All measures operate on min–max-normalised windows and return scores in
//! `[−1, 1]` so they can share the detector's threshold machinery.

use dbcatcher_signal::normalize::min_max;
use dbcatcher_signal::stats::pearson;

/// Pearson correlation of two windows (lag zero).
///
/// # Panics
/// Panics when the windows differ in length.
pub fn pearson_score(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "windows must be equally long");
    if x.is_empty() {
        return 0.0;
    }
    pearson(x, y).expect("equal non-empty windows")
}

/// Raw DTW distance between two windows with a Sakoe–Chiba band of
/// `band` (0 = unconstrained), using absolute-difference point costs.
///
/// # Panics
/// Panics when either window is empty.
pub fn dtw_distance(x: &[f64], y: &[f64], band: usize) -> f64 {
    assert!(!x.is_empty() && !y.is_empty(), "windows must be non-empty");
    let (n, m) = (x.len(), y.len());
    let band = if band == 0 {
        n.max(m)
    } else {
        band.max(n.abs_diff(m))
    };
    let inf = f64::INFINITY;
    let mut prev = vec![inf; m + 1];
    let mut curr = vec![inf; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.iter_mut().for_each(|v| *v = inf);
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(m);
        for j in lo..=hi {
            let cost = (x[i - 1] - y[j - 1]).abs();
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// DTW similarity in `[−1, 1]`: windows are min–max normalised, the DTW
/// distance is averaged per warping step (point costs lie in `[0, 1]`),
/// and mapped by `1 − 2·avg_cost`.
pub fn dtw_score(x: &[f64], y: &[f64], band: usize) -> f64 {
    if x.is_empty() || y.is_empty() {
        return 0.0;
    }
    let xn = min_max(x);
    let yn = min_max(y);
    let d = dtw_distance(&xn, &yn, band);
    // path length is at least max(n, m); use it as the normaliser
    let steps = xn.len().max(yn.len()) as f64;
    (1.0 - 2.0 * d / steps).clamp(-1.0, 1.0)
}

/// Spearman rank correlation.
///
/// # Panics
/// Panics when the windows differ in length.
pub fn spearman_score(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "windows must be equally long");
    if x.is_empty() {
        return 0.0;
    }
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry).expect("equal non-empty windows")
}

/// Fractional ranks (ties get the average rank).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * (i as f64 + phase) / 16.0).sin())
            .collect()
    }

    #[test]
    fn pearson_identical_is_one() {
        let x = sine(32, 0.0);
        assert!((pearson_score(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_misses_delay() {
        // the paper's core criticism: a 3-tick delay destroys Pearson
        let x = sine(32, 0.0);
        let y = sine(32, 3.0);
        let p = pearson_score(&x, &y);
        let k = dbcatcher_core::kcd::kcd(&x, &y, 5);
        assert!(k > p + 0.2, "kcd {k} vs pearson {p}");
    }

    #[test]
    fn dtw_distance_zero_for_identical() {
        let x = sine(20, 0.0);
        assert_eq!(dtw_distance(&x, &x, 0), 0.0);
    }

    #[test]
    fn dtw_handles_warping() {
        // y is x with one repeated sample: DTW forgives, Euclid would not
        let x = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let y = vec![0.0, 1.0, 1.0, 2.0, 3.0, 4.0];
        assert!(dtw_distance(&x, &y, 0) < 1e-12);
    }

    #[test]
    fn dtw_score_range_and_similarity() {
        let x = sine(32, 0.0);
        let close = dtw_score(&x, &sine(32, 1.0), 0);
        let anti: Vec<f64> = x.iter().map(|v| -v).collect();
        let far = dtw_score(&x, &anti, 0);
        assert!(close > far, "close {close} far {far}");
        assert!((-1.0..=1.0).contains(&close) && (-1.0..=1.0).contains(&far));
    }

    #[test]
    fn dtw_band_constrains_warping() {
        let x = vec![0.0, 0.0, 0.0, 10.0, 0.0];
        let y = vec![10.0, 0.0, 0.0, 0.0, 0.0];
        let free = dtw_distance(&x, &y, 0);
        let banded = dtw_distance(&x, &y, 1);
        assert!(banded >= free);
    }

    #[test]
    fn spearman_monotone_is_one() {
        let x = vec![1.0, 2.0, 5.0, 9.0];
        let y = vec![10.0, 100.0, 1000.0, 10000.0]; // nonlinear but monotone
        assert!((spearman_score(&x, &y) - 1.0).abs() < 1e-12);
        let rev: Vec<f64> = y.iter().rev().cloned().collect();
        assert!((spearman_score(&x, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_ties_averaged() {
        let r = ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn empty_windows_score_zero() {
        assert_eq!(pearson_score(&[], &[]), 0.0);
        assert_eq!(dtw_score(&[], &[], 0), 0.0);
        assert_eq!(spearman_score(&[], &[]), 0.0);
    }
}
