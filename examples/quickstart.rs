//! Quickstart: detect a defective load-balancing episode in a simulated
//! cloud-database unit.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use dbcatcher::core::{DbCatcher, DbCatcherConfig};
use dbcatcher::workload::scenario::UnitScenario;

fn main() {
    // A gaming unit of five databases; a defective balancer routes ~50 %
    // of reads to database 2 during ticks 300..360 (paper Fig. 4).
    let scenario = UnitScenario::quickstart(42);
    println!("scenario: {}", scenario.description);
    let data = scenario.generate();

    // One DbCatcher per unit; Table II participation mask included.
    let mut catcher = DbCatcher::new(DbCatcherConfig::default(), data.num_databases())
        .with_participation(data.participation.clone());

    // Stream the 5-second monitoring frames and print every verdict that
    // becomes final.
    let mut alarms = 0;
    for tick in 0..data.num_ticks() {
        for verdict in catcher.ingest_tick(&data.tick_matrix(tick)) {
            if verdict.state.is_abnormal() {
                alarms += 1;
                println!(
                    "ALARM db {} over ticks [{}..{}) (window {} ticks, {} expansions)",
                    verdict.db + 1,
                    verdict.start_tick,
                    verdict.end_tick,
                    verdict.window_size,
                    verdict.expansions,
                );
            }
        }
    }
    println!(
        "done: {alarms} alarm window(s); average window size {:.1} ticks",
        catcher.average_window_size()
    );
    assert!(alarms > 0, "the injected episode must raise an alarm");
}
