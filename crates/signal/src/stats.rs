//! Descriptive and robust statistics over `f64` slices.
//!
//! These are the building blocks for the KCD correlation score (paper
//! Eq. 3–4), the baseline detectors' thresholds, and the outlier-resistant
//! sampling of the JumpStarter baseline.

use crate::error::SignalError;

/// Arithmetic mean. Returns 0 for an empty slice (documented convention so
/// hot paths need no branching); use [`try_mean`] when emptiness is an error.
#[inline]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Arithmetic mean that rejects empty input.
///
/// # Errors
/// [`SignalError::EmptyInput`] when `xs` is empty.
pub fn try_mean(xs: &[f64]) -> Result<f64, SignalError> {
    if xs.is_empty() {
        Err(SignalError::EmptyInput)
    } else {
        Ok(mean(xs))
    }
}

/// Population variance (divides by `n`).
#[inline]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
#[inline]
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// L2 norm of a slice.
#[inline]
pub fn l2_norm(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Median (by sorting a scratch copy). Returns 0 for empty input.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut scratch = xs.to_vec();
    median_in_place(&mut scratch)
}

/// Median computed in place over a scratch buffer (avoids the copy when the
/// caller already owns one). The buffer order is unspecified afterwards.
pub fn median_in_place(scratch: &mut [f64]) -> f64 {
    if scratch.is_empty() {
        return 0.0;
    }
    let n = scratch.len();
    let mid = n / 2;
    scratch.sort_unstable_by(f64::total_cmp);
    if n % 2 == 1 {
        scratch[mid]
    } else {
        0.5 * (scratch[mid - 1] + scratch[mid])
    }
}

/// Median absolute deviation (raw, not scaled to σ).
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let med = median(xs);
    let mut dev: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median_in_place(&mut dev)
}

/// Linear-interpolation quantile, `q` in `[0, 1]`.
///
/// # Errors
/// [`SignalError::EmptyInput`] on empty input and
/// [`SignalError::InvalidParameter`] when `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64, SignalError> {
    if xs.is_empty() {
        return Err(SignalError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(SignalError::InvalidParameter {
            name: "q",
            reason: format!("{q} not in [0, 1]"),
        });
    }
    let mut sorted = xs.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Covariance of two equally long series (population).
///
/// # Errors
/// [`SignalError::LengthMismatch`] / [`SignalError::EmptyInput`].
pub fn covariance(xs: &[f64], ys: &[f64]) -> Result<f64, SignalError> {
    if xs.len() != ys.len() {
        return Err(SignalError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.is_empty() {
        return Err(SignalError::EmptyInput);
    }
    let mx = mean(xs);
    let my = mean(ys);
    Ok(xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.len() as f64)
}

/// Pearson linear correlation coefficient.
///
/// Degenerate conventions (needed by the correlation-matrix semantics of the
/// paper, §III-B): two constant series are perfectly correlated (`1.0`);
/// a constant against a varying series is uncorrelated (`0.0`).
///
/// # Errors
/// [`SignalError::LengthMismatch`] / [`SignalError::EmptyInput`].
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, SignalError> {
    let cov = covariance(xs, ys)?;
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    if sx == 0.0 && sy == 0.0 {
        return Ok(1.0);
    }
    if sx == 0.0 || sy == 0.0 {
        return Ok(0.0);
    }
    Ok((cov / (sx * sy)).clamp(-1.0, 1.0))
}

/// Index of the maximum element (ties resolve to the first). `None` if empty.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
}

/// Index of the minimum element (ties resolve to the first). `None` if empty.
pub fn argmin(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
        .map(|(i, _)| i)
}

/// Robust z-scores based on median/MAD (with the 1.4826 σ-consistency
/// factor). Falls back to mean/std when MAD is zero; all-zero output when the
/// series is constant.
pub fn robust_z_scores(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let med = median(xs);
    let scale = mad(xs) * 1.4826;
    if scale > 0.0 {
        return xs.iter().map(|x| (x - med) / scale).collect();
    }
    let sd = std_dev(xs);
    if sd > 0.0 {
        let m = mean(xs);
        xs.iter().map(|x| (x - m) / sd).collect()
    } else {
        vec![0.0; xs.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-10, "{a} vs {b}");
    }

    #[test]
    fn mean_basic_and_empty() {
        close(mean(&[1.0, 2.0, 3.0]), 2.0);
        close(mean(&[]), 0.0);
        assert_eq!(try_mean(&[]), Err(SignalError::EmptyInput));
        close(try_mean(&[4.0]).unwrap(), 4.0);
    }

    #[test]
    fn variance_and_std() {
        close(variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]), 4.0);
        close(std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]), 2.0);
        close(variance(&[]), 0.0);
        close(variance(&[3.0]), 0.0);
    }

    #[test]
    fn l2_norm_pythagorean() {
        close(l2_norm(&[3.0, 4.0]), 5.0);
        close(l2_norm(&[]), 0.0);
    }

    #[test]
    fn median_odd_even_empty() {
        close(median(&[3.0, 1.0, 2.0]), 2.0);
        close(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        close(median(&[]), 0.0);
        close(median(&[7.0]), 7.0);
    }

    #[test]
    fn mad_known_value() {
        // values: 1 1 2 2 4 6 9 -> median 2, |x-2|: 1 1 0 0 2 4 7 -> median 1
        close(mad(&[1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0]), 1.0);
    }

    #[test]
    fn quantile_endpoints_and_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        close(quantile(&xs, 0.0).unwrap(), 1.0);
        close(quantile(&xs, 1.0).unwrap(), 4.0);
        close(quantile(&xs, 0.5).unwrap(), 2.5);
        assert!(quantile(&xs, 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn covariance_checks() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        close(covariance(&xs, &ys).unwrap(), 4.0 / 3.0);
        assert!(covariance(&xs, &ys[..2]).is_err());
        assert!(covariance(&[], &[]).is_err());
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        close(pearson(&xs, &ys).unwrap(), 1.0);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        close(pearson(&xs, &neg).unwrap(), -1.0);
    }

    #[test]
    fn pearson_degenerate_conventions() {
        close(pearson(&[5.0, 5.0], &[2.0, 2.0]).unwrap(), 1.0);
        close(pearson(&[5.0, 5.0], &[1.0, 2.0]).unwrap(), 0.0);
    }

    #[test]
    fn argmax_argmin() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmin(&[1.0, 5.0, 3.0]), Some(0));
        assert_eq!(argmax(&[2.0, 2.0]), Some(0)); // first tie wins
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn robust_z_scores_flags_outlier() {
        let mut xs = vec![1.0; 20];
        xs.push(100.0);
        let z = robust_z_scores(&xs);
        // MAD is 0 here (all-but-one identical) so falls back to mean/std,
        // which still ranks the outlier far above the rest.
        let zmax = z.iter().cloned().fold(f64::MIN, f64::max);
        assert!(zmax > 3.0);
    }

    #[test]
    fn robust_z_scores_constant_is_zero() {
        let z = robust_z_scores(&[4.0; 10]);
        assert!(z.iter().all(|&v| v == 0.0));
        assert!(robust_z_scores(&[]).is_empty());
    }

    #[test]
    fn robust_z_median_center() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        let z = robust_z_scores(&xs);
        // median is 3, so the third entry scores 0.
        close(z[2], 0.0);
        assert!(z[4] > 10.0);
    }
}
