//! Adaptive-threshold integration: feedback loop, GA vs baselines, drift.

use dbcatcher::baselines::search::{random_search, simulated_annealing, AnnealingConfig};
use dbcatcher::core::feedback::{f_measure_on_records, FeedbackModule};
use dbcatcher::core::ga::{learn_thresholds, Genes, GeneticConfig};
use dbcatcher::eval::experiments::collect_judgment_records;
use dbcatcher::workload::dataset::DatasetSpec;

fn records() -> Vec<dbcatcher::core::feedback::JudgmentRecord> {
    let spec = DatasetSpec {
        num_units: 3,
        ticks: 400,
        ..DatasetSpec::paper_sysbench(17)
    };
    collect_judgment_records(&spec.build())
}

#[test]
fn ga_learns_thresholds_that_separate_real_records() {
    let records = records();
    assert!(records.iter().any(|r| r.label), "no anomalous records");
    let cfg = GeneticConfig {
        population: 16,
        generations: 15,
        seed: 5,
        ..GeneticConfig::default()
    };
    let outcome = learn_thresholds(14, &cfg, |g| f_measure_on_records(g, &records));
    assert!(outcome.fitness > 0.6, "GA fitness {}", outcome.fitness);
}

#[test]
fn three_searchers_comparable_at_equal_budget() {
    let records = records();
    let cfg = GeneticConfig {
        population: 16,
        generations: 12,
        seed: 9,
        ..GeneticConfig::default()
    };
    let budget = cfg.population * cfg.generations + cfg.population;
    let fitness = |g: &Genes| f_measure_on_records(g, &records);
    let ga = learn_thresholds(14, &cfg, fitness);
    let saa = simulated_annealing(14, &cfg, &AnnealingConfig::default(), budget, fitness);
    let rnd = random_search(14, &cfg, budget, fitness);
    // Fig. 11's qualitative claim at laptop scale: GA is at least
    // competitive with the baselines
    assert!(
        ga.fitness >= rnd.fitness - 0.05,
        "GA {} vs random {}",
        ga.fitness,
        rnd.fitness
    );
    assert!(
        ga.fitness >= saa.fitness - 0.05,
        "GA {} vs SAA {}",
        ga.fitness,
        saa.fitness
    );
    assert_eq!(ga.evaluations, budget);
    assert_eq!(saa.evaluations, budget);
}

#[test]
fn feedback_module_triggers_only_when_degraded() {
    let mut module = FeedbackModule::new(500, 0.75);
    for r in records() {
        module.push(r);
    }
    // learn good genes first
    let good = module
        .retrain(
            14,
            &GeneticConfig {
                population: 16,
                generations: 15,
                seed: 3,
                ..GeneticConfig::default()
            },
        )
        .genes;
    if module.current_f_measure(&good) >= 0.75 {
        assert!(!module.needs_retraining(&good));
    }
    // absurd genes flag everything abnormal → retraining required
    let absurd = Genes {
        alphas: vec![0.99; 14],
        theta: 0.0,
        max_tolerance: 0,
    };
    assert!(module.needs_retraining(&absurd));
}

#[test]
fn drift_changes_optimal_thresholds() {
    // thresholds learned on Tencent records vs Sysbench records differ in
    // achieved performance — the reason §IV-C3 measures retraining time
    let tencent = collect_judgment_records(
        &DatasetSpec {
            num_units: 3,
            ticks: 400,
            ..DatasetSpec::paper_tencent(19)
        }
        .build(),
    );
    let sysbench = collect_judgment_records(
        &DatasetSpec {
            num_units: 3,
            ticks: 400,
            ..DatasetSpec::paper_sysbench(23)
        }
        .build(),
    );
    let cfg = GeneticConfig {
        population: 16,
        generations: 15,
        seed: 7,
        ..GeneticConfig::default()
    };
    let tencent_genes = learn_thresholds(14, &cfg, |g| f_measure_on_records(g, &tencent)).genes;
    let retrained = learn_thresholds(14, &cfg, |g| f_measure_on_records(g, &sysbench));
    let carried = f_measure_on_records(&tencent_genes, &sysbench);
    assert!(
        retrained.fitness >= carried - 1e-9,
        "retraining lost performance: {} vs {}",
        retrained.fitness,
        carried
    );
}
