//! SR-CNN detector (paper §IV-A4, after Ren et al., KDD'19).
//!
//! Microsoft's production method: compute the Spectral Residual saliency
//! map, then train a small CNN to discriminate anomalous saliency
//! patterns. The CNN is trained on *synthetically injected* anomalies —
//! no labels needed — which is reproduced here: training segments are
//! drawn from the (healthy-dominated) training split, spikes are injected
//! at random positions, and the network learns to classify each position
//! of the saliency map.
//!
//! The network is fully convolutional (three conv1d stages ending in a
//! sigmoid), so scoring a whole series is a single forward pass.

use crate::detector::{vote_fraction, Detector, UnitSeries};
use crate::sr::SrDetector;
use dbcatcher_nn::activation::Activation;
use dbcatcher_nn::conv1d::Conv1d;
use dbcatcher_nn::loss::bce;
use dbcatcher_nn::matrix::Matrix;
use dbcatcher_nn::XorShiftRng;
use dbcatcher_signal::normalize::robust;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the SR-CNN detector.
#[derive(Debug, Clone)]
pub struct SrCnnConfig {
    /// Training segment length.
    pub segment: usize,
    /// Training segments drawn from the training split.
    pub train_segments: usize,
    /// Epochs over the segment set.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// Probability that a segment receives an injected anomaly.
    pub inject_prob: f64,
    /// Probability threshold for a point to vote "abnormal".
    pub vote_prob: f64,
    /// RNG seed (weights, segment sampling, injection).
    pub seed: u64,
}

impl Default for SrCnnConfig {
    fn default() -> Self {
        Self {
            segment: 64,
            train_segments: 150,
            epochs: 4,
            lr: 0.05,
            inject_prob: 0.7,
            vote_prob: 0.5,
            seed: 0x5C44,
        }
    }
}

/// The SR-CNN baseline.
#[derive(Debug, Clone)]
pub struct SrCnnDetector {
    config: SrCnnConfig,
    sr: SrDetector,
    conv1: Conv1d,
    conv2: Conv1d,
    head: Conv1d,
    trained: bool,
}

/// Receptive-field padding: 3 conv layers with kernel 7 consume 18 points.
const KERNEL: usize = 7;
const PAD: usize = 3 * (KERNEL - 1) / 2;

impl SrCnnDetector {
    /// Creates an untrained detector.
    pub fn new(config: SrCnnConfig) -> Self {
        let mut rng = XorShiftRng::new(config.seed);
        Self {
            sr: SrDetector::default(),
            conv1: Conv1d::new(1, 8, KERNEL, Activation::Relu, &mut rng),
            conv2: Conv1d::new(8, 8, KERNEL, Activation::Relu, &mut rng),
            head: Conv1d::new(8, 1, KERNEL, Activation::Sigmoid, &mut rng),
            trained: false,
            config,
        }
    }

    /// Whether [`Detector::fit`] has run.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Forward pass: per-position anomaly probabilities for a saliency
    /// map (input is edge-padded so the output matches the input length).
    fn forward(&self, saliency: &[f64]) -> Vec<f64> {
        let mut padded = Vec::with_capacity(saliency.len() + 2 * PAD);
        let first = *saliency.first().unwrap_or(&0.0);
        let last = *saliency.last().unwrap_or(&0.0);
        padded.extend(std::iter::repeat_n(first, PAD));
        padded.extend_from_slice(saliency);
        padded.extend(std::iter::repeat_n(last, PAD));
        let x = Matrix::row_vector(&padded);
        let c1 = self.conv1.forward(&x);
        let c2 = self.conv2.forward(c1.output());
        let out = self.head.forward(c2.output());
        out.output().row(0).to_vec()
    }

    /// One training step on a (saliency, labels) segment; returns the loss.
    fn train_step(&mut self, saliency: &[f64], labels: &[f64]) -> f64 {
        let mut padded = Vec::with_capacity(saliency.len() + 2 * PAD);
        let first = *saliency.first().unwrap_or(&0.0);
        let last = *saliency.last().unwrap_or(&0.0);
        padded.extend(std::iter::repeat_n(first, PAD));
        padded.extend_from_slice(saliency);
        padded.extend(std::iter::repeat_n(last, PAD));
        let x = Matrix::row_vector(&padded);
        let c1 = self.conv1.forward(&x);
        let c2 = self.conv2.forward(c1.output());
        let out = self.head.forward(c2.output());
        let target = Matrix::row_vector(labels);
        let (loss, grad) = bce(out.output(), &target);
        let g2 = self.head.backward(&out, &grad);
        let g1 = self.conv2.backward(&c2, &g2);
        self.conv1.backward(&c1, &g1);
        self.head.sgd_step(self.config.lr);
        self.conv2.sgd_step(self.config.lr);
        self.conv1.sgd_step(self.config.lr);
        loss
    }

    /// Collects raw training segments from the units. The segment length
    /// adapts downward when the training series are shorter than the
    /// configured segment (small datasets must still train the CNN).
    fn collect_segments(&self, units: &[&UnitSeries], rng: &mut StdRng) -> Vec<Vec<f64>> {
        let min_len = units
            .iter()
            .flat_map(|unit| unit.iter())
            .flat_map(|db| db.iter())
            .map(|kpi| kpi.len())
            .min()
            .unwrap_or(0);
        let seg = self.config.segment.min(min_len);
        if seg < 4 * PAD {
            return Vec::new(); // nothing long enough to learn from
        }
        let mut pool: Vec<&[f64]> = Vec::new();
        for unit in units {
            for db in unit.iter() {
                for kpi in db {
                    if kpi.len() >= seg {
                        pool.push(kpi);
                    }
                }
            }
        }
        if pool.is_empty() {
            return Vec::new();
        }
        (0..self.config.train_segments)
            .map(|_| {
                let series = pool[rng.gen_range(0..pool.len())];
                let start = rng.gen_range(0..=series.len() - seg);
                series[start..start + seg].to_vec()
            })
            .collect()
    }

    /// Injects a synthetic anomaly; returns the per-point labels.
    fn inject(&self, segment: &mut [f64], rng: &mut StdRng) -> Vec<f64> {
        let mut labels = vec![0.0; segment.len()];
        if !rng.gen_bool(self.config.inject_prob) {
            return labels;
        }
        let scale = dbcatcher_signal::stats::std_dev(segment)
            .max(segment.iter().map(|v| v.abs()).fold(0.0, f64::max) * 0.05 + 1e-6);
        let pos = rng.gen_range(PAD..segment.len().saturating_sub(PAD).max(PAD + 1));
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        let amp = rng.gen_range(4.0..10.0) * scale * sign;
        let width = rng.gen_range(1..=2usize);
        for i in pos..(pos + width).min(segment.len()) {
            segment[i] += amp;
            labels[i] = 1.0;
        }
        labels
    }

    /// Per-point anomaly probabilities for one raw series.
    pub fn point_probs(&self, xs: &[f64]) -> Vec<f64> {
        if xs.is_empty() {
            return Vec::new();
        }
        let sal = robust(&self.sr.saliency(xs));
        self.forward(&sal)
    }
}

impl Default for SrCnnDetector {
    fn default() -> Self {
        Self::new(SrCnnConfig::default())
    }
}

impl Detector for SrCnnDetector {
    fn name(&self) -> &'static str {
        "SR-CNN"
    }

    fn fit(&mut self, units: &[&UnitSeries]) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let segments = self.collect_segments(units, &mut rng);
        for _epoch in 0..self.config.epochs {
            for seg in &segments {
                let mut raw = seg.clone();
                let labels = self.inject(&mut raw, &mut rng);
                let sal = robust(&self.sr.saliency(&raw));
                self.train_step(&sal, &labels);
            }
        }
        self.trained = true;
    }

    fn score(&self, unit: &UnitSeries) -> Vec<f64> {
        let mut per_series = Vec::new();
        for db in unit {
            for kpi in db {
                per_series.push(self.point_probs(kpi));
            }
        }
        vote_fraction(&per_series, self.config.vote_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let noise = (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5;
                100.0 + 20.0 * (std::f64::consts::TAU * i as f64 / 30.0).sin() + 2.0 * noise
            })
            .collect()
    }

    fn train_unit() -> UnitSeries {
        vec![
            vec![smooth(256, 1), smooth(256, 2)],
            vec![smooth(256, 3), smooth(256, 4)],
        ]
    }

    fn quick_config() -> SrCnnConfig {
        SrCnnConfig {
            train_segments: 60,
            epochs: 3,
            ..SrCnnConfig::default()
        }
    }

    #[test]
    fn forward_output_length_matches_input() {
        let d = SrCnnDetector::new(quick_config());
        let probs = d.point_probs(&smooth(100, 9));
        assert_eq!(probs.len(), 100);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn training_separates_spikes_from_smooth() {
        let mut d = SrCnnDetector::new(quick_config());
        let unit = train_unit();
        d.fit(&[&unit]);
        assert!(d.is_trained());
        // test series with a fat spike
        let mut xs = smooth(128, 42);
        xs[64] += 250.0;
        let probs = d.point_probs(&xs);
        let spike_p = probs[63..=65].iter().cloned().fold(0.0f64, f64::max);
        let clean_p: f64 = probs[10..50].iter().sum::<f64>() / 40.0;
        assert!(
            spike_p > clean_p + 0.2,
            "spike {spike_p} vs clean {clean_p}"
        );
    }

    #[test]
    fn injection_labels_match_positions() {
        let d = SrCnnDetector::new(SrCnnConfig {
            inject_prob: 1.0,
            ..quick_config()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let mut seg = smooth(64, 7);
        let before = seg.clone();
        let labels = d.inject(&mut seg, &mut rng);
        let injected: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == 1.0)
            .map(|(i, _)| i)
            .collect();
        assert!(!injected.is_empty());
        for &i in &injected {
            assert_ne!(seg[i], before[i]);
        }
    }

    #[test]
    fn zero_inject_prob_keeps_segment() {
        let d = SrCnnDetector::new(SrCnnConfig {
            inject_prob: 0.0,
            ..quick_config()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let mut seg = smooth(64, 7);
        let before = seg.clone();
        let labels = d.inject(&mut seg, &mut rng);
        assert_eq!(seg, before);
        assert!(labels.iter().all(|&l| l == 0.0));
    }

    #[test]
    fn fit_on_empty_units_is_safe() {
        let mut d = SrCnnDetector::new(quick_config());
        d.fit(&[]);
        assert!(d.is_trained());
    }

    #[test]
    fn score_shape() {
        let d = SrCnnDetector::new(quick_config());
        let unit = train_unit();
        let scores = d.score(&unit);
        assert_eq!(scores.len(), 256);
    }
}
