//! Offered-load processes.
//!
//! A [`LoadProfile`] turns ticks into unit-wide [`OfferedLoad`] values.
//! Profiles are the workload primitives the Tencent/Sysbench/TPCC dataset
//! builders compose: periodic business cycles, bursty request storms
//! (paper Fig. 1), random walks and piecewise-constant benchmark segments.

use dbcatcher_sim::OfferedLoad;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal, Normal};
use serde::{Deserialize, Serialize};

/// A generator of per-tick offered load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadProfile {
    /// Constant load with multiplicative noise.
    Steady {
        /// Mean read requests per second.
        reads: f64,
        /// Mean write requests per second.
        writes: f64,
        /// Relative noise sigma.
        noise: f64,
    },
    /// Periodic "business cycle": sinusoid (+ optional second harmonic)
    /// around a baseline. Models the paper's periodic datasets (§IV-C2).
    Cyclic {
        /// Baseline reads per second.
        base_reads: f64,
        /// Baseline writes per second.
        base_writes: f64,
        /// Cycle length in ticks.
        period: usize,
        /// Relative amplitude of the fundamental, e.g. `0.5`.
        amplitude: f64,
        /// Relative amplitude of the second harmonic (0 disables it).
        harmonic: f64,
        /// Relative noise sigma.
        noise: f64,
    },
    /// Baseline with Poisson-arriving request bursts (paper Fig. 1:
    /// e-commerce or game users bursting at some point in time).
    Bursty {
        /// Baseline reads per second.
        base_reads: f64,
        /// Baseline writes per second.
        base_writes: f64,
        /// Per-tick probability that a burst starts.
        burst_prob: f64,
        /// Multiplicative burst height (log-normal median).
        burst_scale: f64,
        /// Burst duration range in ticks.
        burst_len: (usize, usize),
        /// Relative noise sigma.
        noise: f64,
    },
    /// Mean-reverting random walk (irregular workloads, §IV-C1).
    RandomWalk {
        /// Long-run mean reads per second.
        mean_reads: f64,
        /// Long-run mean writes per second.
        mean_writes: f64,
        /// Mean-reversion strength per tick (0–1).
        reversion: f64,
        /// Step sigma relative to the mean.
        volatility: f64,
    },
    /// Piecewise-constant benchmark segments (sysbench/tpcc runs): each
    /// segment holds a request rate for a fixed number of ticks.
    Segments {
        /// `(reads, writes, duration_ticks)` per segment, cycled if the
        /// requested horizon is longer than the plan.
        plan: Vec<(f64, f64, usize)>,
        /// Relative noise sigma.
        noise: f64,
    },
}

impl LoadProfile {
    /// Generates `ticks` offered-load samples, deterministically from
    /// `seed`.
    pub fn generate(&self, ticks: usize, seed: u64) -> Vec<OfferedLoad> {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            LoadProfile::Steady {
                reads,
                writes,
                noise,
            } => {
                let mut ln = LoadNoise::new(*noise);
                (0..ticks)
                    .map(|_| {
                        let (fr, fw) = ln.factors(&mut rng);
                        OfferedLoad::new(reads * fr, writes * fw)
                    })
                    .collect()
            }
            LoadProfile::Cyclic {
                base_reads,
                base_writes,
                period,
                amplitude,
                harmonic,
                noise,
            } => {
                let p = (*period).max(2) as f64;
                let mut ln = LoadNoise::new(*noise);
                (0..ticks)
                    .map(|t| {
                        let phase = std::f64::consts::TAU * t as f64 / p;
                        let shape = 1.0 + amplitude * phase.sin() + harmonic * (2.0 * phase).sin();
                        let shape = shape.max(0.05);
                        let (fr, fw) = ln.factors(&mut rng);
                        OfferedLoad::new(base_reads * shape * fr, base_writes * shape * fw)
                    })
                    .collect()
            }
            LoadProfile::Bursty {
                base_reads,
                base_writes,
                burst_prob,
                burst_scale,
                burst_len,
                noise,
            } => {
                let mut out = Vec::with_capacity(ticks);
                let mut remaining = 0usize;
                let mut factor = 1.0;
                let burst_dist =
                    LogNormal::new(burst_scale.max(1.0).ln(), 0.3).expect("valid lognormal");
                let mut ln = LoadNoise::new(*noise);
                for _ in 0..ticks {
                    if remaining == 0 && rng.gen_bool(burst_prob.clamp(0.0, 1.0)) {
                        remaining =
                            rng.gen_range(burst_len.0.max(1)..=burst_len.1.max(burst_len.0).max(1));
                        factor = burst_dist.sample(&mut rng).max(1.2);
                    }
                    let f = if remaining > 0 {
                        remaining -= 1;
                        factor
                    } else {
                        1.0
                    };
                    let (fr, fw) = ln.factors(&mut rng);
                    out.push(OfferedLoad::new(base_reads * f * fr, base_writes * f * fw));
                }
                out
            }
            LoadProfile::RandomWalk {
                mean_reads,
                mean_writes,
                reversion,
                volatility,
            } => {
                let mut level = 1.0f64;
                let step = Normal::new(0.0, volatility.max(1e-9)).expect("valid sigma");
                (0..ticks)
                    .map(|_| {
                        level += reversion * (1.0 - level) + step.sample(&mut rng);
                        level = level.clamp(0.05, 5.0);
                        OfferedLoad::new(mean_reads * level, mean_writes * level)
                    })
                    .collect()
            }
            LoadProfile::Segments { plan, noise } => {
                assert!(!plan.is_empty(), "segment plan must not be empty");
                let mut out = Vec::with_capacity(ticks);
                let mut ln = LoadNoise::new(*noise);
                'outer: loop {
                    for &(reads, writes, dur) in plan {
                        for _ in 0..dur.max(1) {
                            if out.len() == ticks {
                                break 'outer;
                            }
                            let (fr, fw) = ln.factors(&mut rng);
                            out.push(OfferedLoad::new(reads * fr, writes * fw));
                        }
                    }
                }
                out
            }
        }
    }
}

/// Configuration of rare *legitimate* load events (paper Fig. 1): short,
/// strong, unit-wide bursts (or dips) of traffic — e-commerce or game
/// users arriving at once. They raise every database's KPIs together, so
/// trend-correlation methods stay quiet while single-series detectors see
/// a salient deviation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RareEventConfig {
    /// Per-tick probability that an event starts.
    pub prob: f64,
    /// Multiplicative magnitude range of a burst.
    pub scale: (f64, f64),
    /// Event duration range in ticks.
    pub len: (usize, usize),
    /// Probability that the event is a dip (`1/scale`) instead of a burst.
    pub dip_prob: f64,
}

impl Default for RareEventConfig {
    fn default() -> Self {
        Self {
            prob: 0.004,
            scale: (2.0, 4.0),
            len: (3, 8),
            dip_prob: 0.3,
        }
    }
}

/// Overlays rare legitimate events onto a load trace in place.
pub fn overlay_rare_events(loads: &mut [OfferedLoad], cfg: &RareEventConfig, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let mut t = 0usize;
    while t < loads.len() {
        if rng.gen_bool(cfg.prob.clamp(0.0, 1.0)) {
            let mut factor = rng.gen_range(cfg.scale.0..=cfg.scale.1);
            if rng.gen_bool(cfg.dip_prob.clamp(0.0, 1.0)) {
                factor = 1.0 / factor;
            }
            let len = rng.gen_range(cfg.len.0.max(1)..=cfg.len.1.max(cfg.len.0).max(1));
            for l in loads.iter_mut().skip(t).take(len) {
                l.reads *= factor;
                l.writes *= factor;
            }
            t += len;
        } else {
            t += 1;
        }
    }
}

/// AR(1) multiplicative noise on the offered load. Client populations
/// fluctuate smoothly rather than tick-by-tick, so the noise must carry
/// autocorrelation — that smooth shared wiggle is the trend the UKPIC
/// correlation keys on inside otherwise-flat windows.
#[derive(Debug, Clone)]
struct LoadNoise {
    phi: f64,
    eps_sigma: f64,
    read_state: f64,
    write_state: f64,
}

impl LoadNoise {
    fn new(sigma: f64) -> Self {
        let phi = 0.6_f64;
        Self {
            phi,
            // stationary std of AR(1) is eps / sqrt(1 - phi^2)
            eps_sigma: sigma.max(0.0) * (1.0 - phi * phi).sqrt(),
            read_state: 0.0,
            write_state: 0.0,
        }
    }

    fn factors(&mut self, rng: &mut StdRng) -> (f64, f64) {
        if self.eps_sigma <= 0.0 {
            return (1.0, 1.0);
        }
        let n = Normal::new(0.0, self.eps_sigma).expect("valid sigma");
        self.read_state = self.phi * self.read_state + n.sample(rng);
        self.write_state = self.phi * self.write_state + n.sample(rng);
        (
            (1.0 + self.read_state).max(0.0),
            (1.0 + self.write_state).max(0.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcatcher_signal::period::{classify, PeriodicityConfig};

    fn reads_of(loads: &[OfferedLoad]) -> Vec<f64> {
        loads.iter().map(|l| l.reads).collect()
    }

    #[test]
    fn steady_is_deterministic_per_seed() {
        let p = LoadProfile::Steady {
            reads: 1000.0,
            writes: 100.0,
            noise: 0.1,
        };
        assert_eq!(p.generate(50, 1), p.generate(50, 1));
        assert_ne!(reads_of(&p.generate(50, 1)), reads_of(&p.generate(50, 2)));
    }

    #[test]
    fn steady_no_noise_is_constant() {
        let p = LoadProfile::Steady {
            reads: 500.0,
            writes: 50.0,
            noise: 0.0,
        };
        for l in p.generate(10, 3) {
            assert_eq!(l.reads, 500.0);
            assert_eq!(l.writes, 50.0);
        }
    }

    #[test]
    fn cyclic_profile_is_classified_periodic() {
        let p = LoadProfile::Cyclic {
            base_reads: 2000.0,
            base_writes: 200.0,
            period: 48,
            amplitude: 0.5,
            harmonic: 0.1,
            noise: 0.05,
        };
        let loads = p.generate(480, 7);
        let verdict = classify(&reads_of(&loads), &PeriodicityConfig::default()).unwrap();
        assert!(verdict.periodic, "{verdict:?}");
    }

    #[test]
    fn random_walk_is_classified_irregular() {
        let p = LoadProfile::RandomWalk {
            mean_reads: 2000.0,
            mean_writes: 200.0,
            reversion: 0.02,
            volatility: 0.08,
        };
        let loads = p.generate(480, 11);
        let verdict = classify(&reads_of(&loads), &PeriodicityConfig::default()).unwrap();
        assert!(!verdict.periodic, "{verdict:?}");
    }

    #[test]
    fn bursty_produces_bursts_above_baseline() {
        let p = LoadProfile::Bursty {
            base_reads: 1000.0,
            base_writes: 100.0,
            burst_prob: 0.05,
            burst_scale: 3.0,
            burst_len: (3, 8),
            noise: 0.02,
        };
        let loads = p.generate(500, 13);
        let reads = reads_of(&loads);
        let max = reads.iter().cloned().fold(f64::MIN, f64::max);
        let median = dbcatcher_signal::stats::median(&reads);
        assert!(max > median * 2.0, "max {max}, median {median}");
    }

    #[test]
    fn segments_follow_plan_and_cycle() {
        let p = LoadProfile::Segments {
            plan: vec![(100.0, 10.0, 2), (200.0, 20.0, 3)],
            noise: 0.0,
        };
        let loads = p.generate(7, 1);
        let reads = reads_of(&loads);
        assert_eq!(reads, vec![100.0, 100.0, 200.0, 200.0, 200.0, 100.0, 100.0]);
    }

    #[test]
    fn requested_length_always_honoured() {
        for profile in [
            LoadProfile::Steady {
                reads: 1.0,
                writes: 1.0,
                noise: 0.1,
            },
            LoadProfile::Cyclic {
                base_reads: 1.0,
                base_writes: 1.0,
                period: 10,
                amplitude: 0.3,
                harmonic: 0.0,
                noise: 0.0,
            },
            LoadProfile::RandomWalk {
                mean_reads: 1.0,
                mean_writes: 1.0,
                reversion: 0.1,
                volatility: 0.1,
            },
        ] {
            assert_eq!(profile.generate(123, 9).len(), 123);
            assert_eq!(profile.generate(0, 9).len(), 0);
        }
    }

    #[test]
    fn loads_never_negative() {
        let p = LoadProfile::Steady {
            reads: 10.0,
            writes: 1.0,
            noise: 2.0, // huge noise would go negative without clamping
        };
        for l in p.generate(1000, 21) {
            assert!(l.reads >= 0.0 && l.writes >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "segment plan must not be empty")]
    fn empty_plan_panics() {
        let p = LoadProfile::Segments {
            plan: vec![],
            noise: 0.0,
        };
        let _ = p.generate(5, 1);
    }
}
