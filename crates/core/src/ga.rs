//! Adaptive threshold learning via a genetic algorithm (paper §III-D,
//! Algorithm 2).
//!
//! An individual's genes are the detector's learnable thresholds: the
//! per-KPI correlation thresholds α_i, the tolerance threshold θ and the
//! maximum tolerance deviation number N. Fitness is detection performance
//! (F-Measure) over recent judgment records, supplied by the caller as a
//! closure so the GA is reusable for ablations (Fig. 11 compares it with
//! simulated annealing and random search, implemented in the baselines
//! crate on the same [`Genes`] type).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One individual's genes (paper: "multiple correlation thresholds α_i, a
/// tolerance threshold θ, and a maximum tolerance deviation number N").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Genes {
    /// Per-KPI correlation thresholds.
    pub alphas: Vec<f64>,
    /// Tolerance threshold.
    pub theta: f64,
    /// Maximum tolerance deviation number.
    pub max_tolerance: usize,
}

impl Genes {
    /// Random genes within the configured initial ranges.
    pub fn random(num_kpis: usize, cfg: &GeneticConfig, rng: &mut StdRng) -> Self {
        Self {
            alphas: (0..num_kpis)
                .map(|_| rng.gen_range(cfg.alpha_range.0..=cfg.alpha_range.1))
                .collect(),
            theta: rng.gen_range(cfg.theta_range.0..=cfg.theta_range.1),
            max_tolerance: rng.gen_range(cfg.tolerance_range.0..=cfg.tolerance_range.1),
        }
    }
}

/// Genetic-algorithm hyper-parameters. Defaults follow §III-D: initial
/// α_i ∈ [0.6, 0.8], θ ∈ [0.1, 0.3], N ∈ [0, 3], learning rate Δ = 0.1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneticConfig {
    /// Individuals per generation (the paper's M).
    pub population: usize,
    /// Generations (the paper's number of iterations N).
    pub generations: usize,
    /// Mutation probability β per offspring.
    pub mutation_prob: f64,
    /// Mutation step Δ applied to correlation thresholds.
    pub learning_rate: f64,
    /// Initial sampling range for α_i.
    pub alpha_range: (f64, f64),
    /// Hard bounds α_i may mutate into ("explore the remaining threshold
    /// space", §III-D).
    pub alpha_bounds: (f64, f64),
    /// Initial/resampling range for θ.
    pub theta_range: (f64, f64),
    /// Initial/resampling range for N.
    pub tolerance_range: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        Self {
            population: 20,
            generations: 30,
            mutation_prob: 0.25,
            learning_rate: 0.1,
            alpha_range: (0.6, 0.8),
            alpha_bounds: (0.3, 0.99),
            theta_range: (0.1, 0.3),
            tolerance_range: (0, 3),
            seed: 0x6E6E,
        }
    }
}

/// Outcome of a threshold-learning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnOutcome {
    /// Best genes found.
    pub genes: Genes,
    /// Their fitness.
    pub fitness: f64,
    /// Fitness evaluations spent (comparability with SAA/random search).
    pub evaluations: usize,
}

/// Runs Algorithm 2 and returns the historically best individual.
///
/// # Panics
/// Panics when `num_kpis == 0` or `population < 2`.
pub fn learn_thresholds(
    num_kpis: usize,
    cfg: &GeneticConfig,
    mut fitness: impl FnMut(&Genes) -> f64,
) -> LearnOutcome {
    assert!(num_kpis > 0, "need at least one KPI");
    assert!(cfg.population >= 2, "population must be >= 2");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut population: Vec<Genes> = (0..cfg.population)
        .map(|_| Genes::random(num_kpis, cfg, &mut rng))
        .collect();
    let mut evaluations = 0usize;
    let mut best: Option<(Genes, f64)> = None;

    for _generation in 0..cfg.generations {
        // Get Individuals Performance
        let scores: Vec<f64> = population
            .iter()
            .map(|g| {
                evaluations += 1;
                fitness(g)
            })
            .collect();
        // Save θ_best (elitism over history)
        for (g, &s) in population.iter().zip(&scores) {
            if best.as_ref().map(|(_, b)| s > *b).unwrap_or(true) {
                best = Some((g.clone(), s));
            }
        }
        // Evict Poor Performance Individuals: keep the better half.
        let mut order: Vec<usize> = (0..population.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        let keep = (population.len() / 2).max(1);
        let survivors: Vec<Genes> = order[..keep]
            .iter()
            .map(|&i| population[i].clone())
            .collect();
        let survivor_scores: Vec<f64> = order[..keep].iter().map(|&i| scores[i]).collect();

        // Refill via roulette selection + crossover + mutation.
        let mut next = survivors.clone();
        while next.len() < cfg.population {
            let a = roulette(&survivor_scores, &mut rng);
            let b = roulette(&survivor_scores, &mut rng);
            let (mut child1, child2) = crossover(&survivors[a], &survivors[b], &mut rng);
            if rng.gen_bool(cfg.mutation_prob.clamp(0.0, 1.0)) {
                mutate(&mut child1, cfg, &mut rng);
            }
            next.push(child1);
            if next.len() < cfg.population {
                let mut child2 = child2;
                if rng.gen_bool(cfg.mutation_prob.clamp(0.0, 1.0)) {
                    mutate(&mut child2, cfg, &mut rng);
                }
                next.push(child2);
            }
        }
        population = next;
    }
    // Final evaluation pass so the last generation also competes.
    for g in &population {
        evaluations += 1;
        let s = fitness(g);
        if best.as_ref().map(|(_, b)| s > *b).unwrap_or(true) {
            best = Some((g.clone(), s));
        }
    }
    // dbclint: allow(panic-free) — population size is asserted >= 2 at entry, so the final evaluation loop always sets best.
    let (genes, fitness_value) = best.expect("population non-empty");
    LearnOutcome {
        genes,
        fitness: fitness_value,
        evaluations,
    }
}

/// Roulette-wheel selection (Eq. 6): probability proportional to fitness.
/// Uniform fallback when all fitness is zero.
fn roulette(scores: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = scores.iter().map(|s| s.max(0.0)).sum();
    if total <= 0.0 {
        return rng.gen_range(0..scores.len());
    }
    let mut target = rng.gen_range(0.0..total);
    for (i, s) in scores.iter().enumerate() {
        target -= s.max(0.0);
        if target <= 0.0 {
            return i;
        }
    }
    scores.len() - 1
}

/// Single-point crossover on the α vector; θ and N are inherited randomly
/// from either parent (paper's crossover strategy).
fn crossover(x: &Genes, y: &Genes, rng: &mut StdRng) -> (Genes, Genes) {
    let n = x.alphas.len();
    let m = if n > 1 { rng.gen_range(1..n) } else { 0 };
    let mut a1 = x.alphas[..m].to_vec();
    a1.extend_from_slice(&y.alphas[m..]);
    let mut a2 = y.alphas[..m].to_vec();
    a2.extend_from_slice(&x.alphas[m..]);
    let pick = |rng: &mut StdRng, a: f64, b: f64| if rng.gen_bool(0.5) { a } else { b };
    let pick_usize = |rng: &mut StdRng, a: usize, b: usize| if rng.gen_bool(0.5) { a } else { b };
    (
        Genes {
            alphas: a1,
            theta: pick(rng, x.theta, y.theta),
            max_tolerance: pick_usize(rng, x.max_tolerance, y.max_tolerance),
        },
        Genes {
            alphas: a2,
            theta: pick(rng, y.theta, x.theta),
            max_tolerance: pick_usize(rng, y.max_tolerance, x.max_tolerance),
        },
    )
}

/// Mutation: every α_i randomly steps ±Δ (clamped to the bounds); θ and N
/// resample within their ranges (paper's mutation strategy).
fn mutate(genes: &mut Genes, cfg: &GeneticConfig, rng: &mut StdRng) {
    for a in genes.alphas.iter_mut() {
        let step = if rng.gen_bool(0.5) {
            cfg.learning_rate
        } else {
            -cfg.learning_rate
        };
        *a = (*a + step).clamp(cfg.alpha_bounds.0, cfg.alpha_bounds.1);
    }
    genes.theta = rng.gen_range(cfg.theta_range.0..=cfg.theta_range.1);
    genes.max_tolerance = rng.gen_range(cfg.tolerance_range.0..=cfg.tolerance_range.1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_known_optimum_region() {
        // Fitness peaks when every alpha is near 0.72 and theta near 0.18.
        let cfg = GeneticConfig {
            generations: 40,
            population: 24,
            seed: 5,
            ..GeneticConfig::default()
        };
        let outcome = learn_thresholds(4, &cfg, |g| {
            let alpha_err: f64 = g.alphas.iter().map(|a| (a - 0.72).abs()).sum::<f64>() / 4.0;
            let theta_err = (g.theta - 0.18).abs();
            (1.0 - alpha_err * 4.0 - theta_err * 2.0).max(0.0)
        });
        assert!(outcome.fitness > 0.85, "fitness {}", outcome.fitness);
        for a in &outcome.genes.alphas {
            assert!((a - 0.72).abs() < 0.08, "alpha {a}");
        }
    }

    #[test]
    fn beats_single_random_draw() {
        // GA must end at least as good as its own initial population best.
        let cfg = GeneticConfig {
            generations: 10,
            seed: 9,
            ..GeneticConfig::default()
        };
        let target = |g: &Genes| 1.0 - (g.theta - 0.25).abs();
        let outcome = learn_thresholds(3, &cfg, target);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let first = Genes::random(3, &cfg, &mut rng);
        assert!(outcome.fitness >= target(&first));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GeneticConfig {
            generations: 5,
            seed: 3,
            ..GeneticConfig::default()
        };
        let f = |g: &Genes| g.alphas.iter().sum::<f64>();
        let a = learn_thresholds(3, &cfg, f);
        let b = learn_thresholds(3, &cfg, f);
        assert_eq!(a.genes, b.genes);
    }

    #[test]
    fn genes_within_bounds_after_learning() {
        let cfg = GeneticConfig {
            generations: 20,
            seed: 13,
            ..GeneticConfig::default()
        };
        let outcome = learn_thresholds(5, &cfg, |g| g.alphas.iter().map(|a| 1.0 - a).sum());
        for a in &outcome.genes.alphas {
            assert!(
                (cfg.alpha_bounds.0..=cfg.alpha_bounds.1).contains(a),
                "alpha {a} out of bounds"
            );
        }
        assert!(
            outcome.genes.theta >= cfg.theta_range.0 && outcome.genes.theta <= cfg.theta_range.1
        );
        assert!(outcome.genes.max_tolerance <= cfg.tolerance_range.1);
    }

    #[test]
    fn evaluation_budget_accounted() {
        let cfg = GeneticConfig {
            population: 10,
            generations: 7,
            seed: 1,
            ..GeneticConfig::default()
        };
        let outcome = learn_thresholds(2, &cfg, |_| 0.5);
        // generations * population + final pass
        assert_eq!(outcome.evaluations, 7 * 10 + 10);
    }

    #[test]
    fn zero_fitness_everywhere_still_terminates() {
        let cfg = GeneticConfig {
            generations: 5,
            seed: 2,
            ..GeneticConfig::default()
        };
        let outcome = learn_thresholds(3, &cfg, |_| 0.0);
        assert_eq!(outcome.fitness, 0.0);
        assert_eq!(outcome.genes.alphas.len(), 3);
    }

    #[test]
    fn crossover_preserves_arity_and_material() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Genes {
            alphas: vec![0.6, 0.6, 0.6],
            theta: 0.1,
            max_tolerance: 0,
        };
        let y = Genes {
            alphas: vec![0.8, 0.8, 0.8],
            theta: 0.3,
            max_tolerance: 3,
        };
        let (c1, c2) = crossover(&x, &y, &mut rng);
        assert_eq!(c1.alphas.len(), 3);
        assert_eq!(c2.alphas.len(), 3);
        // every child allele comes from a parent
        for c in [&c1, &c2] {
            assert!(c.alphas.iter().all(|&a| a == 0.6 || a == 0.8));
            assert!(c.theta == 0.1 || c.theta == 0.3);
            assert!(c.max_tolerance == 0 || c.max_tolerance == 3);
        }
        // crossover actually mixes: the two children are complementary
        for i in 0..3 {
            assert!((c1.alphas[i] - c2.alphas[i]).abs() > 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "population must be >= 2")]
    fn tiny_population_panics() {
        let cfg = GeneticConfig {
            population: 1,
            ..GeneticConfig::default()
        };
        let _ = learn_thresholds(2, &cfg, |_| 0.0);
    }
}
