//! Deterministic whole-system chaos simulator for the DBCatcher daemon.
//!
//! The paper (§III-A) positions DBCatcher as an *online* system; PR 4
//! added the daemon and PR 5 its fault-tolerant ingestion. This crate
//! closes the loop with a **seed-reproducible soak harness** in the
//! spirit of FoundationDB-style simulation testing:
//!
//! - [`plan`] — one seeded RNG ([`SimPlan::generate`]) draws the entire
//!   run up front: unit topology, workload/anomaly mixes, collector
//!   fault schedules, producer connect/disconnect churn, backpressure
//!   pressure (queue caps, emit windows, slow ticks) and a daemon
//!   boot/kill/resume schedule. The plan is plain serialisable data; the
//!   harness adds no randomness, so `SEED=n` reproduces a failure
//!   byte-identically on any machine.
//! - [`harness`] — executes a plan against a *real* in-process
//!   [`dbcatcher_serve::DetectionServer`] over real sockets, then
//!   property-checks that online verdicts equal a deterministic offline
//!   replay and that the standing invariants hold: bounded queues,
//!   **zero** ticks lost per kill/resume (every ingested tick recovers
//!   from snapshot + WAL, none duplicated), injected shard panics and
//!   wedges contained by the supervisor, demotion/re-admission
//!   lifecycle intact, no shard ever wedges the daemon.
//! - [`mod@shrink`] — greedy schedule minimization: when a seed fails, the
//!   failing plan is re-run under simplifying edits (drop crashes, drop
//!   faults, fewer boots/units, shorter streams) until the smallest
//!   still-failing schedule remains.
//! - [`event`] — the deterministic JSONL event log and canonical verdict
//!   stream (two runs of one seed produce byte-identical output).
//!
//! The `dbcatcher simulate --chaos --seed N` subcommand and the
//! `sim_corpus` / `sim_soak` test suites are thin wrappers over
//! [`run_seed`].

#![forbid(unsafe_code)]

pub mod event;
pub mod harness;
pub mod plan;
pub mod shrink;

pub use event::{canonicalize, verdict_digest, verdict_key, verdict_line, EventLog, VerdictKey};
pub use harness::{run_plan, SimOutcome};
pub use plan::{
    BootEnd, BootPlan, InjectionKind, SessionPlan, ShardInjection, SimOpts, SimPlan, UnitPlan,
    MIN_TICKS,
};
pub use shrink::{shrink, shrink_with, ShrinkReport};

/// Generates the plan for `seed` under `opts` and runs it end to end.
pub fn run_seed(seed: u64, opts: &SimOpts) -> SimOutcome {
    run_plan(&SimPlan::generate(seed, opts))
}
