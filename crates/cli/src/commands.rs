//! Command implementations.

use crate::args::{Command, USAGE};
use dbcatcher_core::config::DbCatcherConfig;
use dbcatcher_core::pipeline::DbCatcher;
use dbcatcher_eval::methods::train_dbcatcher;
use dbcatcher_eval::metrics::{adjusted_confusion, windowed_any};
use dbcatcher_eval::protocol::ProtocolConfig;
use dbcatcher_hierarchy::{
    parse_unit_line, render_scope_line, replay, HierarchyConfig, ScopeState, Topology, UnitVerdict,
};
use dbcatcher_serve::server::{DetectionServer, ServeConfig};
use dbcatcher_serve::{DetectorTemplate, EmitOptions, HierarchyOptions, UnitStream};
use dbcatcher_sim::faults::{FaultInjector, FaultPreset};
use dbcatcher_sim::CorrelatedKind;
use dbcatcher_simulator::{self as simulator, SimOpts};
use dbcatcher_workload::anomaly::AnomalyPlanConfig;
use dbcatcher_workload::dataset::{Dataset, DatasetSpec, UnitData};
use dbcatcher_workload::io::{export_unit_csv, load_dataset, save_dataset};
use dbcatcher_workload::profile::RareEventConfig;
use std::io::Write;
use std::path::PathBuf;

/// A typed CLI failure. The long-running daemon records unit-scoped
/// problems in its metrics (`dbcatcher stats`) instead of surfacing them
/// here; this type covers the failures that genuinely end a command.
#[derive(Debug)]
pub enum CliError {
    /// Filesystem / socket failure, with what the CLI was doing.
    Io {
        /// What was being attempted.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Dataset serialisation trouble (load/save/export).
    Data {
        /// What was being attempted.
        context: String,
        /// The underlying diagnostic.
        detail: String,
    },
    /// The detector rejected its input.
    Detect(String),
    /// Wire-client failure talking to a daemon.
    Client(String),
    /// Invalid argument values that the parser could not catch.
    Usage(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Io { context, source } => write!(f, "{context}: {source}"),
            CliError::Data { context, detail } => write!(f, "{context}: {detail}"),
            CliError::Detect(m) | CliError::Usage(m) => write!(f, "{m}"),
            CliError::Client(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl CliError {
    fn io(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> Self {
        let context = context.into();
        move |source| CliError::Io { context, source }
    }

    fn data(context: impl Into<String>) -> impl FnOnce(dbcatcher_workload::io::IoError) -> Self {
        let context = context.into();
        move |e| CliError::Data {
            context,
            detail: e.to_string(),
        }
    }
}

/// Executes a parsed command.
///
/// # Errors
/// A typed [`CliError`] on any failure.
pub fn run(command: Command) -> Result<(), CliError> {
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Simulate {
            kind,
            subset,
            units,
            ticks,
            seed,
            anomaly_ratio,
            correlated,
            group,
            out,
        } => {
            if let Some(kind) = correlated {
                return simulate_correlated(kind, units, group, ticks, seed, &out);
            }
            let spec = DatasetSpec {
                name: format!("{} ({subset:?})", kind.name()),
                kind,
                subset,
                num_units: units,
                ticks,
                databases_per_unit: 5,
                anomalies: AnomalyPlanConfig {
                    target_ratio: anomaly_ratio,
                    ..AnomalyPlanConfig::default()
                },
                rare_events: RareEventConfig::default(),
                seed,
            };
            let dataset = spec.build();
            let stats = dataset.stats();
            save_dataset(&dataset, &out).map_err(CliError::data(format!("write {out}")))?;
            println!(
                "wrote {out}: {} units x 5 databases x {} KPIs, {} points, {:.2}% anomalous",
                stats.units,
                stats.dimensions,
                stats.total_points,
                stats.abnormal_ratio * 100.0
            );
            Ok(())
        }
        Command::Chaos {
            seed,
            units,
            ticks,
            boots,
            no_crash,
            out,
            verdicts,
            no_shrink,
        } => run_chaos(
            seed, units, ticks, boots, no_crash, out, verdicts, no_shrink,
        ),
        Command::Detect {
            data,
            learn,
            train_frac,
            out,
            backend,
            faults,
            fault_seed,
            gap_policy,
        } => {
            let dataset = load_dataset(&data).map_err(CliError::data(format!("load {data}")))?;
            let (mut config, test) = prepare(&dataset, learn, train_frac)?;
            config.backend = backend;
            config.ingest.gap_policy = gap_policy;
            let mut sink: Box<dyn Write> = match out {
                Some(path) => Box::new(
                    std::fs::File::create(&path).map_err(CliError::io(format!("create {path}")))?,
                ),
                None => Box::new(std::io::stdout()),
            };
            let mut total = 0usize;
            for (unit_idx, unit) in test.units.iter().enumerate() {
                let mut catcher = DbCatcher::new(config.clone(), unit.num_databases())
                    .with_participation(unit.participation.clone());
                let mut injector = unit_injector(faults, fault_seed, unit_idx, unit);
                for t in 0..unit.num_ticks() {
                    let mut frame = unit.tick_matrix(t);
                    if let Some(inj) = injector.as_mut() {
                        inj.apply(t as u64, &mut frame);
                    }
                    let report = catcher
                        .try_ingest_tick(&frame)
                        .map_err(|e| CliError::Detect(format!("unit {unit_idx} tick {t}: {e}")))?;
                    for v in report.verdicts {
                        if v.state.is_abnormal() {
                            total += 1;
                            write_verdict_record(&mut sink, unit_idx, &v)?;
                        }
                    }
                }
                report_health(unit_idx, &catcher, faults);
            }
            eprintln!("{total} abnormal verdict(s)");
            Ok(())
        }
        Command::Evaluate {
            data,
            learn,
            train_frac,
            backend,
            faults,
            fault_seed,
            gap_policy,
        } => {
            let dataset = load_dataset(&data).map_err(CliError::data(format!("load {data}")))?;
            let (mut config, test) = prepare(&dataset, learn, train_frac)?;
            config.backend = backend;
            config.ingest.gap_policy = gap_policy;
            let eval_w = 20usize;
            let mut confusion = dbcatcher_eval::metrics::Confusion::default();
            for (unit_idx, unit) in test.units.iter().enumerate() {
                let mut catcher = DbCatcher::new(config.clone(), unit.num_databases())
                    .with_participation(unit.participation.clone());
                let mut injector = unit_injector(faults, fault_seed, unit_idx, unit);
                let mut tick_preds = vec![false; unit.num_ticks()];
                for t in 0..unit.num_ticks() {
                    let mut frame = unit.tick_matrix(t);
                    if let Some(inj) = injector.as_mut() {
                        inj.apply(t as u64, &mut frame);
                    }
                    let report = catcher
                        .try_ingest_tick(&frame)
                        .map_err(|e| CliError::Detect(format!("unit {unit_idx} tick {t}: {e}")))?;
                    for v in report.verdicts {
                        if v.state.is_abnormal() {
                            let end = (v.end_tick as usize).min(unit.num_ticks());
                            tick_preds[v.start_tick as usize..end]
                                .iter_mut()
                                .for_each(|p| *p = true);
                        }
                    }
                }
                report_health(unit_idx, &catcher, faults);
                let labels: Vec<bool> = (0..unit.num_ticks())
                    .map(|t| unit.any_anomalous(t))
                    .collect();
                confusion.merge(&adjusted_confusion(
                    &windowed_any(&tick_preds, eval_w),
                    &windowed_any(&labels, eval_w),
                ));
            }
            println!(
                "precision {:.1}%  recall {:.1}%  f-measure {:.1}%  ({} windows)",
                confusion.precision() * 100.0,
                confusion.recall() * 100.0,
                confusion.f_measure() * 100.0,
                confusion.total()
            );
            Ok(())
        }
        Command::Serve {
            listen,
            units,
            shards,
            queue_cap,
            snapshot_dir,
            snapshot_every,
            resume,
            wal_dir,
            fsync_every,
            shard_restart_limit,
            wedge_timeout_ms,
            backend,
            gap_policy,
            port_file,
            hierarchy,
            units_per_cluster,
            clusters_per_region,
            scope_out,
        } => {
            let config = ServeConfig {
                max_units: units,
                shards,
                queue_cap,
                snapshot_dir: snapshot_dir.map(PathBuf::from),
                snapshot_every,
                resume_dir: resume.map(PathBuf::from),
                wal_dir: wal_dir.map(PathBuf::from),
                fsync_every,
                shard_restart_limit,
                wedge_timeout: std::time::Duration::from_millis(wedge_timeout_ms),
                chaos: chaos_from_env(),
                template: DetectorTemplate {
                    backend,
                    gap_policy,
                },
                hierarchy: (hierarchy || scope_out.is_some()).then(|| HierarchyOptions {
                    units_per_cluster,
                    clusters_per_region,
                    scope_out: scope_out.map(PathBuf::from),
                }),
                ..ServeConfig::default()
            };
            let server = DetectionServer::bind(listen.as_str(), config)
                .map_err(CliError::io(format!("bind {listen}")))?;
            let addr = server.local_addr();
            if let Some(path) = port_file {
                std::fs::write(&path, format!("{addr}\n"))
                    .map_err(CliError::io(format!("write {path}")))?;
            }
            eprintln!("dbcatcher serve: listening on {addr} (units <= {units})");
            server.run().map_err(CliError::io("serve"))?;
            eprintln!("dbcatcher serve: clean shutdown");
            Ok(())
        }
        Command::Emit {
            connect,
            data,
            rate,
            window,
            faults,
            fault_seed,
            out,
            stop_server,
        } => {
            let dataset = load_dataset(&data).map_err(CliError::data(format!("load {data}")))?;
            let streams = dataset_streams(&dataset, faults, fault_seed);
            let options = EmitOptions {
                rate,
                window,
                stop_after: stop_server,
                // Decorrelate concurrent producers' backoff jitter the
                // same way their fault dice are decorrelated.
                retry_seed: fault_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ..EmitOptions::default()
            };
            let report = dbcatcher_serve::emit(connect.as_str(), streams, &options)
                .map_err(|e| CliError::Client(e.to_string()))?;
            let mut sink: Box<dyn Write> = match out {
                Some(path) => Box::new(
                    std::fs::File::create(&path).map_err(CliError::io(format!("create {path}")))?,
                ),
                None => Box::new(std::io::stdout()),
            };
            // Restart replays re-deliver bit-identical verdicts; the
            // sorted stream dedups them so the output matches `detect`.
            let mut total = 0usize;
            let mut last_key: Option<(usize, u64, usize, u64)> = None;
            for record in report.sorted_verdicts() {
                let key = (
                    record.unit,
                    record.at_tick,
                    record.verdict.db,
                    record.verdict.start_tick,
                );
                if last_key == Some(key) {
                    continue;
                }
                last_key = Some(key);
                if record.verdict.state.is_abnormal() {
                    total += 1;
                    write_verdict_record(&mut sink, record.unit, &record.verdict)?;
                }
            }
            for (unit, next_tick) in &report.resumed {
                eprintln!("unit {unit}: server resumed from snapshot at tick {next_tick}");
            }
            for message in &report.errors {
                eprintln!("server: {message}");
            }
            eprintln!(
                "{} tick(s) accepted, {} backpressure reject(s), {} out-of-order reject(s)",
                report.ticks_accepted, report.rejects_backpressure, report.rejects_order
            );
            if report.backoff_waits > 0 || report.flush_rewinds > 0 || report.control_retries > 0 {
                eprintln!(
                    "{} backoff wait(s) ({} ms total), {} flush rewind(s), {} control retry(ies)",
                    report.backoff_waits,
                    report.backoff_ms_total,
                    report.flush_rewinds,
                    report.control_retries
                );
            }
            eprintln!("{total} abnormal verdict(s)");
            Ok(())
        }
        Command::Stats { connect } => {
            let snapshot = dbcatcher_serve::fetch_stats(connect.as_str())
                .map_err(|e| CliError::Client(e.to_string()))?;
            let json = serde_json::to_string(&snapshot).map_err(|e| CliError::Data {
                context: "render stats".into(),
                detail: e.to_string(),
            })?;
            println!("{json}");
            Ok(())
        }
        Command::ResetUnit { connect, unit } => {
            let next_tick = dbcatcher_serve::reset_unit(connect.as_str(), unit)
                .map_err(|e| CliError::Client(e.to_string()))?;
            println!("unit {unit}: re-admitted on probation, next tick {next_tick}");
            Ok(())
        }
        Command::AnalyzeFleet {
            verdicts,
            units,
            units_per_cluster,
            clusters_per_region,
            out,
        } => analyze_fleet(
            &verdicts,
            units,
            units_per_cluster,
            clusters_per_region,
            out.as_deref(),
        ),
        Command::ExportCsv { data, unit, out } => {
            let dataset = load_dataset(&data).map_err(CliError::data(format!("load {data}")))?;
            let unit_data: &UnitData = dataset.units.get(unit).ok_or_else(|| {
                CliError::Usage(format!("unit {unit} of {}", dataset.units.len()))
            })?;
            export_unit_csv(unit_data, &out).map_err(CliError::data(format!("write {out}")))?;
            println!(
                "wrote {out}: {} ticks x {} databases x {} KPIs",
                unit_data.num_ticks(),
                unit_data.num_databases(),
                unit_data.num_kpis()
            );
            Ok(())
        }
    }
}

/// `simulate --correlated`: builds a fleet dataset sharing one scheduled
/// correlated failure and reports the planned ground truth so smoke
/// scripts can check the hierarchy layer's blame against it.
fn simulate_correlated(
    kind: CorrelatedKind,
    units: usize,
    group: usize,
    ticks: usize,
    seed: u64,
    out: &str,
) -> Result<(), CliError> {
    if units < 2 {
        return Err(CliError::Usage(format!(
            "--correlated needs at least 2 units, got {units}"
        )));
    }
    // Default blast radius: every unit but one, keeping a clean
    // bystander, and never fewer than the correlator's minimum group.
    let group = if group == 0 {
        units.saturating_sub(1).max(2)
    } else {
        group
    }
    .min(units);
    if group < 2 {
        return Err(CliError::Usage(format!(
            "--group must cover at least 2 units, got {group}"
        )));
    }
    let members: Vec<usize> = (0..group).collect();
    let scenario =
        dbcatcher_workload::FleetScenario::correlated(seed, kind, units, &members, ticks);
    let dataset = scenario.generate();
    let stats = dataset.stats();
    save_dataset(&dataset, out).map_err(CliError::data(format!("write {out}")))?;
    println!(
        "wrote {out}: {} units x {} databases, {} points, {:.2}% anomalous \
         ({} over units 0..{group}, epicenter {}, onset tick {})",
        stats.units,
        dataset.units.first().map_or(0, UnitData::num_databases),
        stats.total_points,
        stats.abnormal_ratio * 100.0,
        scenario.correlated.kind.name(),
        scenario.correlated.epicenter,
        scenario.correlated.onset,
    );
    Ok(())
}

/// `analyze-fleet`: replays a unit-verdict JSONL (a daemon's
/// `hierarchy.wal`, or any stream in the same format) through the
/// hierarchy engine offline, skipping malformed lines exactly as the
/// online feed does, and renders the scope stream — byte-identical to
/// what a `--hierarchy` daemon writes to `--scope-out`.
fn analyze_fleet(
    verdicts: &str,
    units: usize,
    units_per_cluster: usize,
    clusters_per_region: usize,
    out: Option<&str>,
) -> Result<(), CliError> {
    let text =
        std::fs::read_to_string(verdicts).map_err(CliError::io(format!("read {verdicts}")))?;
    let mut skipped = 0usize;
    let records: Vec<UnitVerdict> = text
        .lines()
        .filter(|line| !line.trim().is_empty())
        .filter_map(|line| match parse_unit_line(line) {
            Ok(record) => Some(record),
            Err(_) => {
                skipped += 1;
                None
            }
        })
        .collect();
    let roster = if units > 0 {
        units
    } else {
        records.iter().map(|r| r.unit + 1).max().unwrap_or(1)
    };
    let topology = Topology::new(roster, units_per_cluster, clusters_per_region)
        .map_err(|e| CliError::Usage(format!("bad topology: {e}")))?;
    let consumed = records.len();
    let scope = replay(HierarchyConfig::new(topology), records);
    let mut sink: Box<dyn Write> = match out {
        Some(path) => {
            Box::new(std::fs::File::create(path).map_err(CliError::io(format!("create {path}")))?)
        }
        None => Box::new(std::io::stdout()),
    };
    for verdict in &scope {
        writeln!(sink, "{}", render_scope_line(verdict))
            .map_err(CliError::io("write scope stream"))?;
    }
    let alarms = scope
        .iter()
        .filter(|v| v.state == ScopeState::Alarm)
        .count();
    if skipped > 0 {
        eprintln!("{skipped} malformed line(s) skipped");
    }
    eprintln!(
        "{consumed} unit verdict(s) over {roster} unit(s): {} scope transition(s), {alarms} alarm(s)",
        scope.len()
    );
    Ok(())
}

/// Test hook for the CI recovery smoke: arms a deterministic shard
/// failure from the environment — `DBCATCHER_CHAOS_SHARD_PANIC=N`
/// panics (and `DBCATCHER_CHAOS_SHARD_WEDGE=N` wedges) the worker
/// processing the `N`-th tick job, which the supervisor must contain.
/// Unset in production; panic wins when both are set.
fn chaos_from_env() -> Option<std::sync::Arc<dbcatcher_serve::ShardChaos>> {
    let armed = |name: &str| {
        std::env::var(name)
            .ok()
            .and_then(|raw| raw.parse::<u64>().ok())
            .filter(|&n| n > 0)
    };
    if let Some(n) = armed("DBCATCHER_CHAOS_SHARD_PANIC") {
        eprintln!("dbcatcher serve: chaos hook armed — shard panic on tick job {n}");
        return Some(dbcatcher_serve::ShardChaos::panic_after(n));
    }
    if let Some(n) = armed("DBCATCHER_CHAOS_SHARD_WEDGE") {
        eprintln!("dbcatcher serve: chaos hook armed — shard wedge on tick job {n}");
        return Some(dbcatcher_serve::ShardChaos::wedge_after(n));
    }
    None
}

/// `simulate --chaos`: one seed, one deterministic whole-system run.
/// Failures print the invariant violations plus a minimized schedule to
/// stderr and surface as a [`CliError::Detect`] (nonzero exit).
#[allow(clippy::too_many_arguments, clippy::fn_params_excessive_bools)]
fn run_chaos(
    seed: Option<u64>,
    units: usize,
    ticks: usize,
    boots: usize,
    no_crash: bool,
    out: Option<String>,
    verdicts: Option<String>,
    no_shrink: bool,
) -> Result<(), CliError> {
    let seed = match seed.or_else(|| std::env::var("SEED").ok().and_then(|raw| raw.parse().ok())) {
        Some(seed) => seed,
        None => {
            return Err(CliError::Usage(
                "simulate --chaos needs a seed: pass --seed N or set SEED=N".into(),
            ))
        }
    };
    let opts = SimOpts {
        max_units: units.max(1),
        max_ticks: ticks,
        max_boots: boots.max(1),
        allow_crash: !no_crash,
    };
    eprintln!("chaos: running seed {seed} (units <= {units}, ticks <= {ticks}, boots <= {boots})");
    let outcome = simulator::run_seed(seed, &opts);

    match &out {
        Some(path) => std::fs::write(path, outcome.event_log())
            .map_err(CliError::io(format!("write {path}")))?,
        None => print!("{}", outcome.event_log()),
    }
    if let Some(path) = &verdicts {
        std::fs::write(path, outcome.verdict_log())
            .map_err(CliError::io(format!("write {path}")))?;
    }

    if outcome.passed() {
        eprintln!(
            "chaos: seed {seed} passed ({} canonical verdict(s))",
            outcome.verdicts.len()
        );
        return Ok(());
    }

    eprintln!("chaos: seed {seed} FAILED:");
    for failure in &outcome.failures {
        eprintln!("  - {failure}");
    }
    if no_shrink {
        eprintln!("chaos: failing plan (shrink skipped):");
        eprintln!("{}", outcome.plan.to_json());
    } else {
        eprintln!("chaos: minimizing the failing schedule...");
        let report = simulator::shrink(&outcome.plan, 24);
        for edit in &report.applied {
            eprintln!("  kept failing after: {edit}");
        }
        eprintln!(
            "chaos: minimized plan after {} re-run(s) (replay it with `simulate --chaos --seed {seed}`):",
            report.runs
        );
        eprintln!("{}", report.plan.to_json());
    }
    Err(CliError::Detect(format!(
        "chaos seed {seed} violated {} invariant check(s)",
        outcome.failures.len()
    )))
}

/// Writes one abnormal verdict in the CLI's JSONL format (shared by
/// `detect` and `emit` so loopback output diffs clean against offline).
fn write_verdict_record(
    sink: &mut dyn Write,
    unit: usize,
    v: &dbcatcher_core::pipeline::Verdict,
) -> Result<(), CliError> {
    let record = serde_json::json!({
        "unit": unit,
        "db": v.db,
        "start_tick": v.start_tick,
        "end_tick": v.end_tick,
        "window_size": v.window_size,
        "expansions": v.expansions,
    });
    writeln!(sink, "{record}").map_err(CliError::io("write verdicts"))
}

/// Converts a dataset into per-unit wire streams, pre-applying collector
/// faults exactly as the offline path does (same seeds, same order), so a
/// loopback run sees bit-identical telemetry.
fn dataset_streams(dataset: &Dataset, faults: FaultPreset, fault_seed: u64) -> Vec<UnitStream> {
    dataset
        .units
        .iter()
        .enumerate()
        .map(|(unit_idx, unit)| {
            let mut injector = unit_injector(faults, fault_seed, unit_idx, unit);
            let frames = (0..unit.num_ticks())
                .map(|t| {
                    let mut frame = unit.tick_matrix(t);
                    if let Some(inj) = injector.as_mut() {
                        inj.apply(t as u64, &mut frame);
                    }
                    frame
                })
                .collect();
            UnitStream {
                unit: unit_idx,
                dbs: unit.num_databases(),
                kpis: unit.num_kpis(),
                participation: Some(unit.participation.clone()),
                frames,
            }
        })
        .collect()
}

/// Builds the per-unit fault injector for `--faults`, seeded so every
/// unit corrupts differently but reproducibly.
fn unit_injector(
    faults: FaultPreset,
    fault_seed: u64,
    unit_idx: usize,
    unit: &UnitData,
) -> Option<FaultInjector> {
    if faults == FaultPreset::None {
        return None;
    }
    Some(FaultInjector::with_preset(
        faults,
        unit.num_databases(),
        unit.num_ticks() as u64,
        fault_seed.wrapping_add(unit_idx as u64),
    ))
}

/// Prints the unit's telemetry-health ledger to stderr when anything
/// noteworthy happened (faults requested, or bad samples in the data).
fn report_health(unit_idx: usize, catcher: &DbCatcher, faults: FaultPreset) {
    let health = catcher.health();
    if faults != FaultPreset::None || health.total_repaired() > 0 || health.total_stale() > 0 {
        eprintln!(
            "unit {unit_idx} telemetry health: {}",
            health.summary_line()
        );
    }
}

/// Optionally learns thresholds on the leading fraction and returns the
/// configuration plus the split to detect on.
fn prepare(
    dataset: &Dataset,
    learn: bool,
    train_frac: f64,
) -> Result<(DbCatcherConfig, Dataset), CliError> {
    if !(0.0..1.0).contains(&train_frac) {
        return Err(CliError::Usage(format!(
            "train-frac {train_frac} must lie in [0, 1)"
        )));
    }
    if learn {
        let (train, test) = dataset.split(train_frac);
        let cfg = ProtocolConfig::default();
        let (config, train_f1) = train_dbcatcher(&train, &cfg);
        eprintln!(
            "thresholds learned on {:.0}% of the data (train F-Measure {train_f1:.2})",
            train_frac * 100.0
        );
        Ok((config, test))
    } else {
        Ok((DbCatcherConfig::default(), dataset.clone()))
    }
}
