//! The rule engine: applies scoped rules to lexed files, honouring
//! `#[cfg(test)]` spans and inline waivers.
//!
//! ## Test-code exemption
//!
//! Rules other than `no-unsafe` skip code under a test attribute
//! (`#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[test]`). Spans are found
//! by token scanning: after a test attribute, the following item —
//! through its matching `}` or terminating `;` — is exempt. `cfg(not(test))`
//! is *not* exempt (that is production-only code).
//!
//! ## Waivers
//!
//! A violation is waivable only by an inline comment:
//!
//! ```text
//! // dbclint: allow(rule-name) — justification text
//! ```
//!
//! A trailing comment waives its own line; a standalone comment waives
//! the next code line. The justification is mandatory, unknown rule
//! names are errors, and *unused* waivers are deny-level violations so
//! stale waivers cannot accumulate. Every used waiver is inventoried in
//! the JSON report, making waiver creep visible in diffs.

use crate::config::{Config, RuleConfig};
use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{matches_at, matches_index, RuleKind, Severity};

/// One source file to analyze: workspace-relative path plus content.
pub struct SourceFile {
    pub path: String,
    pub content: String,
}

/// A rule hit that was not waived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name, or a meta-rule (`waiver-syntax`, `waiver-unused`,
    /// `lex-error`).
    pub rule: String,
    pub severity: Severity,
    pub file: String,
    pub line: u32,
    /// The pattern label that fired (`unwrap()`, `Vec::new`, ...).
    pub pattern: String,
    /// The trimmed source line.
    pub snippet: String,
}

/// A used waiver, inventoried for the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverRecord {
    pub rule: String,
    pub file: String,
    /// The waived code line.
    pub line: u32,
    pub justification: String,
}

/// Full analysis outcome.
#[derive(Debug, Default)]
pub struct Analysis {
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
    pub waivers: Vec<WaiverRecord>,
}

impl Analysis {
    pub fn deny_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Deny)
            .count()
    }

    pub fn warn_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Warn)
            .count()
    }
}

/// A parsed inline waiver before use-resolution.
struct PendingWaiver {
    rule: Option<RuleKind>,
    raw_rule: String,
    /// Code line this waiver targets.
    target_line: u32,
    /// Line of the comment itself (for diagnostics).
    comment_line: u32,
    justification: String,
    used: bool,
}

fn line_snippet(src: &str, line: u32) -> String {
    src.lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .trim()
        .to_string()
}

fn is_comment(t: &Token) -> bool {
    matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
}

/// Byte ranges of test-exempt code (attribute through end of item).
fn test_spans(src: &str, toks: &[Token]) -> Vec<(usize, usize)> {
    let sig: Vec<&Token> = toks.iter().filter(|t| !is_comment(t)).collect();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < sig.len() {
        // Attribute opener: `#[` or `#![`.
        if sig[i].kind != TokenKind::Punct(b'#') {
            i += 1;
            continue;
        }
        let attr_start_tok = i;
        let mut j = i + 1;
        if j < sig.len() && sig[j].kind == TokenKind::Punct(b'!') {
            j += 1;
        }
        if j >= sig.len() || sig[j].kind != TokenKind::Punct(b'[') {
            i += 1;
            continue;
        }
        // Scan the attribute body to its matching `]`, noting idents.
        let mut depth = 0i32;
        let mut has_test = false;
        let mut has_not = false;
        let mut k = j;
        while k < sig.len() {
            match sig[k].kind {
                TokenKind::Punct(b'[') => depth += 1,
                TokenKind::Punct(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident => {
                    let text = sig[k].text(src);
                    if text == "test" {
                        has_test = true;
                    } else if text == "not" {
                        has_not = true;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if k >= sig.len() {
            break; // malformed attribute at EOF
        }
        if !has_test || has_not {
            i = k + 1;
            continue;
        }
        // Test attribute. Skip any further attributes, then consume the
        // item: through its matching `}` or a `;` at depth 0.
        let mut m = k + 1;
        while m + 1 < sig.len() && sig[m].kind == TokenKind::Punct(b'#') {
            let mut n = m + 1;
            if sig[n].kind == TokenKind::Punct(b'!') {
                n += 1;
            }
            if n >= sig.len() || sig[n].kind != TokenKind::Punct(b'[') {
                break;
            }
            let mut d = 0i32;
            while n < sig.len() {
                match sig[n].kind {
                    TokenKind::Punct(b'[') => d += 1,
                    TokenKind::Punct(b']') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                n += 1;
            }
            m = n + 1;
        }
        let mut brace = 0i32;
        let mut end_tok = None;
        let mut p = m;
        while p < sig.len() {
            match sig[p].kind {
                TokenKind::Punct(b'{') => brace += 1,
                TokenKind::Punct(b'}') => {
                    brace -= 1;
                    if brace == 0 {
                        end_tok = Some(p);
                        break;
                    }
                }
                TokenKind::Punct(b';') if brace == 0 => {
                    end_tok = Some(p);
                    break;
                }
                _ => {}
            }
            p += 1;
        }
        let end = end_tok.map_or(src.len(), |p| sig[p].end);
        spans.push((sig[attr_start_tok].start, end));
        i = end_tok.map_or(sig.len(), |p| p + 1);
    }
    spans
}

/// Parse waiver annotations out of comment tokens.
fn parse_waivers(
    src: &str,
    toks: &[Token],
    file: &str,
    violations: &mut Vec<Violation>,
) -> Vec<PendingWaiver> {
    let mut out = Vec::new();
    for (idx, tok) in toks.iter().enumerate() {
        if !is_comment(tok) {
            continue;
        }
        let text = tok.text(src);
        // Doc comments (`///`, `//!`, `/**`, `/*!`) never carry waivers —
        // they may legitimately *describe* the waiver syntax.
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = text.find("dbclint:") else {
            continue;
        };
        let rest = text[at + "dbclint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            violations.push(Violation {
                rule: "waiver-syntax".into(),
                severity: Severity::Deny,
                file: file.into(),
                line: tok.line,
                pattern: "dbclint:".into(),
                snippet: line_snippet(src, tok.line),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            violations.push(Violation {
                rule: "waiver-syntax".into(),
                severity: Severity::Deny,
                file: file.into(),
                line: tok.line,
                pattern: "allow(".into(),
                snippet: line_snippet(src, tok.line),
            });
            continue;
        };
        let raw_rule = rest[..close].trim().to_string();
        let justification: String = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':', ' '])
            .trim()
            .trim_end_matches("*/")
            .trim()
            .to_string();
        // Trailing comment (code earlier on the same line) waives its own
        // line; a standalone comment waives the next code line.
        let has_code_before = toks[..idx]
            .iter()
            .rev()
            .take_while(|t| t.line == tok.line)
            .any(|t| !is_comment(t));
        let target_line = if has_code_before {
            tok.line
        } else {
            toks[idx + 1..]
                .iter()
                .find(|t| !is_comment(t))
                .map_or(tok.line, |t| t.line)
        };
        out.push(PendingWaiver {
            rule: RuleKind::from_name(&raw_rule),
            raw_rule,
            target_line,
            comment_line: tok.line,
            justification,
            used: false,
        });
    }
    out
}

/// Analyze one file against the rules that scope to it.
fn analyze_file(cfg: &Config, file: &SourceFile, out: &mut Analysis) {
    let src = &file.content;
    let toks = match lex(src) {
        Ok(t) => t,
        Err(e) => {
            out.violations.push(Violation {
                rule: "lex-error".into(),
                severity: Severity::Deny,
                file: file.path.clone(),
                line: e.line,
                pattern: "lex".into(),
                snippet: e.message,
            });
            return;
        }
    };
    let rules: Vec<&RuleConfig> = cfg
        .rules_for(&file.path)
        .into_iter()
        .filter(|r| r.severity != Severity::Off)
        .collect();

    let mut waivers = parse_waivers(src, &toks, &file.path, &mut out.violations);
    for w in &waivers {
        if w.rule.is_none() {
            out.violations.push(Violation {
                rule: "waiver-syntax".into(),
                severity: Severity::Deny,
                file: file.path.clone(),
                line: w.comment_line,
                pattern: format!("allow({})", w.raw_rule),
                snippet: format!("unknown rule `{}` in waiver", w.raw_rule),
            });
        } else if w.justification.is_empty() {
            out.violations.push(Violation {
                rule: "waiver-syntax".into(),
                severity: Severity::Deny,
                file: file.path.clone(),
                line: w.comment_line,
                pattern: format!("allow({})", w.raw_rule),
                snippet: "waiver without justification".into(),
            });
        }
    }

    if !rules.is_empty() {
        let spans = test_spans(src, &toks);
        let in_test = |offset: usize| spans.iter().any(|&(s, e)| offset >= s && offset < e);
        let sig: Vec<&Token> = toks.iter().filter(|t| !is_comment(t)).collect();

        for rule in &rules {
            let mut hits: Vec<(u32, &'static str, usize)> = Vec::new();
            if rule.kind == RuleKind::SliceIndex {
                for i in 0..sig.len() {
                    let prev = i.checked_sub(1).map(|p| sig[p]);
                    if matches_index(src, prev, sig[i]) {
                        hits.push((sig[i].line, "indexing[]", sig[i].start));
                    }
                }
            } else {
                for i in 0..sig.len() {
                    for pat in rule.kind.patterns() {
                        if matches_at(src, &sig, i, pat) {
                            hits.push((sig[i].line, pat.label, sig[i].start));
                            break;
                        }
                    }
                }
            }
            for (line, label, offset) in hits {
                if rule.kind.exempts_test_code() && in_test(offset) {
                    continue;
                }
                let rule_name = rule.kind.name();
                if let Some(w) = waivers
                    .iter_mut()
                    .find(|w| w.rule == Some(rule.kind) && w.target_line == line)
                {
                    w.used = true;
                    // Each (rule, line) waiver is reported once even if the
                    // line has several matches of the same rule.
                    if !out
                        .waivers
                        .iter()
                        .any(|r| r.rule == rule_name && r.file == file.path && r.line == line)
                    {
                        out.waivers.push(WaiverRecord {
                            rule: rule_name.into(),
                            file: file.path.clone(),
                            line,
                            justification: w.justification.clone(),
                        });
                    }
                    continue;
                }
                out.violations.push(Violation {
                    rule: rule_name.into(),
                    severity: rule.severity,
                    file: file.path.clone(),
                    line,
                    pattern: label.into(),
                    snippet: line_snippet(src, line),
                });
            }
        }
    }

    // Stale waivers are themselves deny violations: a waiver must always
    // sit on a line that needs it.
    for w in waivers.iter().filter(|w| w.rule.is_some() && !w.used) {
        // Only flag staleness when the rule actually scopes to this file;
        // a waiver for an out-of-scope rule is a config/comment mismatch.
        out.violations.push(Violation {
            rule: "waiver-unused".into(),
            severity: Severity::Deny,
            file: file.path.clone(),
            line: w.comment_line,
            pattern: format!("allow({})", w.raw_rule),
            snippet: "waiver does not match any violation on its target line".into(),
        });
    }
}

/// Analyze a set of files under a config. Output ordering is
/// deterministic: violations and waivers sorted by (file, line, rule).
pub fn analyze(cfg: &Config, files: &[SourceFile]) -> Analysis {
    let mut out = Analysis::default();
    for f in files {
        if cfg.walk_excluded(&f.path) {
            continue;
        }
        out.files_scanned += 1;
        analyze_file(cfg, f, &mut out);
    }
    out.violations
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    out.waivers
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::parse_config;

    fn cfg() -> Config {
        parse_config(
            r#"
[files]
roots = ["crates"]
exclude = []

[rules.hot-path-alloc]
severity = "deny"
include = ["crates/core/src/kcd.rs"]

[rules.panic-free]
severity = "deny"
include = ["crates/core/src"]

[rules.slice-index]
severity = "warn"
include = ["crates/core/src"]

[rules.determinism]
severity = "deny"
include = ["crates/core/src"]

[rules.no-unsafe]
severity = "deny"
include = ["crates"]
"#,
        )
        .unwrap()
    }

    fn run(path: &str, src: &str) -> Analysis {
        analyze(
            &cfg(),
            &[SourceFile {
                path: path.into(),
                content: src.into(),
            }],
        )
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let a = run(
            "crates/core/src/kcd.rs",
            r#"
fn prod() -> f64 { 1.0 }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = Vec::new();
        v.push(1.0);
        let x = Some(3).unwrap();
    }
}
"#,
        );
        assert_eq!(a.violations, vec![]);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let a = run(
            "crates/core/src/kcd.rs",
            "#[cfg(not(test))]\nfn prod() { let v = Vec::new(); }\n",
        );
        assert_eq!(a.deny_count(), 1);
        assert_eq!(a.violations[0].rule, "hot-path-alloc");
    }

    #[test]
    fn test_fn_attr_is_exempt() {
        let a = run(
            "crates/core/src/kcd.rs",
            "#[test]\nfn t() { let v = Vec::new(); }\nfn prod() { let w = Vec::new(); }\n",
        );
        assert_eq!(a.deny_count(), 1);
        assert_eq!(a.violations[0].line, 3);
    }

    #[test]
    fn trailing_waiver() {
        let a = run(
            "crates/core/src/pipeline.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // dbclint: allow(panic-free) — checked by caller\n",
        );
        assert_eq!(a.deny_count(), 0, "{:?}", a.violations);
        assert_eq!(a.waivers.len(), 1);
        assert_eq!(a.waivers[0].justification, "checked by caller");
    }

    #[test]
    fn standalone_waiver_covers_next_line() {
        let a = run(
            "crates/core/src/pipeline.rs",
            "// dbclint: allow(panic-free) — invariant: map key exists\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        );
        assert_eq!(a.deny_count(), 0, "{:?}", a.violations);
        assert_eq!(a.waivers.len(), 1);
    }

    #[test]
    fn waiver_without_justification_is_deny() {
        let a = run(
            "crates/core/src/pipeline.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // dbclint: allow(panic-free)\n",
        );
        assert!(a
            .violations
            .iter()
            .any(|v| v.rule == "waiver-syntax" && v.severity == Severity::Deny));
    }

    #[test]
    fn unknown_rule_waiver_is_deny() {
        let a = run(
            "crates/core/src/pipeline.rs",
            "fn f() {} // dbclint: allow(no-such-rule) — whatever\n",
        );
        assert!(a.violations.iter().any(|v| v.rule == "waiver-syntax"));
    }

    #[test]
    fn unused_waiver_is_deny() {
        let a = run(
            "crates/core/src/pipeline.rs",
            "// dbclint: allow(panic-free) — stale\nfn f() {}\n",
        );
        assert!(a.violations.iter().any(|v| v.rule == "waiver-unused"));
    }

    #[test]
    fn unsafe_denied_even_in_tests() {
        let a = run(
            "crates/core/src/kcd.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { std::hint::unreachable_unchecked() } }\n}\n",
        );
        assert!(a.violations.iter().any(|v| v.rule == "no-unsafe"));
    }

    #[test]
    fn out_of_scope_file_untouched() {
        let a = run(
            "crates/eval/src/lib.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        );
        // Only no-unsafe scopes to crates/eval, and there is no unsafe.
        assert_eq!(a.violations, vec![]);
    }

    #[test]
    fn warn_severity_counted_separately() {
        let a = run(
            "crates/core/src/pipeline.rs",
            "fn f(xs: &[f64]) -> f64 { xs[0] }\n",
        );
        assert_eq!(a.deny_count(), 0);
        assert_eq!(a.warn_count(), 1);
        assert_eq!(a.violations[0].rule, "slice-index");
    }

    #[test]
    fn raw_string_and_comment_mentions_ignored() {
        let a = run(
            "crates/core/src/pipeline.rs",
            r###"
// calls unwrap() in a comment
fn f() -> &'static str {
    /* panic! in /* nested */ comment */
    r#"string with .unwrap() and panic!"#
}
"###,
        );
        assert_eq!(a.violations, vec![]);
    }

    #[test]
    fn determinism_rule_fires() {
        let a = run(
            "crates/core/src/fleet2.rs",
            "fn f() { let _t = std::time::Instant::now(); }\n",
        );
        assert!(a.violations.iter().any(|v| v.rule == "determinism"));
    }
}
