//! Data-processing module (paper §III-A, Fig. 6).
//!
//! "The data processing module maintains multiple queues for each KPI, the
//! number of which is equal to the number of databases in the unit." —
//! [`KpiQueues`] is exactly that: a bounded ring buffer per `(db, kpi)`
//! pair, addressed by absolute tick so the flexible windows can reach back
//! into history after expansions.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Bounded per-(database, KPI) history of collected samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KpiQueues {
    num_dbs: usize,
    num_kpis: usize,
    capacity: usize,
    /// `buffers[db][kpi]`.
    buffers: Vec<Vec<VecDeque<f64>>>,
    /// Absolute tick of the oldest retained sample.
    base_tick: u64,
    /// Total samples ingested (== next absolute tick).
    len: u64,
}

impl KpiQueues {
    /// Creates queues retaining the last `capacity` ticks.
    ///
    /// # Panics
    /// Panics when any dimension is zero.
    pub fn new(num_dbs: usize, num_kpis: usize, capacity: usize) -> Self {
        assert!(num_dbs > 0 && num_kpis > 0 && capacity > 0, "dimensions must be positive");
        Self {
            num_dbs,
            num_kpis,
            capacity,
            buffers: vec![vec![VecDeque::with_capacity(capacity + 1); num_kpis]; num_dbs],
            base_tick: 0,
            len: 0,
        }
    }

    /// Number of databases.
    pub fn num_dbs(&self) -> usize {
        self.num_dbs
    }

    /// Number of KPIs.
    pub fn num_kpis(&self) -> usize {
        self.num_kpis
    }

    /// Retention capacity in ticks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Next absolute tick to be ingested.
    pub fn next_tick(&self) -> u64 {
        self.len
    }

    /// Oldest retained absolute tick.
    pub fn base_tick(&self) -> u64 {
        self.base_tick
    }

    /// Ingests one frame: `frame[db][kpi]`.
    ///
    /// # Panics
    /// Panics when the frame shape mismatches the queue dimensions.
    pub fn push(&mut self, frame: &[Vec<f64>]) {
        assert_eq!(frame.len(), self.num_dbs, "frame database arity mismatch");
        for (db, kpis) in frame.iter().enumerate() {
            assert_eq!(kpis.len(), self.num_kpis, "frame KPI arity mismatch");
            for (k, &v) in kpis.iter().enumerate() {
                let buf = &mut self.buffers[db][k];
                buf.push_back(v);
                if buf.len() > self.capacity {
                    buf.pop_front();
                }
            }
        }
        self.len += 1;
        if self.len - self.base_tick > self.capacity as u64 {
            self.base_tick = self.len - self.capacity as u64;
        }
    }

    /// Copies the window `[start, start + len)` of `(db, kpi)` into a
    /// `Vec`. Returns `None` when any part of the window has been evicted
    /// or has not arrived yet.
    pub fn window(&self, db: usize, kpi: usize, start: u64, len: usize) -> Option<Vec<f64>> {
        if start < self.base_tick || start + len as u64 > self.len {
            return None;
        }
        let offset = (start - self.base_tick) as usize;
        let buf = &self.buffers[db][kpi];
        Some(buf.iter().skip(offset).take(len).copied().collect())
    }

    /// Maximum value of `(db, kpi)` over a window, for unused-database
    /// detection. `None` under the same conditions as [`Self::window`].
    pub fn window_max_abs(&self, db: usize, kpi: usize, start: u64, len: usize) -> Option<f64> {
        if start < self.base_tick || start + len as u64 > self.len {
            return None;
        }
        let offset = (start - self.base_tick) as usize;
        Some(
            self.buffers[db][kpi]
                .iter()
                .skip(offset)
                .take(len)
                .fold(0.0f64, |acc, &v| acc.max(v.abs())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n_db: usize, n_kpi: usize, v: f64) -> Vec<Vec<f64>> {
        (0..n_db)
            .map(|db| (0..n_kpi).map(|k| v + (db * 10 + k) as f64).collect())
            .collect()
    }

    #[test]
    fn push_and_window() {
        let mut q = KpiQueues::new(2, 3, 10);
        for t in 0..5 {
            q.push(&frame(2, 3, t as f64 * 100.0));
        }
        assert_eq!(q.next_tick(), 5);
        let w = q.window(1, 2, 1, 3).unwrap();
        assert_eq!(w, vec![112.0, 212.0, 312.0]);
    }

    #[test]
    fn window_unavailable_before_arrival() {
        let mut q = KpiQueues::new(1, 1, 10);
        q.push(&frame(1, 1, 0.0));
        assert!(q.window(0, 0, 0, 2).is_none());
        assert!(q.window(0, 0, 0, 1).is_some());
    }

    #[test]
    fn eviction_moves_base_tick() {
        let mut q = KpiQueues::new(1, 1, 4);
        for t in 0..10 {
            q.push(&frame(1, 1, t as f64));
        }
        assert_eq!(q.base_tick(), 6);
        assert!(q.window(0, 0, 5, 2).is_none(), "evicted window must be None");
        let w = q.window(0, 0, 6, 4).unwrap();
        assert_eq!(w, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn window_max_abs_tracks_magnitude() {
        let mut q = KpiQueues::new(1, 1, 10);
        q.push(&[vec![-5.0]]);
        q.push(&[vec![2.0]]);
        q.push(&[vec![0.0]]);
        assert_eq!(q.window_max_abs(0, 0, 0, 3), Some(5.0));
        assert_eq!(q.window_max_abs(0, 0, 1, 2), Some(2.0));
        assert_eq!(q.window_max_abs(0, 0, 0, 4), None);
    }

    #[test]
    #[should_panic(expected = "frame database arity")]
    fn wrong_frame_shape_panics() {
        let mut q = KpiQueues::new(2, 2, 4);
        q.push(&frame(1, 2, 0.0));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_capacity_panics() {
        let _ = KpiQueues::new(1, 1, 0);
    }

    #[test]
    fn capacity_one_keeps_latest() {
        let mut q = KpiQueues::new(1, 1, 1);
        q.push(&[vec![1.0]]);
        q.push(&[vec![2.0]]);
        assert_eq!(q.window(0, 0, 1, 1), Some(vec![2.0]));
        assert!(q.window(0, 0, 0, 1).is_none());
    }

    #[test]
    fn base_tick_stays_zero_until_exactly_capacity() {
        // The boundary: `capacity` pushes retain everything; push
        // `capacity + 1` evicts exactly one tick.
        let cap = 4usize;
        let mut q = KpiQueues::new(1, 1, cap);
        for t in 0..cap {
            q.push(&frame(1, 1, t as f64));
            assert_eq!(q.base_tick(), 0, "no eviction through tick {t}");
        }
        assert_eq!(q.window(0, 0, 0, cap).unwrap(), vec![0.0, 1.0, 2.0, 3.0]);
        q.push(&frame(1, 1, cap as f64));
        assert_eq!(q.base_tick(), 1, "one tick past capacity evicts one");
        assert!(q.window(0, 0, 0, 1).is_none(), "tick 0 evicted");
        assert_eq!(q.window(0, 0, 1, cap).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn base_tick_advances_one_per_push_once_saturated() {
        let cap = 3usize;
        let mut q = KpiQueues::new(2, 2, cap);
        for t in 0..20u64 {
            q.push(&frame(2, 2, t as f64));
            let expected_base = (t + 1).saturating_sub(cap as u64);
            assert_eq!(q.base_tick(), expected_base, "after push {t}");
            assert_eq!(q.next_tick(), t + 1);
            // the retained span is always addressable...
            assert!(q.window(1, 1, expected_base, q.next_tick() as usize
                - expected_base as usize).is_some());
            // ...and one tick before it never is
            if expected_base > 0 {
                assert!(q.window(1, 1, expected_base - 1, 1).is_none());
            }
        }
    }

    #[test]
    fn absolute_addressing_survives_long_uptime() {
        // Online shards address windows by absolute tick after arbitrary
        // uptime; the mapping through base_tick must stay exact.
        let cap = 8usize;
        let mut q = KpiQueues::new(1, 1, cap);
        let total = 10_000u64;
        for t in 0..total {
            q.push(&[vec![t as f64]]);
        }
        assert_eq!(q.next_tick(), total);
        assert_eq!(q.base_tick(), total - cap as u64);
        // full retained window, exact values
        let w = q.window(0, 0, total - cap as u64, cap).unwrap();
        let expect: Vec<f64> = (total - cap as u64..total).map(|t| t as f64).collect();
        assert_eq!(w, expect);
        // suffix window straddling nothing evicted
        assert_eq!(q.window(0, 0, total - 2, 2).unwrap(), vec![
            (total - 2) as f64,
            (total - 1) as f64
        ]);
        // requests past the head are refused, even by one tick
        assert!(q.window(0, 0, total - 1, 2).is_none());
        assert!(q.window_max_abs(0, 0, total - 1, 2).is_none());
        assert_eq!(
            q.window_max_abs(0, 0, total - cap as u64, cap),
            Some((total - 1) as f64)
        );
    }

    #[test]
    fn window_len_zero_at_boundaries() {
        let mut q = KpiQueues::new(1, 1, 2);
        for t in 0..5 {
            q.push(&frame(1, 1, t as f64));
        }
        // empty windows are valid wherever their start is retained
        assert_eq!(q.window(0, 0, q.base_tick(), 0), Some(vec![]));
        assert_eq!(q.window(0, 0, q.next_tick(), 0), Some(vec![]));
        assert!(q.window(0, 0, q.base_tick() - 1, 0).is_none());
    }

    #[test]
    fn serde_round_trip_preserves_base_tick() {
        // Warm restart depends on absolute addressing surviving
        // snapshot/restore byte-for-byte.
        let mut q = KpiQueues::new(2, 1, 3);
        for t in 0..7 {
            q.push(&frame(2, 1, t as f64));
        }
        let json = serde_json::to_string(&q).expect("serialize");
        let back: KpiQueues = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.base_tick(), q.base_tick());
        assert_eq!(back.next_tick(), q.next_tick());
        assert_eq!(back.capacity(), q.capacity());
        assert_eq!(
            back.window(1, 0, q.base_tick(), 3),
            q.window(1, 0, q.base_tick(), 3)
        );
    }
}
