//! Command implementations.

use crate::args::{Command, USAGE};
use dbcatcher_core::config::DbCatcherConfig;
use dbcatcher_core::pipeline::DbCatcher;
use dbcatcher_eval::metrics::{adjusted_confusion, windowed_any};
use dbcatcher_eval::methods::train_dbcatcher;
use dbcatcher_eval::protocol::ProtocolConfig;
use dbcatcher_sim::faults::{FaultInjector, FaultPreset};
use dbcatcher_workload::anomaly::AnomalyPlanConfig;
use dbcatcher_workload::dataset::{Dataset, DatasetSpec, UnitData};
use dbcatcher_workload::io::{export_unit_csv, load_dataset, save_dataset};
use dbcatcher_workload::profile::RareEventConfig;
use std::io::Write;

/// Executes a parsed command.
///
/// # Errors
/// A human-readable message on any failure.
pub fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Simulate {
            kind,
            subset,
            units,
            ticks,
            seed,
            anomaly_ratio,
            out,
        } => {
            let spec = DatasetSpec {
                name: format!("{} ({subset:?})", kind.name()),
                kind,
                subset,
                num_units: units,
                ticks,
                databases_per_unit: 5,
                anomalies: AnomalyPlanConfig {
                    target_ratio: anomaly_ratio,
                    ..AnomalyPlanConfig::default()
                },
                rare_events: RareEventConfig::default(),
                seed,
            };
            let dataset = spec.build();
            let stats = dataset.stats();
            save_dataset(&dataset, &out).map_err(|e| e.to_string())?;
            println!(
                "wrote {out}: {} units x 5 databases x {} KPIs, {} points, {:.2}% anomalous",
                stats.units,
                stats.dimensions,
                stats.total_points,
                stats.abnormal_ratio * 100.0
            );
            Ok(())
        }
        Command::Detect {
            data,
            learn,
            train_frac,
            out,
            backend,
            faults,
            fault_seed,
            gap_policy,
        } => {
            let dataset = load_dataset(&data).map_err(|e| e.to_string())?;
            let (mut config, test) = prepare(&dataset, learn, train_frac)?;
            config.backend = backend;
            config.ingest.gap_policy = gap_policy;
            let mut sink: Box<dyn Write> = match out {
                Some(path) => {
                    Box::new(std::fs::File::create(path).map_err(|e| e.to_string())?)
                }
                None => Box::new(std::io::stdout()),
            };
            let mut total = 0usize;
            for (unit_idx, unit) in test.units.iter().enumerate() {
                let mut catcher = DbCatcher::new(config.clone(), unit.num_databases())
                    .with_participation(unit.participation.clone());
                let mut injector = unit_injector(faults, fault_seed, unit_idx, unit);
                for t in 0..unit.num_ticks() {
                    let mut frame = unit.tick_matrix(t);
                    if let Some(inj) = injector.as_mut() {
                        inj.apply(t as u64, &mut frame);
                    }
                    let report = catcher
                        .try_ingest_tick(&frame)
                        .map_err(|e| format!("unit {unit_idx} tick {t}: {e}"))?;
                    for v in report.verdicts {
                        if v.state.is_abnormal() {
                            total += 1;
                            let record = serde_json::json!({
                                "unit": unit_idx,
                                "db": v.db,
                                "start_tick": v.start_tick,
                                "end_tick": v.end_tick,
                                "window_size": v.window_size,
                                "expansions": v.expansions,
                            });
                            writeln!(sink, "{record}").map_err(|e| e.to_string())?;
                        }
                    }
                }
                report_health(unit_idx, &catcher, faults);
            }
            eprintln!("{total} abnormal verdict(s)");
            Ok(())
        }
        Command::Evaluate {
            data,
            learn,
            train_frac,
            backend,
            faults,
            fault_seed,
            gap_policy,
        } => {
            let dataset = load_dataset(&data).map_err(|e| e.to_string())?;
            let (mut config, test) = prepare(&dataset, learn, train_frac)?;
            config.backend = backend;
            config.ingest.gap_policy = gap_policy;
            let eval_w = 20usize;
            let mut confusion = dbcatcher_eval::metrics::Confusion::default();
            for (unit_idx, unit) in test.units.iter().enumerate() {
                let mut catcher = DbCatcher::new(config.clone(), unit.num_databases())
                    .with_participation(unit.participation.clone());
                let mut injector = unit_injector(faults, fault_seed, unit_idx, unit);
                let mut tick_preds = vec![false; unit.num_ticks()];
                for t in 0..unit.num_ticks() {
                    let mut frame = unit.tick_matrix(t);
                    if let Some(inj) = injector.as_mut() {
                        inj.apply(t as u64, &mut frame);
                    }
                    let report = catcher
                        .try_ingest_tick(&frame)
                        .map_err(|e| format!("unit {unit_idx} tick {t}: {e}"))?;
                    for v in report.verdicts {
                        if v.state.is_abnormal() {
                            let end = (v.end_tick as usize).min(unit.num_ticks());
                            tick_preds[v.start_tick as usize..end]
                                .iter_mut()
                                .for_each(|p| *p = true);
                        }
                    }
                }
                report_health(unit_idx, &catcher, faults);
                let labels: Vec<bool> =
                    (0..unit.num_ticks()).map(|t| unit.any_anomalous(t)).collect();
                confusion.merge(&adjusted_confusion(
                    &windowed_any(&tick_preds, eval_w),
                    &windowed_any(&labels, eval_w),
                ));
            }
            println!(
                "precision {:.1}%  recall {:.1}%  f-measure {:.1}%  ({} windows)",
                confusion.precision() * 100.0,
                confusion.recall() * 100.0,
                confusion.f_measure() * 100.0,
                confusion.total()
            );
            Ok(())
        }
        Command::ExportCsv { data, unit, out } => {
            let dataset = load_dataset(&data).map_err(|e| e.to_string())?;
            let unit_data: &UnitData = dataset
                .units
                .get(unit)
                .ok_or_else(|| format!("unit {unit} of {}", dataset.units.len()))?;
            export_unit_csv(unit_data, &out).map_err(|e| e.to_string())?;
            println!(
                "wrote {out}: {} ticks x {} databases x {} KPIs",
                unit_data.num_ticks(),
                unit_data.num_databases(),
                unit_data.num_kpis()
            );
            Ok(())
        }
    }
}

/// Builds the per-unit fault injector for `--faults`, seeded so every
/// unit corrupts differently but reproducibly.
fn unit_injector(
    faults: FaultPreset,
    fault_seed: u64,
    unit_idx: usize,
    unit: &UnitData,
) -> Option<FaultInjector> {
    if faults == FaultPreset::None {
        return None;
    }
    Some(FaultInjector::with_preset(
        faults,
        unit.num_databases(),
        unit.num_ticks() as u64,
        fault_seed.wrapping_add(unit_idx as u64),
    ))
}

/// Prints the unit's telemetry-health ledger to stderr when anything
/// noteworthy happened (faults requested, or bad samples in the data).
fn report_health(unit_idx: usize, catcher: &DbCatcher, faults: FaultPreset) {
    let health = catcher.health();
    if faults != FaultPreset::None || health.total_repaired() > 0 || health.total_stale() > 0 {
        eprintln!("unit {unit_idx} telemetry health: {}", health.summary_line());
    }
}

/// Optionally learns thresholds on the leading fraction and returns the
/// configuration plus the split to detect on.
fn prepare(
    dataset: &Dataset,
    learn: bool,
    train_frac: f64,
) -> Result<(DbCatcherConfig, Dataset), String> {
    if !(0.0..1.0).contains(&train_frac) {
        return Err(format!("train-frac {train_frac} must lie in [0, 1)"));
    }
    if learn {
        let (train, test) = dataset.split(train_frac);
        let cfg = ProtocolConfig::default();
        let (config, train_f1) = train_dbcatcher(&train, &cfg);
        eprintln!("thresholds learned on {:.0}% of the data (train F-Measure {train_f1:.2})",
            train_frac * 100.0);
        Ok((config, test))
    } else {
        Ok((DbCatcherConfig::default(), dataset.clone()))
    }
}
