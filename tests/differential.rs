//! Differential suite: the naive and incremental correlation backends
//! must be verdict-for-verdict equivalent on every scenario class —
//! healthy streams, window expansions, injected anomalies, degenerate
//! (unused/constant) databases and full simulated workloads.

use dbcatcher::core::config::{DbCatcherConfig, DelayScan};
use dbcatcher::eval::differential::run_differential;
use dbcatcher::sim::{corrupt_series, CollectorFault, FaultKind, FaultPreset};
use dbcatcher::workload::scenario::UnitScenario;

/// A synthetic unit sharing one sinusoid trend, optionally distorting one
/// database over a tick range (mirrors the pipeline unit tests).
fn unit_series(
    dbs: usize,
    kpis: usize,
    ticks: usize,
    distort_db: Option<(usize, std::ops::Range<usize>)>,
) -> Vec<Vec<Vec<f64>>> {
    (0..dbs)
        .map(|db| {
            (0..kpis)
                .map(|kpi| {
                    (0..ticks)
                        .map(|t| {
                            let trend =
                                ((t as f64) * std::f64::consts::TAU / 30.0 + kpi as f64).sin();
                            let mut v =
                                100.0 + 40.0 * trend * (1.0 + 0.1 * db as f64) + 10.0 * db as f64;
                            if let Some((target, range)) = &distort_db {
                                if db == *target && range.contains(&t) {
                                    v = 100.0 - 60.0 * trend + 10.0 * db as f64;
                                }
                            }
                            v
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn small_config(kpis: usize) -> DbCatcherConfig {
    DbCatcherConfig {
        initial_window: 10,
        max_window: 30,
        delay_scan: DelayScan::Fixed(3),
        ..DbCatcherConfig::with_kpis(kpis)
    }
}

#[test]
fn healthy_unit_backends_agree() {
    let series = unit_series(4, 4, 150, None);
    let outcome = run_differential(&small_config(4), &series, None).expect("backends agree");
    assert!(outcome.verdicts >= 4 * 10, "{outcome:?}");
    assert_eq!(outcome.abnormal, 0, "{outcome:?}");
}

#[test]
fn expanding_windows_backends_agree() {
    // Borderline thresholds keep the unit observable so windows expand —
    // the expansion path is exactly where the incremental cache extends
    // instead of rebuilding.
    let mut config = small_config(4);
    config.alphas = vec![0.95; 4];
    config.theta = 0.5;
    config.max_tolerance = 10;
    let series = unit_series(3, 4, 200, Some((2, 30..45)));
    let outcome = run_differential(&config, &series, None).expect("backends agree");
    assert!(
        outcome.expansions > 0,
        "scenario never expanded: {outcome:?}"
    );
}

#[test]
fn injected_anomaly_backends_agree() {
    let series = unit_series(5, 4, 150, Some((1, 40..90)));
    let outcome = run_differential(&small_config(4), &series, None).expect("backends agree");
    assert!(outcome.abnormal > 0, "anomaly not flagged: {outcome:?}");
}

#[test]
fn unused_database_backends_agree() {
    // One all-zero database and one exactly-constant database exercise
    // the degenerate conventions (unused exclusion, constant windows).
    let mut series = unit_series(4, 3, 120, None);
    for kpi in series[2].iter_mut() {
        kpi.iter_mut().for_each(|v| *v = 0.0);
    }
    for kpi in series[3].iter_mut() {
        kpi.iter_mut().for_each(|v| *v = 7.5);
    }
    let outcome = run_differential(&small_config(3), &series, None).expect("backends agree");
    assert!(outcome.verdicts > 0, "{outcome:?}");
}

/// Ingest knobs tight enough that the fault scenarios below actually
/// exercise demotion, staleness and re-admission (the defaults need 60
/// bad ticks in a 120-tick stream to demote anything).
fn fault_config(kpis: usize) -> DbCatcherConfig {
    let mut config = small_config(kpis);
    config.ingest.demote_ratio = 0.3;
    config.ingest.health_window = 20;
    config.ingest.readmit_after = 5;
    config.ingest.stale_after = 8;
    config
}

/// A healthy synthetic unit with one scheduled collector fault applied.
fn faulted_series(db: usize, ticks: std::ops::Range<u64>, kind: FaultKind) -> Vec<Vec<Vec<f64>>> {
    let mut series = unit_series(4, 3, 160, None);
    corrupt_series(&[CollectorFault { db, ticks, kind }], 11, &mut series);
    series
}

#[test]
fn dropped_frames_backends_agree() {
    let series = faulted_series(1, 40..90, FaultKind::DropFrame { prob: 0.4 });
    let outcome = run_differential(&fault_config(3), &series, None).expect("backends agree");
    assert!(outcome.repaired > 0, "drops never repaired: {outcome:?}");
    assert!(outcome.verdicts > 0, "{outcome:?}");
}

#[test]
fn nan_burst_backends_agree() {
    let series = faulted_series(2, 30..120, FaultKind::NanBurst { prob: 0.3 });
    let outcome = run_differential(&fault_config(3), &series, None).expect("backends agree");
    assert!(outcome.repaired > 0, "burst never repaired: {outcome:?}");
    assert!(outcome.verdicts > 0, "{outcome:?}");
}

#[test]
fn duplicated_ticks_backends_agree() {
    // prob 1.0 re-delivers the tick-39 frame for the whole range, so the
    // run-length staleness check must fire on every KPI of the database.
    let series = faulted_series(0, 40..70, FaultKind::DuplicateTicks { prob: 1.0 });
    let outcome = run_differential(&fault_config(3), &series, None).expect("backends agree");
    assert!(
        outcome.stale > 0,
        "duplicates never flagged stale: {outcome:?}"
    );
}

#[test]
fn stuck_sensor_backends_agree() {
    let series = faulted_series(3, 50..130, FaultKind::StuckSensor { kpi: 1 });
    let outcome = run_differential(&fault_config(3), &series, None).expect("backends agree");
    assert!(
        outcome.stale > 0,
        "wedged sensor never flagged: {outcome:?}"
    );
    assert!(outcome.verdicts > 0, "{outcome:?}");
}

#[test]
fn outage_with_recovery_backends_agree() {
    // A 40-tick outage trips the 30%-of-20-ticks demotion threshold well
    // inside the stream; the fault ends at tick 100, leaving 60 clean
    // ticks — enough for the 5-tick re-admission streak.
    let series = faulted_series(1, 60..100, FaultKind::Outage);
    let outcome = run_differential(&fault_config(3), &series, None).expect("backends agree");
    assert!(outcome.repaired > 0, "{outcome:?}");
    assert!(
        outcome.demotions > 0,
        "outage never demoted the database: {outcome:?}"
    );
    assert!(
        outcome.readmissions > 0,
        "recovery never re-admitted: {outcome:?}"
    );
}

#[test]
fn heavy_fault_battery_backends_agree() {
    // Every fault kind at once, overlapping, on top of a real simulated
    // workload with an injected anomaly and a participation mask.
    let data = UnitScenario::quickstart(42).generate();
    let mut series = data.series.clone();
    let plan = FaultPreset::Heavy.plan(data.num_databases(), data.num_ticks() as u64);
    corrupt_series(&plan, 3, &mut series);
    let mut config = DbCatcherConfig::with_kpis(data.num_kpis());
    config.ingest.demote_ratio = 0.3;
    config.ingest.health_window = 30;
    config.ingest.readmit_after = 10;
    config.ingest.stale_after = 10;
    let outcome = run_differential(&config, &series, Some(data.participation.clone()))
        .expect("backends agree");
    assert!(outcome.repaired > 0, "{outcome:?}");
    assert!(outcome.verdicts > 0, "{outcome:?}");
}

#[test]
fn simulated_workload_backends_agree() {
    // Full simulator output: point-in-time delays, temporal fluctuations,
    // an injected anomaly window and the Table II participation mask.
    let data = UnitScenario::quickstart(42).generate();
    let outcome = run_differential(
        &DbCatcherConfig::with_kpis(data.num_kpis()),
        &data.series,
        Some(data.participation.clone()),
    )
    .expect("backends agree");
    assert!(outcome.verdicts > 0, "{outcome:?}");
}
