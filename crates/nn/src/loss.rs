//! Loss functions: each returns `(loss, d loss / d prediction)`.

use crate::matrix::Matrix;

/// Mean squared error over all elements.
///
/// # Panics
/// Panics on shape mismatch (delegated to [`Matrix::zip_map`]).
pub fn mse(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    let n = (pred.rows() * pred.cols()) as f64;
    let diff = pred.sub(target);
    let loss = diff.data().iter().map(|d| d * d).sum::<f64>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Binary cross-entropy for predictions in `(0, 1)`, with clipping for
/// numerical stability.
///
/// # Panics
/// Panics on shape mismatch.
pub fn bce(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    let n = (pred.rows() * pred.cols()) as f64;
    let eps = 1e-12;
    let loss: f64 = pred
        .data()
        .iter()
        .zip(target.data())
        .map(|(&p, &t)| {
            let p = p.clamp(eps, 1.0 - eps);
            -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
        })
        .sum();
    let grad = pred.zip_map(target, |p, t| {
        let p = p.clamp(eps, 1.0 - eps);
        (p - t) / (p * (1.0 - p)) / n
    });
    (loss / n, grad)
}

/// Per-dimension Gaussian negative log-likelihood with diagonal covariance.
///
/// `mu` and `logvar` parameterise the Gaussian; `x` is the observation.
/// Returns `(nll, d nll/d mu, d nll/d logvar)`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn gaussian_nll(x: &Matrix, mu: &Matrix, logvar: &Matrix) -> (f64, Matrix, Matrix) {
    let n = (x.rows() * x.cols()) as f64;
    let mut loss = 0.0;
    let mut dmu = Matrix::zeros(mu.rows(), mu.cols());
    let mut dlogvar = Matrix::zeros(logvar.rows(), logvar.cols());
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            let xv = x[(r, c)];
            let m = mu[(r, c)];
            let lv = logvar[(r, c)].clamp(-20.0, 20.0);
            let var = lv.exp();
            let d = xv - m;
            loss += 0.5 * (lv + d * d / var + std::f64::consts::TAU.ln());
            dmu[(r, c)] = -d / var / n;
            dlogvar[(r, c)] = 0.5 * (1.0 - d * d / var) / n;
        }
    }
    (loss / n, dmu, dlogvar)
}

/// KL divergence from `N(mu, diag(exp(logvar)))` to the standard normal,
/// averaged over elements. Returns `(kl, d kl/d mu, d kl/d logvar)`.
pub fn kl_standard_normal(mu: &Matrix, logvar: &Matrix) -> (f64, Matrix, Matrix) {
    let n = (mu.rows() * mu.cols()) as f64;
    let mut kl = 0.0;
    let dmu = mu.map(|m| m / n);
    let dlogvar = logvar.map(|lv| 0.5 * (lv.clamp(-20.0, 20.0).exp() - 1.0) / n);
    for r in 0..mu.rows() {
        for c in 0..mu.cols() {
            let m = mu[(r, c)];
            let lv = logvar[(r, c)].clamp(-20.0, 20.0);
            kl += 0.5 * (m * m + lv.exp() - 1.0 - lv);
        }
    }
    (kl / n, dmu, dlogvar)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b}");
    }

    #[test]
    fn mse_zero_for_equal() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let (loss, grad) = mse(&a, &a);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_known_value_and_grad() {
        let p = Matrix::from_vec(1, 2, vec![1.0, 3.0]);
        let t = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        let (loss, grad) = mse(&p, &t);
        close(loss, 5.0, 1e-12); // (1 + 9) / 2
        close(grad.data()[0], 1.0, 1e-12); // 2*1/2
        close(grad.data()[1], 3.0, 1e-12);
    }

    #[test]
    fn mse_grad_matches_fd() {
        let p = Matrix::from_vec(1, 3, vec![0.2, -0.7, 1.4]);
        let t = Matrix::from_vec(1, 3, vec![0.0, 0.5, 1.0]);
        let (l0, grad) = mse(&p, &t);
        let eps = 1e-7;
        for i in 0..3 {
            let mut pp = p.clone();
            pp.data_mut()[i] += eps;
            let (lp, _) = mse(&pp, &t);
            close((lp - l0) / eps, grad.data()[i], 1e-5);
        }
    }

    #[test]
    fn bce_perfect_prediction_near_zero() {
        let p = Matrix::from_vec(1, 2, vec![0.999999, 0.000001]);
        let t = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let (loss, _) = bce(&p, &t);
        assert!(loss < 1e-4);
    }

    #[test]
    fn bce_grad_matches_fd() {
        let p = Matrix::from_vec(1, 3, vec![0.3, 0.6, 0.9]);
        let t = Matrix::from_vec(1, 3, vec![1.0, 0.0, 1.0]);
        let (l0, grad) = bce(&p, &t);
        let eps = 1e-7;
        for i in 0..3 {
            let mut pp = p.clone();
            pp.data_mut()[i] += eps;
            let (lp, _) = bce(&pp, &t);
            close((lp - l0) / eps, grad.data()[i], 1e-4);
        }
    }

    #[test]
    fn gaussian_nll_grads_match_fd() {
        let x = Matrix::from_vec(1, 2, vec![0.5, -1.0]);
        let mu = Matrix::from_vec(1, 2, vec![0.2, -0.5]);
        let lv = Matrix::from_vec(1, 2, vec![0.1, -0.3]);
        let (l0, dmu, dlv) = gaussian_nll(&x, &mu, &lv);
        let eps = 1e-7;
        for i in 0..2 {
            let mut mp = mu.clone();
            mp.data_mut()[i] += eps;
            let (lp, _, _) = gaussian_nll(&x, &mp, &lv);
            close((lp - l0) / eps, dmu.data()[i], 1e-5);

            let mut lvp = lv.clone();
            lvp.data_mut()[i] += eps;
            let (lp, _, _) = gaussian_nll(&x, &mu, &lvp);
            close((lp - l0) / eps, dlv.data()[i], 1e-5);
        }
    }

    #[test]
    fn kl_zero_at_standard_normal() {
        let mu = Matrix::zeros(1, 4);
        let lv = Matrix::zeros(1, 4);
        let (kl, dmu, dlv) = kl_standard_normal(&mu, &lv);
        close(kl, 0.0, 1e-12);
        assert!(dmu.data().iter().all(|&g| g == 0.0));
        assert!(dlv.data().iter().all(|&g| g.abs() < 1e-12));
    }

    #[test]
    fn kl_grads_match_fd() {
        let mu = Matrix::from_vec(1, 2, vec![0.7, -0.4]);
        let lv = Matrix::from_vec(1, 2, vec![0.3, -0.6]);
        let (l0, dmu, dlv) = kl_standard_normal(&mu, &lv);
        let eps = 1e-7;
        for i in 0..2 {
            let mut mp = mu.clone();
            mp.data_mut()[i] += eps;
            let (lp, _, _) = kl_standard_normal(&mp, &lv);
            close((lp - l0) / eps, dmu.data()[i], 1e-5);

            let mut lvp = lv.clone();
            lvp.data_mut()[i] += eps;
            let (lp, _, _) = kl_standard_normal(&mu, &lvp);
            close((lp - l0) / eps, dlv.data()[i], 1e-5);
        }
    }

    #[test]
    fn kl_positive_away_from_prior() {
        let mu = Matrix::from_vec(1, 1, vec![2.0]);
        let lv = Matrix::zeros(1, 1);
        let (kl, _, _) = kl_standard_normal(&mu, &lv);
        assert!(kl > 0.0);
    }
}
