//! Fault-injection soak: a long fixed-seed stream carrying every fault
//! kind (the Heavy preset, twice, at staggered offsets) must stream
//! through both backends with zero panics, verdict-for-verdict backend
//! agreement, and bounded verdict drift against the clean run — the
//! degraded-mode machinery is allowed to change *some* verdicts (that is
//! its job) but must not destabilise the detector at large.
//!
//! Ignored by default (several seconds); ci.sh runs it explicitly:
//!
//! ```text
//! cargo test --release -q --test fault_soak -- --ignored
//! ```

use dbcatcher::core::config::{DbCatcherConfig, DelayScan};
use dbcatcher::eval::differential::run_differential;
use dbcatcher::sim::{corrupt_series, CollectorFault, FaultPreset};

const DBS: usize = 5;
const KPIS: usize = 4;
const TICKS: usize = 3000;

/// A healthy synthetic fleet-like unit: shared sinusoid trend per KPI
/// with per-database gain/offset and a slow secondary period.
fn soak_series() -> Vec<Vec<Vec<f64>>> {
    (0..DBS)
        .map(|db| {
            (0..KPIS)
                .map(|kpi| {
                    (0..TICKS)
                        .map(|t| {
                            let tf = t as f64;
                            let fast = (tf * std::f64::consts::TAU / 30.0 + kpi as f64).sin();
                            let slow = (tf * std::f64::consts::TAU / 480.0).cos();
                            100.0
                                + 40.0 * fast * (1.0 + 0.1 * db as f64)
                                + 15.0 * slow
                                + 10.0 * db as f64
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn soak_config() -> DbCatcherConfig {
    let mut config = DbCatcherConfig {
        initial_window: 10,
        max_window: 30,
        delay_scan: DelayScan::Fixed(3),
        ..DbCatcherConfig::with_kpis(KPIS)
    };
    config.ingest.demote_ratio = 0.3;
    config.ingest.health_window = 30;
    config.ingest.readmit_after = 10;
    config.ingest.stale_after = 12;
    config
}

#[test]
#[ignore = "soak test: several seconds; run via ci.sh"]
fn heavy_faults_soak_without_panics_or_drift() {
    let clean = soak_series();
    let clean_outcome =
        run_differential(&soak_config(), &clean, None).expect("clean backends agree");
    assert!(clean_outcome.verdicts > 0);
    assert_eq!(clean_outcome.abnormal, 0, "clean stream must stay healthy");

    // Two staggered Heavy batteries: every fault kind, overlapping, with
    // the second half's schedule shifted so recovery is also soaked.
    let mut faults: Vec<CollectorFault> = FaultPreset::Heavy.plan(DBS, TICKS as u64 / 2);
    for mut fault in FaultPreset::Heavy.plan(DBS, TICKS as u64 / 2) {
        fault.db = (fault.db + 2) % DBS;
        fault.ticks = fault.ticks.start + TICKS as u64 / 2..fault.ticks.end + TICKS as u64 / 2;
        faults.push(fault);
    }
    let mut faulted = clean.clone();
    corrupt_series(&faults, 20_240, &mut faulted);

    let outcome = run_differential(&soak_config(), &faulted, None).expect("backends agree");
    assert_eq!(outcome.ticks, TICKS);
    assert!(outcome.repaired > 0, "{outcome:?}");
    assert!(outcome.stale > 0, "{outcome:?}");
    assert!(outcome.demotions > 0, "{outcome:?}");
    assert!(outcome.readmissions > 0, "{outcome:?}");
    // Drift bound: telemetry trouble is not an anomaly — repair plus
    // demotion must keep false alarms to a small fraction of verdicts.
    // Fault-induced expansions shift window boundaries, so the faulted
    // run may close a handful fewer windows by stream end — but not more.
    assert!(
        outcome.verdicts.abs_diff(clean_outcome.verdicts) <= DBS * 3,
        "verdict cadence drifted: {} vs clean {}",
        outcome.verdicts,
        clean_outcome.verdicts
    );
    let drift = outcome.abnormal.abs_diff(clean_outcome.abnormal) as f64;
    let bound = (outcome.verdicts as f64 * 0.05).max(8.0);
    assert!(
        drift <= bound,
        "verdict drift {drift} exceeds bound {bound}: {outcome:?} vs clean {clean_outcome:?}"
    );
}
