//! Fig. 9 + Table VII: performance and window size on the **irregular**
//! datasets (Tencent I / Sysbench I / TPCC I).

use dbcatcher_bench::{print_performance, print_scale_banner, print_window_sizes};
use dbcatcher_eval::experiments::{compare_methods, subset_specs, Scale};
use dbcatcher_eval::methods::MethodKind;
use dbcatcher_workload::dataset::Subset;

fn main() {
    let scale = Scale::from_args();
    print_scale_banner("Fig. 9 / Table VII — irregular datasets", &scale);
    let specs = subset_specs(&scale, Subset::Irregular);
    let results = compare_methods(&specs, &MethodKind::all(), &scale);
    print_performance("Fig. 9: performance on irregular datasets", &results);
    print_window_sizes(
        "Table VII: average Window-Sizes for best F-Measure (irregular)",
        &results,
    );
    println!(
        "{}",
        serde_json::to_string(&results).expect("serializable results")
    );
}
