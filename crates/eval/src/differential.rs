//! Differential testing of the correlation backends.
//!
//! The incremental engine ([`dbcatcher_core::kcd_incremental`]) is an
//! optimisation of the naive KCD path, not a re-specification: for any
//! input stream the two must emit the same verdicts. This module drives
//! both backends through identical tick streams and checks
//! verdict-for-verdict equality — the discrete fields exactly, the
//! recorded scores within [`SCORE_TOLERANCE`] (prefix-sum moment
//! derivation may differ from the two-pass formula in the last ulps).

use dbcatcher_core::config::{CorrelationBackend, DbCatcherConfig};
use dbcatcher_core::pipeline::DbCatcher;

/// Largest per-score divergence the harness accepts. Far below any level
/// threshold granularity (α, θ ≥ 0.01), so agreeing scores can never
/// quantise into different levels in practice; disagreeing verdicts fail
/// regardless of score distance.
pub const SCORE_TOLERANCE: f64 = 1e-9;

/// What a differential run observed — tests assert on these to prove a
/// scenario actually exercised the paths it claims to (expansions,
/// abnormal verdicts, …).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DifferentialOutcome {
    /// Ticks streamed.
    pub ticks: usize,
    /// Verdicts emitted (identical count on both backends).
    pub verdicts: usize,
    /// Sum of window expansions across all verdicts.
    pub expansions: u64,
    /// Verdicts that resolved abnormal.
    pub abnormal: usize,
    /// Samples repaired by the ingest layer (identical on both backends).
    pub repaired: u64,
    /// Samples flagged stale by the ingest layer.
    pub stale: u64,
    /// Non-voting demotions (identical on both backends).
    pub demotions: u64,
    /// Re-admissions after demotion (identical on both backends).
    pub readmissions: u64,
}

/// Streams `series[db][kpi][tick]` through one detector per backend and
/// compares the verdicts emitted at every tick.
///
/// # Errors
/// Describes the first divergence found (tick, verdict index, field).
pub fn run_differential(
    config: &DbCatcherConfig,
    series: &[Vec<Vec<f64>>],
    participation: Option<Vec<Vec<bool>>>,
) -> Result<DifferentialOutcome, String> {
    let num_dbs = series.len();
    let num_ticks = series
        .first()
        .and_then(|db| db.first())
        .map(|s| s.len())
        .unwrap_or(0);

    let build = |backend: CorrelationBackend| {
        let cfg = DbCatcherConfig {
            backend,
            ..config.clone()
        };
        let mut catcher = DbCatcher::new(cfg, num_dbs);
        if let Some(mask) = &participation {
            catcher = catcher.with_participation(mask.clone());
        }
        catcher
    };
    let mut naive = build(CorrelationBackend::Naive);
    let mut incremental = build(CorrelationBackend::Incremental);

    let mut outcome = DifferentialOutcome {
        ticks: num_ticks,
        ..DifferentialOutcome::default()
    };
    for t in 0..num_ticks {
        let frame: Vec<Vec<f64>> = series
            .iter()
            .map(|db| db.iter().map(|kpi| kpi[t]).collect())
            .collect();
        let rn = naive
            .try_ingest_tick(&frame)
            .map_err(|e| format!("tick {t}: naive rejected the frame: {e}"))?;
        let ri = incremental
            .try_ingest_tick(&frame)
            .map_err(|e| format!("tick {t}: incremental rejected the frame: {e}"))?;
        if (rn.repaired, rn.stale, &rn.demoted, &rn.readmitted)
            != (ri.repaired, ri.stale, &ri.demoted, &ri.readmitted)
        {
            return Err(format!(
                "tick {t}: ingest reports diverged — naive {:?}/{:?}/{:?}/{:?} vs \
                 incremental {:?}/{:?}/{:?}/{:?}",
                rn.repaired,
                rn.stale,
                rn.demoted,
                rn.readmitted,
                ri.repaired,
                ri.stale,
                ri.demoted,
                ri.readmitted
            ));
        }
        if naive.non_voting() != incremental.non_voting() {
            return Err(format!(
                "tick {t}: non-voting sets diverged — naive {:?} vs incremental {:?}",
                naive.non_voting(),
                incremental.non_voting()
            ));
        }
        outcome.repaired += rn.repaired as u64;
        outcome.stale += rn.stale as u64;
        outcome.demotions += rn.demoted.len() as u64;
        outcome.readmissions += rn.readmitted.len() as u64;
        let (vn, vi) = (rn.verdicts, ri.verdicts);
        if vn.len() != vi.len() {
            return Err(format!(
                "tick {t}: naive emitted {} verdict(s), incremental {}",
                vn.len(),
                vi.len()
            ));
        }
        for (idx, (a, b)) in vn.iter().zip(&vi).enumerate() {
            let ctx = format!("tick {t}, verdict {idx} (db {})", a.db);
            if (a.db, a.start_tick, a.end_tick) != (b.db, b.start_tick, b.end_tick) {
                return Err(format!(
                    "{ctx}: window mismatch — naive ({}, {}..{}) vs incremental ({}, {}..{})",
                    a.db, a.start_tick, a.end_tick, b.db, b.start_tick, b.end_tick
                ));
            }
            if a.state != b.state {
                return Err(format!(
                    "{ctx}: state mismatch — naive {:?} vs incremental {:?}",
                    a.state, b.state
                ));
            }
            if (a.window_size, a.expansions) != (b.window_size, b.expansions) {
                return Err(format!(
                    "{ctx}: shape mismatch — naive size {} x{} vs incremental size {} x{}",
                    a.window_size, a.expansions, b.window_size, b.expansions
                ));
            }
            if a.scores.len() != b.scores.len() {
                return Err(format!("{ctx}: score arity mismatch"));
            }
            for (k, (sa, sb)) in a.scores.iter().zip(&b.scores).enumerate() {
                let agree = (sa.is_nan() && sb.is_nan()) || (sa - sb).abs() <= SCORE_TOLERANCE;
                if !agree {
                    return Err(format!(
                        "{ctx}: KPI {k} score diverged — naive {sa} vs incremental {sb}"
                    ));
                }
            }
            outcome.verdicts += 1;
            outcome.expansions += u64::from(a.expansions);
            if a.state.is_abnormal() {
                outcome.abnormal += 1;
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcatcher_core::config::DelayScan;

    fn tiny_unit(dbs: usize, kpis: usize, ticks: usize) -> Vec<Vec<Vec<f64>>> {
        (0..dbs)
            .map(|db| {
                (0..kpis)
                    .map(|kpi| {
                        (0..ticks)
                            .map(|t| {
                                let trend =
                                    ((t as f64) * std::f64::consts::TAU / 25.0 + kpi as f64).sin();
                                50.0 + 20.0 * trend + 5.0 * db as f64
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn healthy_stream_agrees() {
        let config = DbCatcherConfig {
            initial_window: 10,
            max_window: 30,
            delay_scan: DelayScan::Fixed(3),
            ..DbCatcherConfig::with_kpis(3)
        };
        let outcome =
            run_differential(&config, &tiny_unit(3, 3, 80), None).expect("backends agree");
        assert!(outcome.verdicts > 0);
        assert_eq!(outcome.abnormal, 0);
    }

    #[test]
    fn empty_stream_is_trivially_equal() {
        let config = DbCatcherConfig::with_kpis(2);
        let outcome = run_differential(&config, &[vec![vec![], vec![]]], None).expect("agree");
        assert_eq!(outcome, DifferentialOutcome::default());
    }
}
