//! Snapshot serialisation for [`KpiQueues`] — cold path, kept out of
//! `queues.rs` so the hot data-processing module stays allocation-free
//! under `dbclint` (`hot-path-alloc` scopes whole files; serialisation
//! legitimately allocates).

use crate::queues::KpiQueues;
use serde::{DeError, Deserialize, Serialize, Value};

impl Serialize for KpiQueues {
    fn to_value(&self) -> Value {
        let retained = (self.len - self.base_tick) as usize;
        let buffers: Vec<Value> = (0..self.num_dbs)
            .map(|db| {
                Value::Array(
                    (0..self.num_kpis)
                        .map(|k| {
                            let w = self
                                .window_slice(db, k, self.base_tick, retained)
                                // dbclint: allow(panic-free) — `retained` comes from the queue's own base/len pair, so the span is addressable by construction; failure means snapshot corruption worth failing loud on.
                                .expect("retained span is always addressable");
                            Value::Array(w.iter().map(|v| v.to_value()).collect())
                        })
                        .collect(),
                )
            })
            .collect();
        Value::Object(vec![
            ("num_dbs".to_string(), self.num_dbs.to_value()),
            ("num_kpis".to_string(), self.num_kpis.to_value()),
            ("capacity".to_string(), self.capacity.to_value()),
            ("buffers".to_string(), Value::Array(buffers)),
            ("base_tick".to_string(), self.base_tick.to_value()),
            ("len".to_string(), self.len.to_value()),
        ])
    }
}

impl Deserialize for KpiQueues {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| DeError::new(format!("KpiQueues: missing field `{name}`")))
        };
        let num_dbs = usize::from_value(field("num_dbs")?)?;
        let num_kpis = usize::from_value(field("num_kpis")?)?;
        let capacity = usize::from_value(field("capacity")?)?;
        let buffers = Vec::<Vec<Vec<f64>>>::from_value(field("buffers")?)?;
        let base_tick = u64::from_value(field("base_tick")?)?;
        let len = u64::from_value(field("len")?)?;
        if num_dbs == 0 || num_kpis == 0 || capacity == 0 {
            return Err(DeError::new(
                "KpiQueues: dimensions must be positive".to_string(),
            ));
        }
        let retained = len
            .checked_sub(base_tick)
            .ok_or_else(|| DeError::new("KpiQueues: base_tick past len".to_string()))?
            as usize;
        if retained > capacity {
            return Err(DeError::new(
                "KpiQueues: retained span exceeds capacity".to_string(),
            ));
        }
        if buffers.len() != num_dbs || buffers.iter().any(|db| db.len() != num_kpis) {
            return Err(DeError::new("KpiQueues: buffer arity mismatch".to_string()));
        }
        let slab = capacity * 2;
        let mut data = vec![0.0; num_dbs * num_kpis * slab];
        for (db, kpis) in buffers.iter().enumerate() {
            for (k, buf) in kpis.iter().enumerate() {
                if buf.len() != retained {
                    return Err(DeError::new(format!(
                        "KpiQueues: series ({db},{k}) holds {} samples, expected {retained}",
                        buf.len()
                    )));
                }
                let o = (db * num_kpis + k) * slab;
                data[o..o + retained].copy_from_slice(buf);
            }
        }
        Ok(Self {
            num_dbs,
            num_kpis,
            capacity,
            filled: retained,
            phys_base: base_tick,
            data,
            base_tick,
            len,
        })
    }
}
