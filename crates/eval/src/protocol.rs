//! The paper's evaluation protocol (§IV-B).
//!
//! "Each method uses the training set to randomly search thresholds and
//! Window-size for which the optimal F-Measure can be obtained, and
//! maintain them for evaluation on the testing set."
//!
//! [`search_threshold_window`] implements that search for the
//! score-producing baselines: per candidate window size, candidate
//! thresholds are drawn from the quantiles of the training scores and the
//! `(window, threshold)` pair with the best training F-Measure wins
//! (smaller windows win ties — detection efficiency is the secondary
//! objective).

use crate::metrics::{adjusted_confusion, verdict_ticks, windowed_any, windowed_max};
use dbcatcher_core::config::DbCatcherConfig;
use dbcatcher_core::ga::GeneticConfig;
use serde::{Deserialize, Serialize};

/// Shared protocol configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Master seed (varied across the paper's 20 repetitions).
    pub seed: u64,
    /// Evaluation granularity in ticks: every method's verdicts are
    /// re-sampled onto windows of this size before scoring, so a method
    /// cannot trade precision for window size (a huge detection window
    /// would otherwise make "always abnormal" trivially correct).
    pub eval_window: usize,
    /// Candidate window sizes for the baselines' search.
    pub window_grid: Vec<usize>,
    /// Candidate threshold quantiles of the training score distribution.
    pub threshold_quantiles: Vec<f64>,
    /// Genetic-algorithm configuration for DBCatcher's threshold learning.
    pub ga: GeneticConfig,
    /// DBCatcher base configuration (thresholds are overwritten by the GA).
    pub base_config: DbCatcherConfig,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            eval_window: 20,
            window_grid: vec![20, 30, 40, 50, 60, 70, 80, 90, 100],
            threshold_quantiles: vec![
                0.50, 0.70, 0.80, 0.85, 0.90, 0.925, 0.95, 0.97, 0.98, 0.99, 0.995,
            ],
            ga: GeneticConfig {
                population: 16,
                generations: 12,
                ..GeneticConfig::default()
            },
            base_config: DbCatcherConfig::default(),
        }
    }
}

impl ProtocolConfig {
    /// Derives a repetition-specific configuration.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.ga.seed = seed ^ 0x9A9A;
        self
    }
}

/// The winning parameters of a baseline's search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchedParams {
    /// Chosen window size.
    pub window: usize,
    /// Chosen score threshold.
    pub threshold: f64,
    /// Training F-Measure achieved.
    pub train_f1: f64,
}

/// Searches `(window, threshold)` over per-unit training scores.
///
/// * `unit_scores[u][tick]` — the detector's scores on training unit `u`;
/// * `unit_labels[u][tick]` — unit-level ground truth (any database
///   anomalous at the tick).
///
/// # Panics
/// Panics when the grids are empty or inputs are inconsistent.
pub fn search_threshold_window(
    unit_scores: &[Vec<f64>],
    unit_labels: &[Vec<bool>],
    cfg: &ProtocolConfig,
) -> SearchedParams {
    assert!(!cfg.window_grid.is_empty(), "empty window grid");
    assert!(!cfg.threshold_quantiles.is_empty(), "empty quantile grid");
    assert_eq!(unit_scores.len(), unit_labels.len(), "unit arity mismatch");
    let mut best: Option<SearchedParams> = None;
    for &w in &cfg.window_grid {
        // candidate thresholds come from the detection-window score maxima
        let mut all_scores = Vec::new();
        for scores in unit_scores {
            if scores.len() >= w {
                all_scores.extend_from_slice(&windowed_max(scores, w));
            }
        }
        if all_scores.is_empty() {
            continue;
        }
        for &q in &cfg.threshold_quantiles {
            let thr = match dbcatcher_signal::stats::quantile(&all_scores, q) {
                Ok(t) => t,
                Err(_) => continue,
            };
            let mut confusion = crate::metrics::Confusion::default();
            for (scores, labels) in unit_scores.iter().zip(unit_labels) {
                if scores.len() < w || labels.len() < cfg.eval_window {
                    continue;
                }
                // verdicts at the detection window, scored at the fixed
                // evaluation granularity
                let ticks = verdict_ticks(scores, w, thr);
                let preds = windowed_any(&ticks, cfg.eval_window);
                let wl = windowed_any(labels, cfg.eval_window);
                confusion.merge(&adjusted_confusion(&preds, &wl));
            }
            let f1 = confusion.f_measure();
            let candidate = SearchedParams {
                window: w,
                threshold: thr,
                train_f1: f1,
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    f1 > b.train_f1 + 1e-12 || ((f1 - b.train_f1).abs() <= 1e-12 && w < b.window)
                }
            };
            if better {
                best = Some(candidate);
            }
        }
    }
    best.unwrap_or(SearchedParams {
        window: cfg.window_grid[0],
        threshold: f64::INFINITY,
        train_f1: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scores that cleanly separate an anomaly at ticks 40..60.
    fn synthetic() -> (Vec<Vec<f64>>, Vec<Vec<bool>>) {
        let scores: Vec<f64> = (0..200)
            .map(|t| if (40..60).contains(&t) { 10.0 } else { 1.0 })
            .collect();
        let labels: Vec<bool> = (0..200).map(|t| (40..60).contains(&t)).collect();
        (vec![scores], vec![labels])
    }

    #[test]
    fn finds_separating_threshold() {
        let (scores, labels) = synthetic();
        let cfg = ProtocolConfig::default();
        let params = search_threshold_window(&scores, &labels, &cfg);
        assert!(params.train_f1 > 0.99, "{params:?}");
        // predictions use strict >, so a threshold at the healthy score
        // (1.0) already separates perfectly
        assert!((1.0..10.0).contains(&params.threshold), "{params:?}");
    }

    #[test]
    fn prefers_smaller_window_on_ties() {
        let (scores, labels) = synthetic();
        let cfg = ProtocolConfig::default();
        let params = search_threshold_window(&scores, &labels, &cfg);
        assert_eq!(params.window, 20, "{params:?}");
    }

    #[test]
    fn empty_scores_fall_back() {
        let cfg = ProtocolConfig::default();
        let params = search_threshold_window(&[vec![]], &[vec![]], &cfg);
        assert_eq!(params.train_f1, 0.0);
    }

    #[test]
    fn seed_derivation() {
        let a = ProtocolConfig::default().with_seed(7);
        assert_eq!(a.seed, 7);
        assert_ne!(a.ga.seed, ProtocolConfig::default().ga.seed);
    }

    #[test]
    #[should_panic(expected = "empty window grid")]
    fn empty_grid_panics() {
        let cfg = ProtocolConfig {
            window_grid: vec![],
            ..ProtocolConfig::default()
        };
        let _ = search_threshold_window(&[], &[], &cfg);
    }

    #[test]
    fn noisy_scores_still_yield_reasonable_f1() {
        // anomaly scores overlap the healthy distribution a little
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for t in 0..300usize {
            let anomalous = (100..130).contains(&t);
            let s = if anomalous {
                5.0 + (t % 3) as f64
            } else {
                1.0 + (t % 4) as f64
            };
            scores.push(s);
            labels.push(anomalous);
        }
        let cfg = ProtocolConfig::default();
        let params = search_threshold_window(&[scores], &[labels], &cfg);
        assert!(params.train_f1 > 0.6, "{params:?}");
    }
}
