//! The fleet-scope hierarchy feed: daemon-side wiring of
//! [`dbcatcher_hierarchy::FleetEngine`].
//!
//! A single feed thread registers itself as an internal subscriber of the
//! verdict broadcast, so every per-unit verdict a shard fans out also
//! reaches the hierarchy engine — same channel discipline as external
//! subscribers, no new hooks in the shard hot path. For each verdict the
//! feed:
//!
//! 1. appends the [`UnitVerdict`] as one JSONL line to
//!    `wal_dir/hierarchy.wal` (flushed per line, *before* the engine sees
//!    it) — the hierarchy WAL doubles as the `analyze-fleet` input, which
//!    is what makes the online/offline byte-identity checkable;
//! 2. feeds the engine and broadcasts every emitted
//!    [`Response::ScopeVerdict`] to the subscribers.
//!
//! On startup the feed replays an existing hierarchy WAL (without
//! flushing), so a restarted daemon resumes scope state exactly where the
//! log left it; duplicate verdicts re-emitted by the unit-WAL replay are
//! deduplicated inside the engine. On clean shutdown the engine is
//! flushed and the full scope-verdict history is rewritten to the
//! configured `scope_out` file; a (simulated) crash skips both, exactly
//! like a real kill would.

use crate::metrics::ServerMetrics;
use crate::protocol::Response;
use crate::shard::CrashSwitch;
use crate::sync::LockRecover;
use dbcatcher_hierarchy::{
    parse_unit_line, render_scope_line, render_unit_line, FleetReplay, HierarchyConfig,
    ScopeVerdict, Topology, UnitVerdict,
};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// File name of the hierarchy WAL inside the daemon's `--wal-dir`.
pub const HIERARCHY_WAL_FILE: &str = "hierarchy.wal";

/// Operator-facing hierarchy knobs (`dbcatcher serve --hierarchy`).
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyOptions {
    /// Units per cluster in the rollup topology.
    pub units_per_cluster: usize,
    /// Clusters per region in the rollup topology.
    pub clusters_per_region: usize,
    /// Where the scope-verdict stream is written on clean shutdown
    /// (rewritten whole, so a resumed daemon's file equals an offline
    /// replay of the full hierarchy WAL).
    pub scope_out: Option<PathBuf>,
}

impl Default for HierarchyOptions {
    fn default() -> Self {
        Self {
            units_per_cluster: 4,
            clusters_per_region: 4,
            scope_out: None,
        }
    }
}

/// Everything the feed thread needs from the server.
pub(crate) struct FeedContext {
    pub options: HierarchyOptions,
    pub max_units: usize,
    pub wal_dir: Option<PathBuf>,
    pub metrics: Arc<ServerMetrics>,
    pub subscribers: Arc<Mutex<Vec<Sender<Response>>>>,
    pub crash: Option<Arc<CrashSwitch>>,
}

/// Handle of the running feed thread; joined by the server after the
/// subscriber list is cleared (which closes the feed's channel).
pub(crate) struct HierarchyFeed {
    handle: std::thread::JoinHandle<()>,
}

impl HierarchyFeed {
    pub fn join(self) {
        let _ = self.handle.join();
    }
}

/// Spawns the feed thread and registers it on the verdict broadcast.
pub(crate) fn spawn(ctx: FeedContext) -> HierarchyFeed {
    let (tx, rx) = channel::<Response>();
    ctx.subscribers.lock_clean().push(tx);
    let handle = std::thread::Builder::new()
        .name("dbcatcher-hierarchy".into())
        .spawn(move || run_feed(rx, ctx))
        // dbclint: allow(panic-free) — OS thread-spawn failure has no graceful recovery; fail loud at startup
        .expect("spawn hierarchy feed");
    HierarchyFeed { handle }
}

fn run_feed(rx: Receiver<Response>, ctx: FeedContext) {
    let topology = match Topology::new(
        ctx.max_units,
        ctx.options.units_per_cluster,
        ctx.options.clusters_per_region,
    ) {
        Ok(t) => t,
        Err(e) => {
            ctx.metrics
                .record_shard_note(0, format!("hierarchy disabled: {e}"));
            // Drain the channel so fan-out sends keep succeeding.
            while rx.recv().is_ok() {}
            return;
        }
    };
    ctx.metrics.record_hierarchy_enabled();
    let config = HierarchyConfig::new(topology);
    let mut replay = FleetReplay::new(config);
    let mut history: Vec<ScopeVerdict> = Vec::new();
    let wal_path = ctx.wal_dir.as_ref().map(|d| d.join(HIERARCHY_WAL_FILE));

    // Resume: replay the hierarchy WAL a previous incarnation appended.
    // No flush — buffered ticks stay buffered so the live stream
    // continues them, keeping the final output equal to one offline
    // replay of the whole log.
    if let Some(path) = &wal_path {
        if let Ok(file) = File::open(path) {
            for line in BufReader::new(file).lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                // Malformed lines (a torn tail write) are skipped, same
                // as `analyze-fleet` does offline.
                if let Ok(record) = parse_unit_line(&line) {
                    replay.observe(record);
                }
            }
        }
        publish(&mut replay, &mut history, &ctx);
    }

    let mut wal = wal_path.as_ref().and_then(|path| {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match OpenOptions::new().create(true).append(true).open(path) {
            Ok(file) => Some(BufWriter::new(file)),
            Err(e) => {
                ctx.metrics
                    .record_shard_note(0, format!("hierarchy WAL disabled: {e}"));
                None
            }
        }
    });

    while let Ok(response) = rx.recv() {
        let Response::Verdict {
            unit,
            at_tick,
            verdict,
        } = response
        else {
            continue; // our own ScopeVerdict echoes, control frames
        };
        let record = UnitVerdict {
            unit,
            at_tick,
            verdict,
        };
        // Durable point: the verdict reaches the hierarchy WAL before the
        // engine can act on it, so a crash never loses an observed line.
        if let Some(writer) = wal.as_mut() {
            let line = render_unit_line(&record);
            if writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_err()
            {
                ctx.metrics
                    .record_wal_error(record.unit, "hierarchy WAL append failed".into());
            }
        }
        replay.observe(record);
        publish(&mut replay, &mut history, &ctx);
    }

    // Channel closed: daemon is going down. A (simulated) crash gets no
    // flush and no scope file — resume recovers from the WAL instead.
    if ctx.crash.as_ref().is_some_and(|c| c.tripped()) {
        return;
    }
    if let Some(engine) = replay.engine_mut() {
        engine.flush();
    }
    publish(&mut replay, &mut history, &ctx);
    if let Some(path) = &ctx.options.scope_out {
        if let Err(e) = write_scope_file(path, &history) {
            ctx.metrics
                .record_shard_note(0, format!("scope output failed: {e}"));
        }
    }
}

/// Drains newly emitted scope verdicts: metrics, subscriber broadcast,
/// history append.
fn publish(replay: &mut FleetReplay, history: &mut Vec<ScopeVerdict>, ctx: &FeedContext) {
    let Some(engine) = replay.engine_mut() else {
        return;
    };
    let emitted = engine.drain();
    if emitted.is_empty() {
        return;
    }
    ctx.metrics
        .record_scope_verdicts(emitted.len() as u64, engine.alarms_active() as u64);
    {
        let mut subs = ctx.subscribers.lock_clean();
        for sv in &emitted {
            subs.retain(|s| s.send(Response::ScopeVerdict(sv.clone())).is_ok());
        }
    }
    history.extend(emitted);
}

/// Rewrites the scope-verdict file atomically (tmp + rename).
fn write_scope_file(path: &std::path::Path, history: &[ScopeVerdict]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("tmp");
    {
        let mut writer = BufWriter::new(File::create(&tmp)?);
        for sv in history {
            writer.write_all(render_scope_line(sv).as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
    }
    std::fs::rename(&tmp, path)
}
