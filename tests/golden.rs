//! Golden-file regression test: a fixed-seed scenario streamed through the
//! default detector must reproduce the committed verdict stream exactly.
//!
//! The golden file pins the *observable behaviour* of the whole pipeline —
//! queues, correlation engine, level quantisation, window state machine —
//! so an unintended change anywhere surfaces as a diff here even when
//! every unit test still passes.
//!
//! Regenerating after an **intended** behaviour change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! then review the diff of `tests/golden/quickstart_verdicts.jsonl` like
//! any other code change.

use dbcatcher::core::{DbCatcher, DbCatcherConfig};
use dbcatcher::workload::scenario::UnitScenario;
use std::path::Path;

const GOLDEN_PATH: &str = "tests/golden/quickstart_verdicts.jsonl";

/// One JSON line per verdict, in emission order.
fn render_verdicts() -> String {
    let data = UnitScenario::quickstart(7).generate();
    let config = DbCatcherConfig::with_kpis(data.num_kpis());
    let mut catcher =
        DbCatcher::new(config, data.num_databases()).with_participation(data.participation.clone());
    let mut out = String::new();
    for t in 0..data.num_ticks() {
        for v in catcher.ingest_tick(&data.tick_matrix(t)) {
            out.push_str(&serde_json::to_string(&v).expect("verdict serializes"));
            out.push('\n');
        }
    }
    out
}

#[test]
fn quickstart_verdicts_match_golden_file() {
    let rendered = render_verdicts();
    assert!(!rendered.is_empty(), "scenario produced no verdicts");

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &rendered).expect("write golden file");
        eprintln!("regenerated {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nrun `UPDATE_GOLDEN=1 cargo test --test golden` to create it",
            path.display()
        )
    });
    if rendered != golden {
        let diff_line = rendered
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| rendered.lines().count().min(golden.lines().count()) + 1);
        panic!(
            "verdict stream diverges from {} at line {diff_line} \
             ({} rendered vs {} golden lines).\n\
             If the change is intended, regenerate with \
             `UPDATE_GOLDEN=1 cargo test --test golden` and review the diff.",
            path.display(),
            rendered.lines().count(),
            golden.lines().count()
        );
    }
}
