//! Registry-free shim for the subset of the `rand` 0.8 API used by this
//! workspace: `StdRng` + `SeedableRng::seed_from_u64`, the `Rng` extension
//! methods (`gen`, `gen_range`, `gen_bool`), and `seq::SliceRandom`.
//!
//! The build environment has no crates.io access, so the workspace ships
//! its own generator. `StdRng` here is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms, which the golden-file and
//! differential tests rely on. It is **not** a cryptographic RNG; nothing
//! in this repository needs one.

#![forbid(unsafe_code)]

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (the workspace only ever seeds from a `u64`).
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Numeric types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `hi` is inclusive.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo + (rng.next_u64() as u128 % span) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize);

macro_rules! uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

uniform_signed!(i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <f64 as StandardSample>::sample_standard(rng) as $t;
                lo + u * (hi - lo)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <f64 as StandardSample>::sample_standard(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// The user-facing generator extension trait (blanket-implemented for
/// every [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must lie in [0, 1]");
        <f64 as StandardSample>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the same scheme rand uses for
            // `seed_from_u64`.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Slice helpers (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Random slice operations, implemented for every `[T]`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_floats() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5..9);
            assert!((5..9).contains(&v));
            let w = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&w));
            let s = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
