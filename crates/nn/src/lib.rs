//! # dbcatcher-nn
//!
//! A deliberately minimal neural-network substrate, built from scratch so
//! the SR-CNN and OmniAnomaly baselines of the DBCatcher paper can be
//! reproduced without any external ML framework.
//!
//! Design: explicit layers with hand-written forward/backward passes over a
//! small row-major [`Matrix`] type — no autodiff graph. Every layer's
//! gradients are validated against finite differences in its unit tests.
//!
//! Provided building blocks:
//!
//! * [`matrix::Matrix`] — row-major `f64` matrix with the handful of ops
//!   the layers need;
//! * [`dense::Dense`] — fully connected layer;
//! * [`conv1d::Conv1d`] — 1-D convolution (used by the SR-CNN baseline);
//! * [`gru::GruCell`] — gated recurrent unit with BPTT
//!   (used by the OmniAnomaly baseline's encoder);
//! * [`vae`] — diagonal-Gaussian reparameterisation + KL divergence;
//! * [`optim`] — SGD and Adam; [`loss`] — MSE / BCE / Gaussian NLL;
//! * [`activation`] — sigmoid / tanh / ReLU with derivatives.

#![forbid(unsafe_code)]

pub mod activation;
pub mod conv1d;
pub mod dense;
pub mod gru;
pub mod loss;
pub mod matrix;
pub mod optim;
pub mod vae;

pub use matrix::Matrix;

/// Deterministic xorshift RNG for weight initialisation and sampling.
///
/// The baselines must be reproducible across the 20-repetition experiment
/// protocol (paper Fig. 8–10), so all stochastic components take explicit
/// seeds instead of using a global RNG.
#[derive(Debug, Clone)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Creates an RNG from a seed (0 is remapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform sample in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.uniform().max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = XorShiftRng::new(7);
        let mut b = XorShiftRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_zero_seed_ok() {
        let mut r = XorShiftRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = XorShiftRng::new(3);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_in_respects_bounds() {
        let mut r = XorShiftRng::new(3);
        for _ in 0..1000 {
            let u = r.uniform_in(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&u));
        }
    }

    #[test]
    fn normal_mean_and_var_roughly_standard() {
        let mut r = XorShiftRng::new(11);
        let samples: Vec<f64> = (0..20_000).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
