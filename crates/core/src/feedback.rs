//! Online feedback module (paper §III-A, Fig. 6).
//!
//! DBAs mark the verdicts the streaming module produced; the marked
//! records accumulate in a bounded [`FeedbackModule`]. When the detection
//! performance implied by the *current* thresholds drops below the
//! criterion (the paper uses a minimum F-Measure of 75 %, §IV-D3), the
//! module re-learns thresholds with the genetic algorithm by *re-playing*
//! the recorded per-KPI scores under candidate thresholds.
//!
//! Re-playing a record applies the level/state decision to the scores of
//! the *final* window that produced the verdict; the window-expansion
//! dynamics are not re-simulated (DESIGN.md §3 — an approximation that
//! keeps re-learning O(records × population)).

use crate::ga::{learn_thresholds, Genes, GeneticConfig, LearnOutcome};
use crate::levels::level_row;
use crate::pipeline::Verdict;
use crate::state::{determine_state, DbState};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One DBA-marked judgment record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JudgmentRecord {
    /// Aggregated per-KPI scores of the judged window (`NaN` = KPI did not
    /// participate).
    pub scores: Vec<f64>,
    /// The DBA's ground-truth mark: was the database actually abnormal?
    pub label: bool,
}

/// Re-plays a record under candidate genes: would the detector have called
/// it abnormal? Observable outcomes count as abnormal here, matching the
/// default [`crate::config::ResolvePolicy`].
pub fn replay_record(genes: &Genes, record: &JudgmentRecord) -> bool {
    let row = level_row(&record.scores, &genes.alphas, genes.theta);
    match determine_state(&row, genes.max_tolerance) {
        DbState::Healthy => false,
        DbState::Observable | DbState::Abnormal => true,
    }
}

/// F-Measure of candidate genes over a record set.
///
/// Degenerate conventions: no records → 0; records but no positive labels
/// and no false alarms → 1 (nothing to find, nothing invented).
pub fn f_measure_on_records(genes: &Genes, records: &[JudgmentRecord]) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    let (mut tp, mut fp, mut fne) = (0usize, 0usize, 0usize);
    for r in records {
        let predicted = replay_record(genes, r);
        match (predicted, r.label) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fne += 1,
            (false, false) => {}
        }
    }
    if tp == 0 {
        return if fp == 0 && fne == 0 { 1.0 } else { 0.0 };
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fne) as f64;
    2.0 * precision * recall / (precision + recall)
}

/// The bounded store of recent judgment records plus the retraining
/// criterion.
#[derive(Debug, Clone)]
pub struct FeedbackModule {
    records: VecDeque<JudgmentRecord>,
    capacity: usize,
    criterion: f64,
}

impl FeedbackModule {
    /// Creates a module keeping the most recent `capacity` records and
    /// triggering retraining below `criterion` F-Measure (paper: 0.75).
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize, criterion: f64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            records: VecDeque::with_capacity(capacity),
            capacity,
            criterion,
        }
    }

    /// Records a DBA-marked verdict.
    pub fn record(&mut self, verdict: &Verdict, dba_label: bool) {
        self.push(JudgmentRecord {
            scores: verdict.scores.clone(),
            label: dba_label,
        });
    }

    /// Records a raw judgment record.
    pub fn push(&mut self, record: JudgmentRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(record);
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The stored records, oldest first.
    pub fn records(&self) -> Vec<JudgmentRecord> {
        self.records.iter().cloned().collect()
    }

    /// F-Measure the given genes achieve on the stored records.
    pub fn current_f_measure(&self, genes: &Genes) -> f64 {
        let records: Vec<JudgmentRecord> = self.records.iter().cloned().collect();
        f_measure_on_records(genes, &records)
    }

    /// Whether retraining should run: there are marked anomalies to learn
    /// from and the current thresholds miss the criterion ("the adaptive
    /// threshold learning policy will only be activated if the original
    /// thresholds don't meet this criterion", §IV-D3).
    pub fn needs_retraining(&self, genes: &Genes) -> bool {
        let has_positives = self.records.iter().any(|r| r.label);
        has_positives && self.current_f_measure(genes) < self.criterion
    }

    /// Re-learns thresholds over the stored records with the GA.
    pub fn retrain(&self, num_kpis: usize, cfg: &GeneticConfig) -> LearnOutcome {
        let records: Vec<JudgmentRecord> = self.records.iter().cloned().collect();
        learn_thresholds(num_kpis, cfg, |genes| f_measure_on_records(genes, &records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic records: healthy windows score ~0.9 everywhere, abnormal
    /// windows drop one KPI to ~0.3.
    fn synthetic_records(n: usize, kpis: usize) -> Vec<JudgmentRecord> {
        (0..n)
            .map(|i| {
                let label = i % 5 == 0;
                let scores = (0..kpis)
                    .map(|k| {
                        if label && k == i % kpis {
                            0.3
                        } else {
                            0.9 - 0.01 * (i % 3) as f64
                        }
                    })
                    .collect();
                JudgmentRecord { scores, label }
            })
            .collect()
    }

    fn good_genes(kpis: usize) -> Genes {
        Genes {
            alphas: vec![0.7; kpis],
            theta: 0.2,
            max_tolerance: 2,
        }
    }

    #[test]
    fn replay_matches_level_semantics() {
        let genes = good_genes(3);
        let healthy = JudgmentRecord {
            scores: vec![0.9, 0.9, 0.9],
            label: false,
        };
        let abnormal = JudgmentRecord {
            scores: vec![0.9, 0.2, 0.9],
            label: true,
        };
        assert!(!replay_record(&genes, &healthy));
        assert!(replay_record(&genes, &abnormal));
    }

    #[test]
    fn f_measure_perfect_on_separable_records() {
        let records = synthetic_records(50, 4);
        let f1 = f_measure_on_records(&good_genes(4), &records);
        assert!((f1 - 1.0).abs() < 1e-12, "f1 {f1}");
    }

    #[test]
    fn f_measure_degenerate_conventions() {
        assert_eq!(f_measure_on_records(&good_genes(2), &[]), 0.0);
        let all_healthy = vec![
            JudgmentRecord {
                scores: vec![0.9, 0.9],
                label: false
            };
            5
        ];
        assert_eq!(f_measure_on_records(&good_genes(2), &all_healthy), 1.0);
        let missed = vec![
            JudgmentRecord {
                scores: vec![0.9, 0.9],
                label: true
            };
            5
        ];
        assert_eq!(f_measure_on_records(&good_genes(2), &missed), 0.0);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut m = FeedbackModule::new(3, 0.75);
        for i in 0..5 {
            m.push(JudgmentRecord {
                scores: vec![i as f64],
                label: false,
            });
        }
        assert_eq!(m.len(), 3);
        assert_eq!(m.records()[0].scores[0], 2.0);
    }

    #[test]
    fn needs_retraining_only_below_criterion() {
        let mut m = FeedbackModule::new(100, 0.75);
        for r in synthetic_records(50, 4) {
            m.push(r);
        }
        // good thresholds: F1 = 1 → no retraining
        assert!(!m.needs_retraining(&good_genes(4)));
        // absurd thresholds: everything healthy → F1 = 0 → retrain
        let blind = Genes {
            alphas: vec![0.0; 4],
            theta: 0.0,
            max_tolerance: 3,
        };
        assert!(m.needs_retraining(&blind));
    }

    #[test]
    fn no_positive_labels_never_retrains() {
        let mut m = FeedbackModule::new(10, 0.75);
        m.push(JudgmentRecord {
            scores: vec![0.9],
            label: false,
        });
        let blind = Genes {
            alphas: vec![0.0],
            theta: 0.0,
            max_tolerance: 3,
        };
        assert!(!m.needs_retraining(&blind));
    }

    #[test]
    fn retrain_recovers_performance() {
        let mut m = FeedbackModule::new(200, 0.75);
        for r in synthetic_records(100, 4) {
            m.push(r);
        }
        // over-strict thresholds flag everything → precision collapses
        let blind = Genes {
            alphas: vec![0.95; 4],
            theta: 0.01,
            max_tolerance: 0,
        };
        let before = m.current_f_measure(&blind);
        assert!(before < 0.75, "before {before}");
        let outcome = m.retrain(
            4,
            &GeneticConfig {
                generations: 25,
                seed: 11,
                ..GeneticConfig::default()
            },
        );
        assert!(outcome.fitness > 0.95, "after {}", outcome.fitness);
    }

    #[test]
    fn record_from_verdict() {
        let verdict = Verdict {
            db: 1,
            start_tick: 0,
            end_tick: 20,
            state: crate::state::DbState::Abnormal,
            window_size: 20,
            expansions: 0,
            scores: vec![0.2, 0.9],
        };
        let mut m = FeedbackModule::new(10, 0.75);
        m.record(&verdict, true);
        assert_eq!(m.len(), 1);
        assert_eq!(m.records()[0].scores, vec![0.2, 0.9]);
        assert!(m.records()[0].label);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = FeedbackModule::new(0, 0.75);
    }
}
