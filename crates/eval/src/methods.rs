//! Uniform train/test wrappers for DBCatcher and the five baselines.
//!
//! Every method runs the same regime (paper §IV-B): train (and search its
//! parameters) on the training split, freeze everything, evaluate on the
//! testing split. Outputs cover all four of the paper's reporting axes:
//! Precision / Recall / F-Measure, the Window-Size efficiency metric,
//! training time, and retraining time under workload drift.

use crate::metrics::{adjusted_confusion, verdict_ticks, windowed_any, Confusion};
use crate::protocol::{search_threshold_window, ProtocolConfig, SearchedParams};
use dbcatcher_baselines::detector::Detector;
use dbcatcher_baselines::fft::FftDetector;
use dbcatcher_baselines::jumpstarter::JumpStarter;
use dbcatcher_baselines::omni::{OmniAnomaly, OmniConfig};
use dbcatcher_baselines::sr::SrDetector;
use dbcatcher_baselines::srcnn::{SrCnnConfig, SrCnnDetector};
use dbcatcher_core::config::DbCatcherConfig;
use dbcatcher_core::feedback::{f_measure_on_records, JudgmentRecord};
use dbcatcher_core::ga::learn_thresholds;
use dbcatcher_core::pipeline::{detect_series, DbCatcher};
use dbcatcher_workload::dataset::{Dataset, UnitData};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The six compared methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodKind {
    /// Fast Fourier Transform residual detector.
    Fft,
    /// Spectral Residual saliency detector.
    Sr,
    /// SR + CNN discriminator.
    SrCnn,
    /// GRU-VAE reconstruction detector.
    OmniAnomaly,
    /// Compressed-sensing detector.
    JumpStarter,
    /// This paper's system.
    DbCatcher,
}

impl MethodKind {
    /// All methods in the paper's table order.
    pub fn all() -> [MethodKind; 6] {
        [
            MethodKind::Fft,
            MethodKind::Sr,
            MethodKind::SrCnn,
            MethodKind::OmniAnomaly,
            MethodKind::JumpStarter,
            MethodKind::DbCatcher,
        ]
    }

    /// Display name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::Fft => "FFT",
            MethodKind::Sr => "SR",
            MethodKind::SrCnn => "SR-CNN",
            MethodKind::OmniAnomaly => "OmniAnomaly",
            MethodKind::JumpStarter => "JumpStarter",
            MethodKind::DbCatcher => "DBCatcher",
        }
    }
}

/// A trained, frozen method ready for testing.
pub enum TrainedMethod {
    /// A score-producing baseline plus its searched parameters.
    Baseline {
        /// Which method this is.
        kind: MethodKind,
        /// The fitted detector.
        detector: Box<dyn Detector>,
        /// The searched `(window, threshold)`.
        params: SearchedParams,
    },
    /// DBCatcher with GA-learned thresholds.
    Catcher {
        /// Full configuration including learned genes.
        config: DbCatcherConfig,
    },
}

/// One method's full outcome on one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MethodOutcome {
    /// Which method.
    pub method: MethodKind,
    /// Test precision.
    pub precision: f64,
    /// Test recall.
    pub recall: f64,
    /// Test F-Measure.
    pub f_measure: f64,
    /// Average window size needed per detection (efficiency metric).
    pub window_size: f64,
    /// Training wall-clock seconds.
    pub train_secs: f64,
}

/// Builds an untrained baseline detector.
///
/// # Panics
/// Panics when called with [`MethodKind::DbCatcher`] (not a baseline).
pub fn baseline_detector(kind: MethodKind, num_kpis: usize, seed: u64) -> Box<dyn Detector> {
    match kind {
        MethodKind::Fft => Box::new(FftDetector::default()),
        MethodKind::Sr => Box::new(SrDetector::default()),
        MethodKind::SrCnn => Box::new(SrCnnDetector::new(SrCnnConfig {
            seed,
            ..SrCnnConfig::default()
        })),
        MethodKind::OmniAnomaly => Box::new(OmniAnomaly::new(
            OmniConfig {
                seed,
                ..OmniConfig::default()
            },
            num_kpis,
        )),
        MethodKind::JumpStarter => Box::new(JumpStarter::default()),
        MethodKind::DbCatcher => panic!("DBCatcher is not a baseline detector"),
    }
}

/// Unit-level ground truth: any database anomalous per tick.
fn unit_labels(unit: &UnitData) -> Vec<bool> {
    (0..unit.num_ticks())
        .map(|t| unit.any_anomalous(t))
        .collect()
}

/// Trains a method on the training split. Returns the frozen method and
/// the training wall-clock seconds (fit + parameter search, as the paper
/// times it).
pub fn train_method(
    kind: MethodKind,
    train: &Dataset,
    cfg: &ProtocolConfig,
) -> (TrainedMethod, f64) {
    let t0 = Instant::now();
    match kind {
        MethodKind::DbCatcher => {
            let (config, _) = train_dbcatcher(train, cfg);
            (
                TrainedMethod::Catcher { config },
                t0.elapsed().as_secs_f64(),
            )
        }
        _ => {
            let num_kpis = train.units.first().map(|u| u.num_kpis()).unwrap_or(14);
            let mut detector = baseline_detector(kind, num_kpis, cfg.seed ^ kind as u64);
            let unit_series: Vec<&Vec<Vec<Vec<f64>>>> =
                train.units.iter().map(|u| &u.series).collect();
            detector.fit(&unit_series);
            let scores: Vec<Vec<f64>> = train
                .units
                .iter()
                .map(|u| detector.score(&u.series))
                .collect();
            let labels: Vec<Vec<bool>> = train.units.iter().map(unit_labels).collect();
            let params = search_threshold_window(&scores, &labels, cfg);
            (
                TrainedMethod::Baseline {
                    kind,
                    detector,
                    params,
                },
                t0.elapsed().as_secs_f64(),
            )
        }
    }
}

/// DBCatcher's training: stream the training units with the base
/// thresholds, collect DBA-labelled judgment records, and let the GA
/// re-fit the thresholds on them. Returns the learned configuration and
/// the achieved training F-Measure.
pub fn train_dbcatcher(train: &Dataset, cfg: &ProtocolConfig) -> (DbCatcherConfig, f64) {
    let mut records: Vec<JudgmentRecord> = Vec::new();
    for unit in &train.units {
        let (verdicts, _) = detect_series(
            cfg.base_config.clone(),
            &unit.series,
            Some(unit.participation.clone()),
        );
        for v in verdicts {
            let end = (v.end_tick as usize).min(unit.num_ticks());
            let label = (v.start_tick as usize..end).any(|t| unit.labels[v.db][t]);
            records.push(JudgmentRecord {
                scores: v.scores,
                label,
            });
        }
    }
    let num_kpis = cfg.base_config.num_kpis;
    let outcome = learn_thresholds(num_kpis, &cfg.ga, |genes| {
        f_measure_on_records(genes, &records)
    });
    let mut config = cfg.base_config.clone();
    config.apply_genes(&outcome.genes);
    (config, outcome.fitness)
}

/// Evaluates a frozen method on the testing split: point-adjusted
/// confusion at the fixed evaluation granularity, plus the average
/// detection window size used (the Window-Size efficiency metric).
pub fn test_method(
    method: &TrainedMethod,
    test: &Dataset,
    cfg: &ProtocolConfig,
) -> (Confusion, f64) {
    let eval_w = cfg.eval_window;
    match method {
        TrainedMethod::Baseline {
            detector, params, ..
        } => {
            let mut confusion = Confusion::default();
            for unit in &test.units {
                if unit.num_ticks() < params.window.max(eval_w) {
                    continue;
                }
                let scores = detector.score(&unit.series);
                let ticks = verdict_ticks(&scores, params.window, params.threshold);
                let preds = windowed_any(&ticks, eval_w);
                let wl = windowed_any(&unit_labels(unit), eval_w);
                confusion.merge(&adjusted_confusion(&preds, &wl));
            }
            (confusion, params.window as f64)
        }
        TrainedMethod::Catcher { config } => {
            let mut confusion = Confusion::default();
            let mut window_sum = 0u64;
            let mut verdict_count = 0u64;
            for unit in &test.units {
                let mut catcher = DbCatcher::new(config.clone(), unit.num_databases())
                    .with_participation(unit.participation.clone());
                let ticks_n = unit.num_ticks();
                let mut tick_preds = vec![false; ticks_n];
                for t in 0..ticks_n {
                    let frame = unit.tick_matrix(t);
                    for v in catcher.ingest_tick(&frame) {
                        if v.state.is_abnormal() {
                            let end = (v.end_tick as usize).min(ticks_n);
                            tick_preds[v.start_tick as usize..end]
                                .iter_mut()
                                .for_each(|p| *p = true);
                        }
                        window_sum += v.window_size as u64;
                        verdict_count += 1;
                    }
                }
                let preds = windowed_any(&tick_preds, eval_w);
                let wl = windowed_any(&unit_labels(unit), eval_w);
                confusion.merge(&adjusted_confusion(&preds, &wl));
            }
            let avg_window = if verdict_count == 0 {
                0.0
            } else {
                window_sum as f64 / verdict_count as f64
            };
            (confusion, avg_window)
        }
    }
}

/// Full regime: train on `train`, evaluate on `test`.
pub fn run_method(
    kind: MethodKind,
    train: &Dataset,
    test: &Dataset,
    cfg: &ProtocolConfig,
) -> MethodOutcome {
    let (trained, train_secs) = train_method(kind, train, cfg);
    let (confusion, window_size) = test_method(&trained, test, cfg);
    MethodOutcome {
        method: kind,
        precision: confusion.precision(),
        recall: confusion.recall(),
        f_measure: confusion.f_measure(),
        window_size,
        train_secs,
    }
}

/// Retraining time under workload drift (Table IX): the method was
/// trained on workload A and the workload shifts to B — how long until it
/// is ready again?
///
/// Baselines must refit and re-search on B; DBCatcher only re-runs its
/// threshold learner on fresh judgment records from B.
pub fn retrain_seconds(kind: MethodKind, new_train: &Dataset, cfg: &ProtocolConfig) -> f64 {
    let t0 = Instant::now();
    match kind {
        MethodKind::DbCatcher => {
            let _ = train_dbcatcher(new_train, cfg);
        }
        _ => {
            let _ = train_method(kind, new_train, cfg);
        }
    }
    t0.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcatcher_workload::anomaly::AnomalyPlanConfig;
    use dbcatcher_workload::dataset::{DatasetSpec, Subset, WorkloadKind};
    use dbcatcher_workload::profile::RareEventConfig;

    fn tiny_dataset(seed: u64) -> Dataset {
        DatasetSpec {
            name: "tiny".into(),
            kind: WorkloadKind::Sysbench,
            subset: Subset::Mixed,
            num_units: 2,
            ticks: 240,
            databases_per_unit: 5,
            anomalies: AnomalyPlanConfig {
                target_ratio: 0.06,
                start_margin: 40,
                min_duration: 15,
                max_duration: 30,
                gap: 15,
            },
            rare_events: RareEventConfig::default(),
            seed,
        }
        .build()
    }

    fn quick_protocol() -> ProtocolConfig {
        let mut cfg = ProtocolConfig {
            window_grid: vec![20, 40],
            ..ProtocolConfig::default()
        };
        cfg.ga.population = 8;
        cfg.ga.generations = 4;
        cfg
    }

    #[test]
    fn method_names_ordered() {
        let names: Vec<&str> = MethodKind::all().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "FFT",
                "SR",
                "SR-CNN",
                "OmniAnomaly",
                "JumpStarter",
                "DBCatcher"
            ]
        );
    }

    #[test]
    #[should_panic(expected = "not a baseline")]
    fn dbcatcher_is_not_a_baseline() {
        let _ = baseline_detector(MethodKind::DbCatcher, 14, 1);
    }

    #[test]
    fn dbcatcher_end_to_end_outperforms_chance() {
        let ds = tiny_dataset(3);
        let (train, test) = ds.split(0.5);
        let outcome = run_method(MethodKind::DbCatcher, &train, &test, &quick_protocol());
        assert!(
            outcome.f_measure > 0.5,
            "DBCatcher F1 {} too low",
            outcome.f_measure
        );
        assert!(outcome.window_size >= 20.0);
        assert!(outcome.train_secs > 0.0);
    }

    #[test]
    fn fft_end_to_end_runs() {
        let ds = tiny_dataset(5);
        let (train, test) = ds.split(0.5);
        let outcome = run_method(MethodKind::Fft, &train, &test, &quick_protocol());
        assert!(outcome.window_size >= 20.0);
        assert!((0.0..=1.0).contains(&outcome.f_measure));
    }

    #[test]
    fn jumpstarter_end_to_end_runs() {
        let ds = tiny_dataset(7);
        let (train, test) = ds.split(0.5);
        let outcome = run_method(MethodKind::JumpStarter, &train, &test, &quick_protocol());
        assert!((0.0..=1.0).contains(&outcome.f_measure));
    }

    #[test]
    fn train_dbcatcher_learns_genes_in_bounds() {
        let ds = tiny_dataset(9);
        let (train, _) = ds.split(0.5);
        let cfg = quick_protocol();
        let (config, train_f1) = train_dbcatcher(&train, &cfg);
        assert!(config.alphas.iter().all(|&a| (0.0..=1.0).contains(&a)));
        assert!((0.0..=1.0).contains(&train_f1));
    }

    #[test]
    fn retrain_seconds_positive() {
        let ds = tiny_dataset(11);
        let (train, _) = ds.split(0.5);
        let secs = retrain_seconds(MethodKind::DbCatcher, &train, &quick_protocol());
        assert!(secs > 0.0);
    }
}
