//! The paper's two case studies (Fig. 12 and Fig. 13), end to end:
//! storage fragmentation (level-1, critical KPI) and a resource-hungry
//! task (level-2, subtle deviation).
//!
//! ```bash
//! cargo run --release --example case_study
//! ```

use dbcatcher::core::{DbCatcher, DbCatcherConfig};
use dbcatcher::workload::dataset::UnitData;
use dbcatcher::workload::scenario::UnitScenario;

fn run_case(scenario: UnitScenario, expect_db: usize, window: std::ops::Range<usize>) {
    println!("--- {}", scenario.description);
    let data: UnitData = scenario.generate();
    let mut catcher = DbCatcher::new(DbCatcherConfig::default(), data.num_databases())
        .with_participation(data.participation.clone());
    let mut hits = 0;
    let mut false_alarms = 0;
    for tick in 0..data.num_ticks() {
        for v in catcher.ingest_tick(&data.tick_matrix(tick)) {
            if !v.state.is_abnormal() {
                continue;
            }
            let overlaps = v.db == expect_db
                && (v.end_tick as usize) > window.start
                && (v.start_tick as usize) < window.end;
            if overlaps {
                hits += 1;
                println!(
                    "  detected on db {} at window [{}..{})",
                    v.db + 1,
                    v.start_tick,
                    v.end_tick
                );
            } else {
                false_alarms += 1;
            }
        }
    }
    println!("  hits: {hits}, stray alarms: {false_alarms}\n");
    assert!(hits > 0, "case study anomaly must be detected");
}

fn main() {
    println!("# DBCatcher case studies (paper §V)\n");
    run_case(UnitScenario::case_study_fragmentation(7), 1, 400..520);
    run_case(UnitScenario::case_study_resource_hog(7), 1, 350..450);
    println!("both case-study anomalies detected.");
}
