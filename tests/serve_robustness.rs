//! Self-healing daemon tests: probation lifecycle, operator reset,
//! supervisor containment of panicking/wedging shard workers, and the
//! queue-depth-proportional backpressure hint.
//!
//! Companion to `serve_loopback.rs` (happy-path equality); everything
//! here injects a failure and asserts the daemon degrades *gracefully*:
//! bad frames cost strikes instead of the unit, dead workers are
//! replaced from snapshot + WAL with zero accepted ticks lost, and
//! overload hints scale with how saturated the shard actually is.

use dbcatcher::core::config::DbCatcherConfig;
use dbcatcher::core::pipeline::{DbCatcher, Verdict};
use dbcatcher::serve::client::VerdictRecord;
use dbcatcher::serve::server::{DetectionServer, ServeConfig, ServerHandle};
use dbcatcher::serve::{
    emit, fetch_stats, reset_unit, EmitOptions, ShardChaos, UnitStream, READMIT_AFTER, STRIKE_LIMIT,
};
use dbcatcher::workload::scenario::UnitScenario;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

const TICKS: usize = 260;

struct UnitFixture {
    frames: Vec<Vec<Vec<f64>>>,
    participation: Vec<Vec<bool>>,
    dbs: usize,
    kpis: usize,
}

fn unit_frames(seed: u64) -> UnitFixture {
    let data = UnitScenario::quickstart(seed).generate();
    let frames: Vec<_> = (0..TICKS.min(data.num_ticks()))
        .map(|t| data.tick_matrix(t))
        .collect();
    let (dbs, kpis) = (data.num_databases(), data.num_kpis());
    UnitFixture {
        frames,
        participation: data.participation,
        dbs,
        kpis,
    }
}

/// Offline reference that mirrors the daemon's probation substitution:
/// ticks listed in `struck` are ingested as fully-missing (all-NaN)
/// frames, exactly what the worker substitutes for a failed frame.
fn offline_with_strikes(
    frames: &[Vec<Vec<f64>>],
    participation: &[Vec<bool>],
    dbs: usize,
    kpis: usize,
    struck: &[u64],
) -> Vec<(u64, Verdict)> {
    let mut catcher =
        DbCatcher::new(DbCatcherConfig::default(), dbs).with_participation(participation.to_vec());
    let mut out = Vec::new();
    for (t, frame) in frames.iter().enumerate() {
        let substitute;
        let ingest: &[Vec<f64>] = if struck.contains(&(t as u64)) {
            substitute = vec![vec![f64::NAN; kpis]; dbs];
            &substitute
        } else {
            frame
        };
        let report = catcher.try_ingest_tick(ingest).expect("frames ingest");
        out.extend(report.verdicts.into_iter().map(|v| (t as u64, v)));
    }
    out
}

type VerdictKey = (usize, u64, usize, u64, u64, String, usize, u32, Vec<u64>);

fn verdict_key(unit: usize, at_tick: u64, v: &Verdict) -> VerdictKey {
    (
        unit,
        at_tick,
        v.db,
        v.start_tick,
        v.end_tick,
        format!("{:?}", v.state),
        v.window_size,
        v.expansions,
        v.scores
            .iter()
            .map(|s| if s.is_nan() { u64::MAX } else { s.to_bits() })
            .collect(),
    )
}

fn sorted_records(records: &[VerdictRecord]) -> Vec<VerdictKey> {
    let mut out: Vec<_> = records
        .iter()
        .map(|r| verdict_key(r.unit, r.at_tick, &r.verdict))
        .collect();
    out.sort();
    out
}

fn sorted_expected(expected: &[(u64, Verdict)]) -> Vec<VerdictKey> {
    let mut out: Vec<_> = expected
        .iter()
        .map(|(t, v)| verdict_key(0, *t, v))
        .collect();
    out.sort();
    out
}

fn spawn_server(config: ServeConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = DetectionServer::bind("127.0.0.1:0", config).expect("bind ephemeral");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbcatcher_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn stream(fixture: &UnitFixture, frames: Vec<Vec<Vec<f64>>>) -> UnitStream {
    UnitStream {
        unit: 0,
        dbs: fixture.dbs,
        kpis: fixture.kpis,
        participation: Some(fixture.participation.clone()),
        frames,
    }
}

/// One bad frame costs a strike, not the unit: the worker substitutes a
/// missing frame, keeps the detector in lockstep with the wire tick
/// counter, and re-admits the unit to full health after a clean streak.
#[test]
fn one_bad_frame_earns_a_strike_then_the_clean_streak_readmits() {
    let fixture = unit_frames(31);
    let struck = 60u64;
    // A frame missing a database row fails the hardened ingest layer.
    let mut poisoned = fixture.frames.clone();
    poisoned[struck as usize].pop();
    let expected = offline_with_strikes(
        &fixture.frames,
        &fixture.participation,
        fixture.dbs,
        fixture.kpis,
        &[struck],
    );

    let (addr, handle, join) = spawn_server(ServeConfig::default());
    let report = emit(
        addr,
        vec![stream(&fixture, poisoned)],
        &EmitOptions::default(),
    )
    .expect("emit with one bad frame");

    // The strike is reported to the producer, but the stream completes.
    assert_eq!(report.errors.len(), 1, "{:?}", report.errors);
    assert!(
        report.errors[0].contains(&format!("strike 1/{STRIKE_LIMIT}")),
        "strike diagnostics must name the budget: {:?}",
        report.errors[0]
    );
    assert_eq!(report.ticks_accepted, fixture.frames.len() as u64);
    assert_eq!(
        sorted_records(&report.verdicts),
        sorted_expected(&expected),
        "verdicts must equal the offline run with the substituted frame"
    );

    let stats = fetch_stats(addr).expect("stats");
    let unit = stats.units.iter().find(|u| u.unit == 0).expect("unit 0");
    assert!(!unit.degraded, "a single strike must not degrade");
    assert!(
        !unit.probation,
        "the clean streak after the strike must re-admit the unit"
    );
    assert_eq!(unit.strikes, 0, "re-admission clears the strike count");
    assert_eq!(unit.readmissions, 1);
    assert_eq!(unit.ticks, fixture.frames.len() as u64);

    handle.stop();
    join.join().expect("server thread");
}

/// Hitting the strike limit hard-degrades the unit — but an operator
/// `ResetUnit` re-admits it on probation and the stream completes from
/// exactly where the detector stands.
#[test]
fn strike_limit_degrades_until_an_operator_reset_readmits() {
    let fixture = unit_frames(33);
    // Three bad frames closer together than the re-admission streak.
    let struck: Vec<u64> = (0..u64::from(STRIKE_LIMIT))
        .map(|i| 60 + i * (READMIT_AFTER / 2))
        .collect();
    let mut poisoned = fixture.frames.clone();
    for &t in &struck {
        poisoned[t as usize].pop();
    }
    let expected = offline_with_strikes(
        &fixture.frames,
        &fixture.participation,
        fixture.dbs,
        fixture.kpis,
        &struck,
    );

    let (addr, handle, join) = spawn_server(ServeConfig::default());
    let first = emit(
        addr,
        vec![stream(&fixture, poisoned.clone())],
        &EmitOptions::default(),
    )
    .expect("emit runs to the degradation");
    assert!(
        first
            .errors
            .iter()
            .any(|e| e.contains("Degraded") || e.contains("strike limit reached")),
        "the producer must learn the unit degraded: {:?}",
        first.errors
    );
    assert!(
        first.ticks_accepted < fixture.frames.len() as u64 + 1,
        "degraded unit must stop accepting"
    );

    let stats = fetch_stats(addr).expect("stats while degraded");
    let unit = stats.units.iter().find(|u| u.unit == 0).expect("unit 0");
    assert!(unit.degraded, "strike limit must hard-degrade");

    // The detector substituted every struck frame, so its position is
    // exactly one past the last strike when the degradation fired.
    let next = reset_unit(addr, 0).expect("operator reset");
    assert_eq!(
        next,
        struck[STRIKE_LIMIT as usize - 1] + 1,
        "reset must resume from the detector's exact position"
    );

    // The producer re-offers the full (still-poisoned-earlier) stream;
    // `HelloAck{next_tick}` skips everything the detector already holds,
    // so only clean frames remain and the run completes.
    let second = emit(
        addr,
        vec![stream(&fixture, poisoned)],
        &EmitOptions::default(),
    )
    .expect("emit after reset");
    assert!(second.errors.is_empty(), "{:?}", second.errors);

    let stats = fetch_stats(addr).expect("stats after recovery");
    let unit = stats.units.iter().find(|u| u.unit == 0).expect("unit 0");
    assert!(!unit.degraded, "reset must clear the degradation");
    assert!(
        !unit.probation,
        "the post-reset clean streak must complete probation"
    );
    assert_eq!(unit.ticks, fixture.frames.len() as u64);

    // Union of both sessions equals the offline run with substitutions.
    let mut got = sorted_records(&first.verdicts);
    got.extend(sorted_records(&second.verdicts));
    got.sort();
    got.dedup();
    assert_eq!(got, sorted_expected(&expected));

    handle.stop();
    join.join().expect("server thread");
}

/// An injected worker panic mid-stream is contained by the supervisor:
/// the replacement re-owns the shard from snapshot + WAL, the producer
/// rewinds, and the final verdict stream equals the offline run.
#[test]
fn shard_panic_is_contained_and_loses_nothing() {
    let fixture = unit_frames(35);
    let expected = offline_with_strikes(
        &fixture.frames,
        &fixture.participation,
        fixture.dbs,
        fixture.kpis,
        &[],
    );
    let dir = scratch_dir("serve_panic");

    let (addr, handle, join) = spawn_server(ServeConfig {
        shards: 1,
        snapshot_dir: Some(dir.clone()),
        snapshot_every: 16,
        wal_dir: Some(dir.join("wal")),
        fsync_every: 4,
        chaos: Some(ShardChaos::panic_after(140)),
        ..ServeConfig::default()
    });
    let report = emit(
        addr,
        vec![stream(&fixture, fixture.frames.clone())],
        &EmitOptions::default(),
    )
    .expect("emit across the panic");
    assert!(report.errors.is_empty(), "{:?}", report.errors);

    let stats = fetch_stats(addr).expect("stats");
    handle.stop();
    join.join().expect("server thread");

    let restarts: u64 = stats.shard_status.iter().map(|s| s.restarts).sum();
    assert!(
        restarts >= 1,
        "the panic must surface as a supervisor restart"
    );
    assert!(
        stats.shard_status.iter().all(|s| !s.failed),
        "one panic is far under the restart budget"
    );
    assert!(
        stats.shard_status.iter().any(|s| s
            .last_panic
            .as_deref()
            .is_some_and(|p| p.contains("injected"))),
        "the panic payload must be preserved for operators: {:?}",
        stats.shard_status
    );

    // Zero ticks lost: every tick was detected exactly once...
    let unit = stats.units.iter().find(|u| u.unit == 0).expect("unit 0");
    assert_eq!(unit.ticks, fixture.frames.len() as u64);
    assert_eq!(unit.queue_depth, 0);
    // ...and the verdict stream (deduplicated — replay may re-deliver
    // verdicts whose first copy died with the old worker) is offline's.
    let mut got = sorted_records(&report.verdicts);
    got.dedup();
    assert_eq!(got, sorted_expected(&expected));

    let _ = std::fs::remove_dir_all(&dir);
}

/// A wedged worker (alive but stuck) is detected by the heartbeat
/// deadline, fenced, and replaced; the stream completes.
#[test]
fn shard_wedge_is_fenced_and_replaced() {
    let fixture = unit_frames(37);
    let expected = offline_with_strikes(
        &fixture.frames,
        &fixture.participation,
        fixture.dbs,
        fixture.kpis,
        &[],
    );
    let dir = scratch_dir("serve_wedge");

    let (addr, handle, join) = spawn_server(ServeConfig {
        shards: 1,
        snapshot_dir: Some(dir.clone()),
        snapshot_every: 16,
        wal_dir: Some(dir.join("wal")),
        fsync_every: 4,
        chaos: Some(ShardChaos::wedge_after(100)),
        wedge_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    let report = emit(
        addr,
        vec![stream(&fixture, fixture.frames.clone())],
        &EmitOptions::default(),
    )
    .expect("emit across the wedge");
    assert!(report.errors.is_empty(), "{:?}", report.errors);

    let stats = fetch_stats(addr).expect("stats");
    handle.stop();
    join.join().expect("server thread");

    let wedges: u64 = stats.shard_status.iter().map(|s| s.wedges).sum();
    assert!(wedges >= 1, "the stall must be detected as a wedge");
    assert!(stats.shard_status.iter().all(|s| !s.failed));

    let unit = stats.units.iter().find(|u| u.unit == 0).expect("unit 0");
    assert_eq!(unit.ticks, fixture.frames.len() as u64);
    let mut got = sorted_records(&report.verdicts);
    got.dedup();
    assert_eq!(got, sorted_expected(&expected));

    let _ = std::fs::remove_dir_all(&dir);
}

/// The backpressure hint is proportional to shard saturation, not a
/// constant: a full per-unit queue yields hints scaled by its share of
/// the shard channel, never the bare ceiling, never zero.
#[test]
fn backpressure_hint_scales_with_queue_saturation() {
    use dbcatcher::serve::protocol::{decode_response, encode, Request, Response};
    use std::io::{BufRead, BufReader, Write};

    const BASE: u64 = 40;
    const QUEUE_CAP: usize = 8;
    let fixture = unit_frames(39);

    let (addr, handle, join) = spawn_server(ServeConfig {
        max_units: 1,
        shards: 1,
        queue_cap: QUEUE_CAP,
        retry_after_ms: BASE,
        slow_tick: Some(Duration::from_millis(3)),
        ..ServeConfig::default()
    });

    let mut socket = std::net::TcpStream::connect(addr).expect("connect");
    let mut replies = BufReader::new(socket.try_clone().expect("clone"));
    let send = |req: &Request, socket: &mut std::net::TcpStream| {
        socket
            .write_all(format!("{}\n", encode(req)).as_bytes())
            .expect("send");
    };
    send(
        &Request::Hello {
            unit: 0,
            dbs: fixture.dbs,
            kpis: fixture.kpis,
            participation: Some(fixture.participation.clone()),
        },
        &mut socket,
    );
    let mut line = String::new();
    replies.read_line(&mut line).expect("hello ack");

    // Spin on the expected tick: resend immediately on rejection so the
    // queue stays saturated and every rejection samples the hint.
    let mut hints = Vec::new();
    let mut next = 0u64;
    while next < 120 {
        send(
            &Request::Tick {
                unit: 0,
                tick: next,
                frame: fixture.frames[next as usize].clone(),
            },
            &mut socket,
        );
        loop {
            line.clear();
            replies.read_line(&mut line).expect("reply");
            match decode_response(line.trim_end()).expect("decodable reply") {
                Response::Accepted { tick, .. } => {
                    assert_eq!(tick, next);
                    next += 1;
                    break;
                }
                Response::Rejected { retry_after_ms, .. } => {
                    hints.push(retry_after_ms);
                    break;
                }
                Response::Verdict { .. } => {}
                other => panic!("unexpected reply: {other:?}"),
            }
        }
    }
    handle.stop();
    join.join().expect("server thread");

    assert!(!hints.is_empty(), "the burst must trip backpressure");
    assert!(
        hints.iter().all(|&h| (1..=BASE).contains(&h)),
        "hints must stay within [1, ceiling]: {hints:?}"
    );
    // channel_cap = max_units/shards * queue_cap + slack, so one unit's
    // full queue saturates about half the shard channel: the hint must
    // reflect that depth — meaningfully above the floor, below the
    // ceiling a constant hint would sit at.
    let max = *hints.iter().max().expect("non-empty");
    assert!(
        max >= BASE / 4,
        "a saturated queue must scale the hint up: max {max} of {hints:?}"
    );
    assert!(
        max < BASE,
        "a single unit cannot saturate the whole channel, so the hint \
         must stay under the ceiling: max {max}"
    );
}
