//! Root-cause hinting (the paper's stated future work, §V: "how can root
//! cause analysis be performed using database KPI time series?").
//!
//! A verdict already carries the aggregated per-KPI correlation scores of
//! the judged window; [`diagnose`] ranks the KPIs by how far each fell
//! below its threshold, producing the evidence a DBA (or a downstream
//! classifier — see `dbcatcher-sim`'s cause interpretation) starts from.
//! [`root_cause`] condenses the same ranking into a structured
//! [`RootCause`] (KPI + deviation direction + confidence) that machine
//! consumers — notably the fleet-scope epicenter scorer in
//! `dbcatcher-hierarchy` — can evaluate every tick: both entry points are
//! total functions (arity mismatches are truncated, never panicked on).

use crate::config::DbCatcherConfig;
use crate::levels::{score_to_level, Level};
use crate::pipeline::Verdict;
use serde::{Deserialize, Serialize};

/// One KPI's contribution to an abnormal verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KpiDeviation {
    /// KPI index.
    pub kpi: usize,
    /// The aggregated correlation score of the judged window.
    pub score: f64,
    /// How far below the KPI's threshold α_i the score fell (positive =
    /// deviating; the ranking key).
    pub shortfall: f64,
    /// The quantised level.
    pub level: Level,
}

/// A ranked explanation of one verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// The judged database.
    pub db: usize,
    /// Window bounds of the verdict.
    pub start_tick: u64,
    /// One past the last judged tick.
    pub end_tick: u64,
    /// Deviating KPIs, most severe first (level-3 KPIs are omitted).
    pub deviations: Vec<KpiDeviation>,
}

impl Diagnosis {
    /// The single most deviating KPI, if any.
    pub fn primary_suspect(&self) -> Option<&KpiDeviation> {
        self.deviations.first()
    }

    /// Whether any KPI reached level-1 (extreme deviation).
    pub fn has_extreme_deviation(&self) -> bool {
        self.deviations
            .iter()
            .any(|d| d.level == Level::ExtremeDeviation)
    }
}

/// Which way a KPI's correlation score left its healthy band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviationDirection {
    /// Level-1 extreme deviation: the score collapsed well below α·θ —
    /// the KPI decorrelated abruptly.
    SharpDrop,
    /// Level-2 slight deviation: the score sits between α·θ and α — the
    /// KPI is drifting out of correlation.
    Drift,
}

/// One ranked factor of a [`RootCause`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RootCauseFactor {
    /// KPI index.
    pub kpi: usize,
    /// How the KPI deviated.
    pub direction: DeviationDirection,
    /// Shortfall normalised into `[0, 1]` against the worst possible
    /// score (KCD scores live in `[-1, 1]`, so the floor is `α + 1`).
    pub confidence: f64,
    /// Raw shortfall `α − score` (the ranking key).
    pub shortfall: f64,
}

/// A structured, machine-consumable explanation of one verdict: the
/// deviating KPIs ranked most-confident first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RootCause {
    /// The judged database.
    pub db: usize,
    /// Window bounds of the verdict.
    pub start_tick: u64,
    /// One past the last judged tick.
    pub end_tick: u64,
    /// Deviating KPIs, most confident first; empty for healthy verdicts.
    pub factors: Vec<RootCauseFactor>,
}

impl RootCause {
    /// The most confident factor, if any.
    pub fn primary(&self) -> Option<&RootCauseFactor> {
        self.factors.first()
    }
}

/// Ranks a verdict's deviating KPIs against the configuration's
/// thresholds.
///
/// Total: when the verdict's score arity mismatches the configuration,
/// the extra entries on either side are ignored rather than panicking —
/// fleet-scope callers feed verdicts from wire streams they do not
/// control.
pub fn diagnose(verdict: &Verdict, config: &DbCatcherConfig) -> Diagnosis {
    let mut deviations: Vec<KpiDeviation> = verdict
        .scores
        .iter()
        .zip(config.alphas.iter())
        .enumerate()
        .filter(|(_, (s, _))| !s.is_nan())
        .filter_map(|(kpi, (&score, &alpha))| {
            let level = score_to_level(score, alpha, config.theta);
            if level == Level::Correlated {
                return None;
            }
            Some(KpiDeviation {
                kpi,
                score,
                shortfall: alpha - score,
                level,
            })
        })
        .collect();
    deviations.sort_by(|a, b| b.shortfall.total_cmp(&a.shortfall));
    Diagnosis {
        db: verdict.db,
        start_tick: verdict.start_tick,
        end_tick: verdict.end_tick,
        deviations,
    }
}

/// Condenses [`diagnose`] into a structured [`RootCause`].
///
/// Total and allocation-bounded (one `Vec` of at most `num_kpis`
/// factors); the hierarchy epicenter scorer calls this per emitted
/// verdict.
pub fn root_cause(verdict: &Verdict, config: &DbCatcherConfig) -> RootCause {
    let diagnosis = diagnose(verdict, config);
    let factors = diagnosis
        .deviations
        .iter()
        .map(|d| {
            let alpha = d.score + d.shortfall;
            let floor = alpha + 1.0;
            let confidence = if floor > 0.0 {
                (d.shortfall / floor).clamp(0.0, 1.0)
            } else {
                0.0
            };
            RootCauseFactor {
                kpi: d.kpi,
                direction: match d.level {
                    Level::ExtremeDeviation => DeviationDirection::SharpDrop,
                    _ => DeviationDirection::Drift,
                },
                confidence,
                shortfall: d.shortfall,
            }
        })
        .collect();
    RootCause {
        db: diagnosis.db,
        start_tick: diagnosis.start_tick,
        end_tick: diagnosis.end_tick,
        factors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::DbState;

    fn verdict(scores: Vec<f64>) -> Verdict {
        Verdict {
            db: 2,
            start_tick: 40,
            end_tick: 60,
            state: DbState::Abnormal,
            window_size: 20,
            expansions: 0,
            scores,
        }
    }

    fn config(kpis: usize) -> DbCatcherConfig {
        DbCatcherConfig::with_kpis(kpis)
    }

    #[test]
    fn ranks_by_shortfall() {
        // alphas 0.7, theta 0.2
        let d = diagnose(&verdict(vec![0.9, 0.2, 0.55, 0.65]), &config(4));
        let kpis: Vec<usize> = d.deviations.iter().map(|x| x.kpi).collect();
        assert_eq!(kpis, vec![1, 2, 3]);
        assert_eq!(d.primary_suspect().unwrap().kpi, 1);
        assert!(d.has_extreme_deviation());
        assert_eq!(d.deviations[0].level, Level::ExtremeDeviation);
        assert_eq!(d.deviations[1].level, Level::SlightDeviation);
    }

    #[test]
    fn healthy_verdict_has_no_deviations() {
        let d = diagnose(&verdict(vec![0.9, 0.95, 0.99]), &config(3));
        assert!(d.deviations.is_empty());
        assert!(d.primary_suspect().is_none());
        assert!(!d.has_extreme_deviation());
    }

    #[test]
    fn non_participating_kpis_ignored() {
        let d = diagnose(&verdict(vec![f64::NAN, 0.1, f64::NAN]), &config(3));
        assert_eq!(d.deviations.len(), 1);
        assert_eq!(d.deviations[0].kpi, 1);
    }

    #[test]
    fn window_metadata_carried() {
        let d = diagnose(&verdict(vec![0.1]), &config(1));
        assert_eq!(d.db, 2);
        assert_eq!((d.start_tick, d.end_tick), (40, 60));
    }

    #[test]
    fn arity_mismatch_truncates_instead_of_panicking() {
        // Two scores against a 3-KPI config: only the overlap is judged.
        let d = diagnose(&verdict(vec![0.1, 0.2]), &config(3));
        assert_eq!(d.deviations.len(), 2);
        // Three scores against a 2-KPI config: the extra score is ignored.
        let d = diagnose(&verdict(vec![0.1, 0.2, 0.3]), &config(2));
        assert_eq!(d.deviations.len(), 2);
        assert!(d.deviations.iter().all(|x| x.kpi < 2));
    }

    #[test]
    fn root_cause_ranks_and_classifies() {
        // alphas 0.7, theta 0.2 → level-1 below 0.14, level-2 below 0.7.
        let rc = root_cause(&verdict(vec![0.9, 0.1, 0.55, f64::NAN]), &config(4));
        assert_eq!(rc.factors.len(), 2);
        let primary = rc.primary().expect("has factors");
        assert_eq!(primary.kpi, 1);
        assert_eq!(primary.direction, DeviationDirection::SharpDrop);
        assert_eq!(rc.factors[1].kpi, 2);
        assert_eq!(rc.factors[1].direction, DeviationDirection::Drift);
        assert!(primary.confidence > rc.factors[1].confidence);
        for f in &rc.factors {
            assert!((0.0..=1.0).contains(&f.confidence));
        }
        assert_eq!((rc.db, rc.start_tick, rc.end_tick), (2, 40, 60));
    }

    #[test]
    fn root_cause_of_healthy_verdict_is_empty() {
        let rc = root_cause(&verdict(vec![0.9, 0.95]), &config(2));
        assert!(rc.factors.is_empty());
        assert!(rc.primary().is_none());
    }
}
