//! Criterion bench: the signal substrate — FFT, spectral-residual
//! saliency, periodogram and periodicity classification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbcatcher_baselines::sr::SrDetector;
use dbcatcher_signal::fft::rfft_padded;
use dbcatcher_signal::period::{classify, PeriodicityConfig};
use dbcatcher_signal::periodogram::periodogram;
use std::hint::black_box;

fn series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            100.0 + 30.0 * (t * 0.26).sin() + 5.0 * (t * 1.7).cos()
        })
        .collect()
}

fn bench_signal(c: &mut Criterion) {
    let mut group = c.benchmark_group("signal");
    for &n in &[128usize, 1024, 8192] {
        let xs = series(n);
        group.bench_with_input(BenchmarkId::new("rfft", n), &n, |b, _| {
            b.iter(|| rfft_padded(black_box(&xs)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("periodogram", n), &n, |b, _| {
            b.iter(|| periodogram(black_box(&xs)).unwrap())
        });
    }
    let xs = series(600);
    let sr = SrDetector::default();
    group.bench_function("sr_saliency_600", |b| {
        b.iter(|| sr.saliency(black_box(&xs)))
    });
    let cfg = PeriodicityConfig::default();
    group.bench_function("periodicity_classify_600", |b| {
        b.iter(|| classify(black_box(&xs), &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_signal);
criterion_main!(benches);
