//! Reusable per-tick scratch buffers (the hot path's arena).
//!
//! Every [`crate::DbCatcher`] owns one [`TickScratch`] — and since serve
//! shards and fleet workers each own their detectors, each shard/worker
//! thread gets its own arena for free, with no sharing or locking.
//!
//! Ownership rules:
//!
//! * buffers are **borrowed for the duration of one call** and always
//!   left in a reusable state (`clear()` keeps capacity);
//! * nothing in here is detector *state* — snapshots skip it entirely and
//!   a restored detector starts with an empty arena that re-warms within
//!   one tick;
//! * callers that need several buffers at once destructure the struct so
//!   the borrows are visibly disjoint.
//!
//! After a short warmup (capacities grow to the unit's steady shape) the
//! arena makes the non-judging `ingest_tick` path allocation-free; the
//! counting-allocator harness in `tests/zero_alloc.rs` pins that budget.

use crate::matrix::CorrelationMatrix;
use std::collections::HashMap;

/// Cache key for one symmetric pair score within a tick:
/// `(min(db, peer), max(db, peer), kpi, window start, window size)`.
pub(crate) type PairKey = (usize, usize, usize, u64, usize);

/// Reusable buffers for one detector's tick processing.
#[derive(Debug, Clone, Default)]
pub struct TickScratch {
    /// Sanitized frame staging (`[db][kpi]`), filled by
    /// [`crate::ingest::TelemetryHealth::observe_into`].
    pub(crate) sanitized: Vec<Vec<f64>>,
    /// Per-database unused-rule mask for the window being judged.
    pub(crate) usable: Vec<bool>,
    /// Naive backend: min–max-normalised window of the judged database.
    pub(crate) own_norm: Vec<f64>,
    /// Naive backend: min–max-normalised window of the current peer.
    pub(crate) peer_norm: Vec<f64>,
    /// Per-KPI peer scores awaiting aggregation.
    pub(crate) pair_scores: Vec<f64>,
    /// Per-database normalised windows for whole-matrix construction
    /// ([`crate::matrix::CorrelationMatrix::from_windows_into`]).
    pub(crate) norm_windows: Vec<Vec<f64>>,
    /// Symmetric pair-score memo shared by every judgement within one
    /// tick (naive backend); cleared (capacity kept) at the start of
    /// each tick.
    pub(crate) pair_cache: HashMap<PairKey, f64>,
    /// Incremental backend: pooled batch matrices, one per distinct
    /// `(kpi, window)` judged this tick. Entries past `batch_used` are
    /// free-list slots whose inner buffers keep their capacity, so the
    /// pool stops allocating once it has grown to the unit's widest tick
    /// (at most one entry per KPI).
    pub(crate) batch: Vec<BatchEntry>,
    /// Number of live entries in [`Self::batch`] this tick; reset to 0
    /// at the start of each unit's tick instead of clearing the pool.
    pub(crate) batch_used: usize,
}

impl TickScratch {
    /// A fresh, empty arena; buffers size themselves on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One pooled batch matrix: the pairwise scores of every participating
/// database for one `(kpi, window start, window size)`, filled once per
/// tick and read by all of the unit's judgements over that window.
#[derive(Debug, Clone)]
pub(crate) struct BatchEntry {
    /// `(kpi, window start, window size)` the matrix was filled for.
    pub(crate) key: (usize, u64, usize),
    pub(crate) matrix: CorrelationMatrix,
    /// Participation mask the fill used (per database; independent of
    /// the judging database, so every judgement shares it).
    pub(crate) mask: Vec<bool>,
    /// `rows[db]` — whether `db`'s matrix row has been scored. Rows fill
    /// lazily as databases judge, and a row fill skips peers whose own
    /// row is already present (the symmetric entry exists), so each pair
    /// is scored at most once per tick.
    pub(crate) rows: Vec<bool>,
}

impl Default for BatchEntry {
    fn default() -> Self {
        Self {
            key: (0, 0, 0),
            matrix: CorrelationMatrix::zeros(0),
            mask: Vec::new(), // dbclint: allow(hot-path-alloc) — empty free-list slot; buffers grow once, then the pool reuses them
            rows: Vec::new(), // dbclint: allow(hot-path-alloc) — empty free-list slot; buffers grow once, then the pool reuses them
        }
    }
}
