// Known-bad fixture: wall-clock reads in a deterministic scope.
use std::time::Instant;
pub fn stamp() -> Instant {
    let t = Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    t
}
