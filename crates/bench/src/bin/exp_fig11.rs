//! Fig. 11: threshold-search quality — genetic algorithm vs simulated
//! annealing vs random search at an equal evaluation budget.

use dbcatcher_bench::print_scale_banner;
use dbcatcher_eval::experiments::{fig11_threshold_search, Scale};
use dbcatcher_eval::report::{pct, render_table};

fn main() {
    let scale = Scale::from_args();
    print_scale_banner("Fig. 11 — GA vs SAA vs Random threshold search", &scale);
    let (datasets, rows) = fig11_threshold_search(&scale);
    let headers: Vec<String> = std::iter::once("Algorithm".to_string())
        .chain(datasets.iter().cloned())
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, values)| {
            std::iter::once(name.clone())
                .chain(values.iter().map(|&v| pct(v)))
                .collect()
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Fig. 11: mean F-Measure found per search algorithm",
            &header_refs,
            &table_rows,
        )
    );
}
