//! The fleet-scope engine: consumes the per-unit verdict stream and
//! produces the deterministic scope-verdict stream.
//!
//! ## Determinism under arbitrary arrival order
//!
//! Online, verdicts arrive from many shard workers in a racy interleaving;
//! offline, `analyze-fleet` replays a JSONL file. The engine makes both
//! produce **byte-identical** output by being arrival-order-insensitive:
//!
//! 1. incoming verdicts are buffered per `at_tick`, never evaluated on
//!    arrival;
//! 2. a watermark — the minimum over *all roster units* of the highest
//!    `at_tick` each has reported — bounds the ticks that are complete:
//!    per-unit streams are monotone, so no verdict strictly below the
//!    watermark can still arrive (the watermark tick itself may still
//!    gain same-tick verdicts from the minimum unit);
//! 3. complete ticks are evaluated in order, the verdicts within a tick
//!    sorted by the canonical `(unit, db, start_tick)` key;
//! 4. `flush` force-evaluates everything still buffered (shutdown / end
//!    of file), so the final stream is a pure function of the verdict
//!    multiset.
//!
//! Duplicate deliveries (shard WAL replay after a supervisor restart
//! re-emits verdicts) are dropped by a per-`(unit, db)` monotone
//! `start_tick` check, so at-least-once transports feed the engine
//! safely.

use crate::changepoint::{Cusum, CusumConfig, IncidentClass};
use crate::correlate::{CoOccurrence, CorrelateConfig};
use crate::rollup::{scope_scores, verdict_severity, RollupConfig, ScopeTracker, Transition};
use crate::topology::{Scope, Topology};
use dbcatcher_core::config::DbCatcherConfig;
use dbcatcher_core::{root_cause, Verdict};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Full tuning of the fleet-scope engine.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyConfig {
    /// The unit → cluster → region grouping.
    pub topology: Topology,
    /// Rollup and hysteresis thresholds.
    pub rollup: RollupConfig,
    /// CUSUM change-point tuning.
    pub cusum: CusumConfig,
    /// Co-occurrence grouping thresholds.
    pub correlate: CorrelateConfig,
}

impl HierarchyConfig {
    /// Default tuning over a given topology.
    pub fn new(topology: Topology) -> Self {
        HierarchyConfig {
            topology,
            rollup: RollupConfig::default(),
            cusum: CusumConfig::default(),
            correlate: CorrelateConfig::default(),
        }
    }
}

/// One per-unit verdict as the hierarchy layer consumes it — also the
/// hierarchy WAL / `analyze-fleet` JSONL line format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitVerdict {
    /// Originating unit.
    pub unit: usize,
    /// Tick at which the verdict resolved.
    pub at_tick: u64,
    /// The full per-unit verdict (state, window, per-KPI scores).
    pub verdict: Verdict,
}

/// Scope alarm lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScopeState {
    /// The scope entered the alarmed state.
    Alarm,
    /// The scope returned to normal.
    Clear,
}

/// One fleet-scope verdict: an alarm raise or clear at some scope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopeVerdict {
    /// Which scope transitioned.
    pub scope: Scope,
    /// Evaluation tick of the transition.
    pub at_tick: u64,
    /// Raise or clear.
    pub state: ScopeState,
    /// The scope score at the transition (quantised to 1e-9).
    pub score: f64,
    /// CUSUM classification (alarms only).
    pub class: Option<IncidentClass>,
    /// Estimated change onset tick (alarms only).
    pub onset_tick: Option<u64>,
    /// Blamed epicenter unit when a correlated group was flagged.
    pub epicenter: Option<usize>,
    /// Units of the correlated group agreeing on the blamed KPI.
    pub group: Vec<usize>,
    /// The KPI the group agrees on.
    pub blamed_kpi: Option<usize>,
}

/// Quantises a score for stable rendering.
#[inline]
fn quantise(score: f64) -> f64 {
    (score * 1e9).round() / 1e9
}

/// The fleet-scope detection engine.
#[derive(Debug)]
pub struct FleetEngine {
    config: HierarchyConfig,
    det_config: DbCatcherConfig,
    /// Verdicts buffered per tick until the watermark passes them.
    buffer: BTreeMap<u64, Vec<UnitVerdict>>,
    /// Per roster unit: highest `at_tick` observed.
    last_seen: Vec<Option<u64>>,
    /// Per `(unit, db)`: highest verdict `start_tick` accepted.
    dedup: BTreeMap<(usize, usize), u64>,
    /// Per unit: held severity per database (grown on first sight).
    db_severity: Vec<Vec<f64>>,
    unit_severity: Vec<f64>,
    cluster_score: Vec<f64>,
    region_score: Vec<f64>,
    /// Hysteresis per scope: clusters, then regions, then fleet.
    trackers: Vec<ScopeTracker>,
    cusums: Vec<Cusum>,
    cooc: CoOccurrence,
    /// One past the last evaluated tick (0 = nothing evaluated).
    evaluated_through: u64,
    out: Vec<ScopeVerdict>,
    accepted: u64,
    scratch_active: Vec<usize>,
}

impl FleetEngine {
    /// Builds an engine for `kpis`-wide verdict scores.
    pub fn new(config: HierarchyConfig, kpis: usize) -> Self {
        let topology = config.topology.clone();
        let units = topology.num_units;
        let scopes = topology.num_clusters() + topology.num_regions() + 1;
        FleetEngine {
            det_config: DbCatcherConfig::with_kpis(kpis.max(1)),
            cooc: CoOccurrence::new(units, kpis.max(1), config.correlate.window),
            config,
            buffer: BTreeMap::new(),
            last_seen: vec![None; units],
            dedup: BTreeMap::new(),
            db_severity: vec![Vec::new(); units],
            unit_severity: vec![0.0; units],
            cluster_score: vec![0.0; topology.num_clusters()],
            region_score: vec![0.0; topology.num_regions()],
            trackers: vec![ScopeTracker::default(); scopes],
            cusums: vec![Cusum::default(); scopes],
            evaluated_through: 0,
            out: Vec::new(),
            accepted: 0,
            scratch_active: Vec::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Verdicts accepted (deduplicated) so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of scopes currently alarmed.
    pub fn alarms_active(&self) -> usize {
        self.trackers.iter().filter(|t| t.alarmed()).count()
    }

    /// Feeds one verdict. Returns `true` when the verdict is fresh
    /// (in-roster and not a duplicate delivery); duplicates and
    /// out-of-roster units are ignored.
    pub fn observe(&mut self, uv: UnitVerdict) -> bool {
        if !self.config.topology.contains_unit(uv.unit) {
            return false;
        }
        let key = (uv.unit, uv.verdict.db);
        if let Some(&prev) = self.dedup.get(&key) {
            if uv.verdict.start_tick <= prev {
                return false;
            }
        }
        self.dedup.insert(key, uv.verdict.start_tick);
        let seen = &mut self.last_seen[uv.unit];
        *seen = Some(seen.map_or(uv.at_tick, |s| s.max(uv.at_tick)));
        self.accepted += 1;
        self.buffer.entry(uv.at_tick).or_default().push(uv);
        if let Some(watermark) = self.watermark() {
            // Ticks strictly below the watermark are complete. The
            // watermark tick itself is not: the unit holding the minimum
            // may still deliver further same-tick verdicts (several of
            // its databases resolving on one tick).
            self.evaluate_through(watermark);
        }
        true
    }

    /// Force-evaluates everything still buffered (shutdown / end of
    /// offline stream).
    pub fn flush(&mut self) {
        if let Some(&last) = self.buffer.keys().next_back() {
            self.evaluate_through(last.saturating_add(1));
        }
    }

    /// Takes the scope verdicts emitted since the last drain.
    pub fn drain(&mut self) -> Vec<ScopeVerdict> {
        std::mem::take(&mut self.out)
    }

    /// The highest tick guaranteed complete: the minimum over all roster
    /// units of the highest tick each has reported.
    fn watermark(&self) -> Option<u64> {
        let mut min = u64::MAX;
        for seen in &self.last_seen {
            min = min.min((*seen)?);
        }
        Some(min)
    }

    /// Evaluates every tick in `[evaluated_through, end)` in order.
    fn evaluate_through(&mut self, end: u64) {
        while self.evaluated_through < end {
            let tick = self.evaluated_through;
            self.evaluate_tick(tick);
            self.evaluated_through += 1;
        }
    }

    /// Applies the buffered verdicts of one tick, rotates the
    /// correlation window, re-scores every scope and emits hysteresis
    /// transitions.
    fn evaluate_tick(&mut self, tick: u64) {
        if let Some(mut batch) = self.buffer.remove(&tick) {
            batch.sort_by_key(|uv| (uv.unit, uv.verdict.db, uv.verdict.start_tick));
            for uv in &batch {
                self.apply_verdict(uv);
            }
        }
        for (unit, dbs) in self.db_severity.iter().enumerate() {
            let mut max = 0.0f64;
            for &sev in dbs {
                max = max.max(sev);
            }
            self.unit_severity[unit] = max;
        }
        self.cooc.advance();
        let fleet_score = scope_scores(
            &self.unit_severity,
            &self.config.topology,
            &mut self.cluster_score,
            &mut self.region_score,
        );
        let clusters = self.config.topology.num_clusters();
        let regions = self.config.topology.num_regions();
        for cluster in 0..clusters {
            let score = self.cluster_score[cluster];
            self.step_scope(Scope::Cluster(cluster), cluster, tick, score);
        }
        for region in 0..regions {
            let score = self.region_score[region];
            self.step_scope(Scope::Region(region), clusters + region, tick, score);
        }
        self.step_scope(Scope::Fleet, clusters + regions, tick, fleet_score);
    }

    /// Records one verdict's severity and (when abnormal) its KPI
    /// attribution.
    fn apply_verdict(&mut self, uv: &UnitVerdict) {
        let dbs = &mut self.db_severity[uv.unit];
        if uv.verdict.db >= dbs.len() {
            dbs.resize(uv.verdict.db + 1, 0.0);
        }
        let severity = verdict_severity(&uv.verdict, &self.det_config);
        dbs[uv.verdict.db] = severity;
        if uv.verdict.state.is_abnormal() {
            let cause = root_cause(&uv.verdict, &self.det_config);
            self.cooc.note(uv.unit, &cause);
        }
    }

    /// Advances one scope's CUSUM and hysteresis, emitting a scope
    /// verdict on a transition.
    fn step_scope(&mut self, scope: Scope, index: usize, tick: u64, score: f64) {
        self.cusums[index].update(tick, score, &self.config.cusum);
        match self.trackers[index].update(score, &self.config.rollup) {
            Some(Transition::Raise) => {
                let (class, onset) = self.cusums[index].classify(tick, &self.config.cusum);
                let (epicenter, group, blamed_kpi) = match scope {
                    Scope::Cluster(cluster) => self.attribute_cluster(cluster),
                    _ => (None, Vec::new(), None),
                };
                self.out.push(ScopeVerdict {
                    scope,
                    at_tick: tick,
                    state: ScopeState::Alarm,
                    score: quantise(score),
                    class: Some(class),
                    onset_tick: Some(onset),
                    epicenter,
                    group,
                    blamed_kpi,
                });
            }
            Some(Transition::Clear) => {
                self.out.push(ScopeVerdict {
                    scope,
                    at_tick: tick,
                    state: ScopeState::Clear,
                    score: quantise(score),
                    class: None,
                    onset_tick: None,
                    epicenter: None,
                    group: Vec::new(),
                    blamed_kpi: None,
                });
            }
            None => {}
        }
    }

    /// Co-occurrence attribution for a cluster alarm: the agreeing
    /// group, its modal KPI and the epicenter unit carrying the largest
    /// windowed shortfall on that KPI.
    fn attribute_cluster(&mut self, cluster: usize) -> (Option<usize>, Vec<usize>, Option<usize>) {
        let members = self.config.topology.cluster_units(cluster);
        self.scratch_active.clear();
        for unit in members {
            if self.cooc.active_ticks(unit) >= self.config.correlate.min_active_ticks
                && self.cooc.top_kpi(unit).is_some()
            {
                self.scratch_active.push(unit);
            }
        }
        if self.scratch_active.len() < self.config.correlate.min_group {
            return (None, Vec::new(), None);
        }
        // Modal top KPI over active members; ties break to the lowest
        // KPI index via the ascending scan.
        let mut modal_kpi: Option<usize> = None;
        let mut modal_count = 0usize;
        for &unit in &self.scratch_active {
            let Some(kpi) = self.cooc.top_kpi(unit) else {
                continue;
            };
            let count = self
                .scratch_active
                .iter()
                .filter(|&&u| self.cooc.top_kpi(u) == Some(kpi))
                .count();
            let wins = match modal_kpi {
                None => true,
                Some(m) => count > modal_count || (count == modal_count && kpi < m),
            };
            if wins {
                modal_kpi = Some(kpi);
                modal_count = count;
            }
        }
        let Some(kpi) = modal_kpi else {
            return (None, Vec::new(), None);
        };
        let agreeing: Vec<usize> = self
            .scratch_active
            .iter()
            .copied()
            .filter(|&u| self.cooc.top_kpi(u) == Some(kpi))
            .collect();
        let needed = self.config.correlate.agree_fraction * self.scratch_active.len() as f64;
        if (agreeing.len() as f64) < needed {
            return (None, Vec::new(), None);
        }
        // Epicenter: largest windowed shortfall on the agreed KPI; ties
        // break to the lowest unit id.
        let mut epicenter = agreeing[0];
        let mut best = self.cooc.kpi_shortfall(epicenter, kpi);
        for &unit in &agreeing[1..] {
            let shortfall = self.cooc.kpi_shortfall(unit, kpi);
            if shortfall > best {
                best = shortfall;
                epicenter = unit;
            }
        }
        (Some(epicenter), agreeing, Some(kpi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcatcher_core::DbState;

    fn config(units: usize) -> HierarchyConfig {
        HierarchyConfig::new(Topology::new(units, units.max(1), 1).unwrap())
    }

    fn verdict(unit: usize, at_tick: u64, db: usize, abnormal: bool) -> UnitVerdict {
        let start = at_tick.saturating_sub(19);
        UnitVerdict {
            unit,
            at_tick,
            verdict: Verdict {
                db,
                start_tick: start,
                end_tick: at_tick + 1,
                state: if abnormal {
                    DbState::Abnormal
                } else {
                    DbState::Healthy
                },
                window_size: 20,
                expansions: 0,
                scores: if abnormal {
                    vec![0.05, 0.5, 0.9]
                } else {
                    vec![0.9, 0.95, 0.9]
                },
            },
        }
    }

    /// Runs a set of verdicts through an engine in the given order and
    /// returns the rendered output stream.
    fn run(order: &[UnitVerdict], units: usize) -> Vec<ScopeVerdict> {
        let mut engine = FleetEngine::new(config(units), 3);
        for uv in order {
            engine.observe(uv.clone());
        }
        engine.flush();
        engine.drain()
    }

    #[test]
    fn watermark_holds_back_incomplete_ticks() {
        let mut engine = FleetEngine::new(config(2), 3);
        engine.observe(verdict(0, 19, 0, true));
        // Unit 1 has not reported: nothing may evaluate yet.
        assert_eq!(engine.evaluated_through, 0);
        engine.observe(verdict(1, 19, 0, true));
        // Ticks strictly below the watermark (19) are complete; tick 19
        // itself may still gain same-tick verdicts.
        assert_eq!(engine.evaluated_through, 19);
        engine.observe(verdict(0, 39, 0, false));
        engine.observe(verdict(1, 39, 0, false));
        assert_eq!(engine.evaluated_through, 39);
        engine.flush();
        assert_eq!(engine.evaluated_through, 40);
    }

    #[test]
    fn arrival_order_does_not_change_output() {
        // Same verdict multiset delivered under three different valid
        // interleavings (each unit's own stream stays monotone, as the
        // transport guarantees): round-robin per tick, unit-major, and
        // unit-major in a different unit order.
        let ticks = [19u64, 39, 59, 79];
        let mut round_robin = Vec::new();
        for tick in ticks {
            for unit in 0..3 {
                round_robin.push(verdict(unit, tick, 0, tick == 39 || tick == 59));
            }
        }
        let unit_major = |order: [usize; 3]| {
            let mut out = Vec::new();
            for unit in order {
                for tick in ticks {
                    out.push(verdict(unit, tick, 0, tick == 39 || tick == 59));
                }
            }
            out
        };
        let a = run(&round_robin, 3);
        let b = run(&unit_major([0, 1, 2]), 3);
        let c = run(&unit_major([2, 0, 1]), 3);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(!a.is_empty(), "abnormal burst must raise an alarm");
    }

    #[test]
    fn duplicate_deliveries_are_dropped() {
        let mut engine = FleetEngine::new(config(1), 3);
        assert!(engine.observe(verdict(0, 19, 0, true)));
        assert!(!engine.observe(verdict(0, 19, 0, true)));
        assert_eq!(engine.accepted(), 1);
    }

    #[test]
    fn out_of_roster_units_are_ignored() {
        let mut engine = FleetEngine::new(config(1), 3);
        assert!(!engine.observe(verdict(7, 19, 0, true)));
        assert_eq!(engine.accepted(), 0);
    }

    #[test]
    fn correlated_burst_flags_epicenter() {
        let mut engine = FleetEngine::new(config(3), 3);
        // All three units abnormal on the same KPI profile across two
        // windows; unit 1 gets an extra abnormal database, making it
        // the heaviest shortfall carrier.
        for tick in [19u64, 39] {
            for unit in 0..3 {
                engine.observe(verdict(unit, tick, 0, true));
            }
            engine.observe(verdict(1, tick, 1, true));
        }
        engine.flush();
        let out = engine.drain();
        let alarm = out
            .iter()
            .find(|sv| sv.state == ScopeState::Alarm && matches!(sv.scope, Scope::Cluster(_)))
            .expect("cluster alarm");
        assert_eq!(alarm.epicenter, Some(1));
        assert_eq!(alarm.group, vec![0, 1, 2]);
        assert_eq!(alarm.blamed_kpi, Some(0));
        assert_eq!(alarm.class, Some(IncidentClass::SuddenIncident));
        assert!(alarm.onset_tick.is_some());
    }

    #[test]
    fn alarm_clears_after_recovery() {
        let mut engine = FleetEngine::new(config(2), 3);
        for tick in [19u64, 39] {
            for unit in 0..2 {
                engine.observe(verdict(unit, tick, 0, true));
            }
        }
        for tick in [59u64, 79] {
            for unit in 0..2 {
                engine.observe(verdict(unit, tick, 0, false));
            }
        }
        engine.flush();
        let out = engine.drain();
        let states: Vec<ScopeState> = out
            .iter()
            .filter(|sv| sv.scope == Scope::Fleet)
            .map(|sv| sv.state)
            .collect();
        assert_eq!(states, vec![ScopeState::Alarm, ScopeState::Clear]);
        assert_eq!(engine.alarms_active(), 0);
    }

    #[test]
    fn scope_verdict_round_trips_through_json() {
        let sv = ScopeVerdict {
            scope: Scope::Cluster(2),
            at_tick: 40,
            state: ScopeState::Alarm,
            score: 0.5,
            class: Some(IncidentClass::SlowRegression),
            onset_tick: Some(12),
            epicenter: Some(3),
            group: vec![3, 4],
            blamed_kpi: Some(8),
        };
        let text = serde_json::to_string(&sv).unwrap();
        let back: ScopeVerdict = serde_json::from_str(&text).unwrap();
        assert_eq!(back, sv);
    }
}
