//! Table IV: the Sysbench/TPCC parameter spaces and the offered rates the
//! throughput model assigns to their corners.

use dbcatcher_eval::report::render_table;
use dbcatcher_workload::sysbench::SysbenchRun;
use dbcatcher_workload::tpcc::TpccRun;

fn main() {
    println!("# Table IV — test parameter space for Sysbench and TPCC");
    println!(
        "{}",
        render_table(
            "Table IV (upper): Sysbench parameter space",
            &["Dataset", "Table", "Thread", "Item", "Time(m)"],
            &[
                vec![
                    "Sysbench I".into(),
                    "5-20".into(),
                    "4-64".into(),
                    "100000".into(),
                    "0.5-1".into()
                ],
                vec![
                    "Sysbench II".into(),
                    "10".into(),
                    "4-8-16-32".into(),
                    "100000".into(),
                    "0.5".into()
                ],
            ],
        )
    );
    println!(
        "{}",
        render_table(
            "Table IV (lower): TPCC parameter space",
            &["Dataset", "Warehouse", "Thread", "Warmup(m)", "Time(m)"],
            &[
                vec![
                    "TPCC I".into(),
                    "5-20".into(),
                    "4-24".into(),
                    "0.5-1".into(),
                    "0.5-1".into()
                ],
                vec![
                    "TPCC II".into(),
                    "10".into(),
                    "4-8-16-24".into(),
                    "0.5".into(),
                    "0.5".into()
                ],
            ],
        )
    );

    // implied offered rates at the corners of the spaces
    let mut rows = Vec::new();
    for (tables, threads) in [(5usize, 4usize), (20, 64), (10, 16)] {
        let run = SysbenchRun {
            tables,
            threads,
            items: 100_000,
            duration_ticks: 6,
        };
        let (r, w) = run.offered_rate();
        rows.push(vec![
            format!("sysbench t={tables} c={threads}"),
            format!("{r:.0} reads/s"),
            format!("{w:.0} writes/s"),
        ]);
    }
    for (wh, threads) in [(5usize, 4usize), (20, 24), (10, 16)] {
        let run = TpccRun {
            warehouses: wh,
            threads,
            warmup_ticks: 0,
            duration_ticks: 6,
        };
        let (r, w) = run.offered_rate();
        rows.push(vec![
            format!("tpcc w={wh} c={threads}"),
            format!("{r:.0} reads/s"),
            format!("{w:.0} writes/s"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Throughput model: offered load at parameter-space corners",
            &["Configuration", "Reads", "Writes"],
            &rows,
        )
    );
}
