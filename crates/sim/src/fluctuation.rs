//! Temporal fluctuations (paper §II-D, Fig. 5).
//!
//! Fluctuations are *minor deviations at individual points* that return to
//! normal by themselves — maintenance tasks, cache warm-ups, imperfect load
//! balancing. They are explicitly **not** anomalies, and DBCatcher's
//! flexible time window exists precisely to avoid alarming on them.
//!
//! The process is per-database: fluctuation events start with a small
//! probability each tick, last a couple of ticks, and multiply a random
//! subset of KPIs by a modest factor.

use crate::kpi::NUM_KPIS;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the fluctuation process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FluctuationConfig {
    /// Per-tick probability that a new fluctuation event starts on a
    /// database.
    pub start_prob: f64,
    /// Minimum event duration in ticks.
    pub min_duration: usize,
    /// Maximum event duration in ticks (inclusive).
    pub max_duration: usize,
    /// Maximum relative amplitude, e.g. `0.3` for ±30 %.
    pub max_amplitude: f64,
    /// How many KPIs an event touches at most.
    pub max_kpis: usize,
}

impl Default for FluctuationConfig {
    fn default() -> Self {
        // "minor deviations at individual points" (§II-D): strong enough
        // to push a KPI into the level-2 band, not to fake an anomaly
        Self {
            start_prob: 0.01,
            min_duration: 1,
            max_duration: 3,
            max_amplitude: 0.15,
            max_kpis: 3,
        }
    }
}

/// A currently active fluctuation on one database.
#[derive(Debug, Clone)]
struct ActiveFluctuation {
    remaining: usize,
    /// Multiplicative factor per KPI (1.0 = untouched).
    factors: [f64; NUM_KPIS],
}

/// The per-database fluctuation process.
#[derive(Debug, Clone)]
pub struct FluctuationProcess {
    config: FluctuationConfig,
    active: Vec<Option<ActiveFluctuation>>,
}

impl FluctuationProcess {
    /// Creates the process for `num_databases` databases.
    pub fn new(num_databases: usize, config: FluctuationConfig) -> Self {
        Self {
            config,
            active: vec![None; num_databases],
        }
    }

    /// Disables fluctuations entirely (useful for clean-room tests).
    pub fn disabled(num_databases: usize) -> Self {
        Self::new(
            num_databases,
            FluctuationConfig {
                start_prob: 0.0,
                ..FluctuationConfig::default()
            },
        )
    }

    /// Advances one tick and returns, for each database, the per-KPI
    /// multiplicative factors to apply (1.0 everywhere when quiet).
    pub fn tick(&mut self, rng: &mut StdRng) -> Vec<[f64; NUM_KPIS]> {
        let cfg = self.config.clone();
        self.active
            .iter_mut()
            .map(|slot| {
                // expire / continue an active event
                if let Some(active) = slot {
                    let factors = active.factors;
                    active.remaining -= 1;
                    if active.remaining == 0 {
                        *slot = None;
                    }
                    return factors;
                }
                // maybe start a new one
                if cfg.start_prob > 0.0 && rng.gen_bool(cfg.start_prob.min(1.0)) {
                    let duration = rng.gen_range(cfg.min_duration..=cfg.max_duration).max(1);
                    let mut factors = [1.0; NUM_KPIS];
                    let touched = rng.gen_range(1..=cfg.max_kpis.clamp(1, NUM_KPIS));
                    for _ in 0..touched {
                        let k = rng.gen_range(0..NUM_KPIS);
                        let amp = rng.gen_range(-cfg.max_amplitude..=cfg.max_amplitude);
                        factors[k] = (1.0 + amp).max(0.05);
                    }
                    let fl = ActiveFluctuation {
                        remaining: duration,
                        factors,
                    };
                    let out = fl.factors;
                    if duration > 1 {
                        *slot = Some(ActiveFluctuation {
                            remaining: duration - 1,
                            factors: fl.factors,
                        });
                    }
                    return out;
                }
                [1.0; NUM_KPIS]
            })
            .collect()
    }

    /// Whether any fluctuation is currently active on `db`.
    pub fn is_active(&self, db: usize) -> bool {
        self.active.get(db).map(|s| s.is_some()).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn disabled_process_is_identity() {
        let mut p = FluctuationProcess::disabled(3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let factors = p.tick(&mut rng);
            assert_eq!(factors.len(), 3);
            for db in &factors {
                assert!(db.iter().all(|&f| f == 1.0));
            }
        }
    }

    #[test]
    fn events_eventually_fire_and_expire() {
        let mut p = FluctuationProcess::new(
            2,
            FluctuationConfig {
                start_prob: 0.5,
                ..FluctuationConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(42);
        let mut fired = false;
        for _ in 0..100 {
            let factors = p.tick(&mut rng);
            if factors.iter().any(|db| db.iter().any(|&f| f != 1.0)) {
                fired = true;
            }
        }
        assert!(fired, "fluctuations never fired at p=0.5");
        // With start_prob back to zero, any active event must drain.
        p.config.start_prob = 0.0;
        for _ in 0..10 {
            p.tick(&mut rng);
        }
        assert!(!p.is_active(0) && !p.is_active(1));
    }

    #[test]
    fn amplitude_bounded() {
        let cfg = FluctuationConfig {
            start_prob: 1.0,
            max_amplitude: 0.2,
            ..FluctuationConfig::default()
        };
        let mut p = FluctuationProcess::new(1, cfg);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let factors = p.tick(&mut rng);
            for &f in &factors[0] {
                assert!((0.79..=1.21).contains(&f) || f == 1.0, "factor {f}");
            }
        }
    }

    #[test]
    fn duration_respected() {
        let cfg = FluctuationConfig {
            start_prob: 1.0,
            min_duration: 3,
            max_duration: 3,
            max_amplitude: 0.3,
            max_kpis: 14,
        };
        let mut p = FluctuationProcess::new(1, cfg);
        let mut rng = StdRng::seed_from_u64(5);
        // first tick starts an event lasting exactly 3 ticks
        let f1 = p.tick(&mut rng);
        assert!(p.is_active(0));
        let f2 = p.tick(&mut rng);
        // factors stay identical across the event's lifetime
        assert_eq!(f1[0], f2[0]);
    }

    #[test]
    fn is_active_out_of_range_false() {
        let p = FluctuationProcess::disabled(1);
        assert!(!p.is_active(99));
    }
}
