// Known-bad fixture: unsafe is NOT exempt inside test code.
#[cfg(test)]
mod tests {
    #[test]
    fn peek() {
        let x = 1u32;
        let p = &x as *const u32;
        let y = unsafe { *p };
        assert_eq!(y, 1);
    }
}
