//! TPC-C-like workload construction (paper Table IV).
//!
//! * **TPCC I** (irregular): warehouses 5–20, threads 4–24, warmup 0.5–1
//!   minute, run 0.5–1 minute — parameters resampled per run;
//! * **TPCC II** (periodic): 10 warehouses, threads cycling 4-8-16-24,
//!   half a minute per step.
//!
//! TPC-C is write-heavy relative to sysbench `oltp_read_write`: the
//! New-Order/Payment mix produces roughly even reads and writes. Warmup
//! phases ramp the rate linearly, which is visible in the KPI series just
//! as it is on a real run.

use crate::profile::LoadProfile;
use crate::sysbench::TICKS_PER_HALF_MINUTE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Transactions per second sustained by one TPC-C terminal thread.
pub const PER_THREAD_TPS: f64 = 45.0;

/// SQL requests issued per TPC-C transaction (New-Order touches ~10 rows).
pub const REQUESTS_PER_TX: f64 = 6.0;

/// Fraction of TPC-C requests that are reads.
pub const READ_FRACTION: f64 = 0.54;

/// One TPC-C run configuration from the Table IV space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpccRun {
    /// Warehouses (5–20); more warehouses reduce contention and raise
    /// throughput mildly.
    pub warehouses: usize,
    /// Terminal threads (4–24).
    pub threads: usize,
    /// Warmup duration in ticks.
    pub warmup_ticks: usize,
    /// Measured-run duration in ticks.
    pub duration_ticks: usize,
}

impl TpccRun {
    /// Steady-state offered (reads, writes) per second.
    pub fn offered_rate(&self) -> (f64, f64) {
        let eff_threads = (self.threads as f64).powf(0.85);
        let wh_bonus = (self.warehouses as f64 / 10.0).powf(0.2);
        let total = PER_THREAD_TPS * REQUESTS_PER_TX * eff_threads * wh_bonus;
        (total * READ_FRACTION, total * (1.0 - READ_FRACTION))
    }

    /// Segment plan for this run including the linear warmup ramp.
    pub fn plan(&self) -> Vec<(f64, f64, usize)> {
        let (r, w) = self.offered_rate();
        let mut plan = Vec::with_capacity(self.warmup_ticks + 1);
        for i in 0..self.warmup_ticks {
            let frac = (i + 1) as f64 / (self.warmup_ticks + 1) as f64;
            plan.push((r * frac, w * frac, 1));
        }
        plan.push((r, w, self.duration_ticks.max(1)));
        plan
    }
}

/// Builds the **TPCC I** (irregular) profile.
pub fn tpcc_i_profile(seed: u64, horizon_ticks: usize) -> LoadProfile {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut plan = Vec::new();
    let mut covered = 0usize;
    while covered < horizon_ticks.max(1) {
        let run = TpccRun {
            warehouses: rng.gen_range(5..=20),
            threads: rng.gen_range(4..=24),
            warmup_ticks: rng.gen_range(TICKS_PER_HALF_MINUTE..=2 * TICKS_PER_HALF_MINUTE),
            duration_ticks: rng.gen_range(TICKS_PER_HALF_MINUTE..=2 * TICKS_PER_HALF_MINUTE),
        };
        for seg in run.plan() {
            covered += seg.2;
            plan.push(seg);
        }
    }
    LoadProfile::Segments { plan, noise: 0.06 }
}

/// Builds the **TPCC II** (periodic) profile: 4-8-16-24 thread staircase.
pub fn tpcc_ii_profile() -> LoadProfile {
    let plan = [4usize, 8, 16, 24]
        .iter()
        .map(|&threads| {
            let run = TpccRun {
                warehouses: 10,
                threads,
                warmup_ticks: 0,
                duration_ticks: TICKS_PER_HALF_MINUTE,
            };
            let (r, w) = run.offered_rate();
            (r, w, TICKS_PER_HALF_MINUTE)
        })
        .collect();
    LoadProfile::Segments { plan, noise: 0.04 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcatcher_signal::period::{classify, PeriodicityConfig};

    #[test]
    fn write_heavier_than_sysbench() {
        let run = TpccRun {
            warehouses: 10,
            threads: 16,
            warmup_ticks: 0,
            duration_ticks: 6,
        };
        let (r, w) = run.offered_rate();
        let write_frac = w / (r + w);
        assert!(write_frac > 0.4, "write fraction {write_frac}");
    }

    #[test]
    fn warmup_ramps_linearly() {
        let run = TpccRun {
            warehouses: 10,
            threads: 8,
            warmup_ticks: 4,
            duration_ticks: 6,
        };
        let plan = run.plan();
        assert_eq!(plan.len(), 5);
        for pair in plan.windows(2) {
            assert!(pair[1].0 > pair[0].0, "ramp not increasing");
        }
    }

    #[test]
    fn more_threads_more_throughput() {
        let lo = TpccRun {
            warehouses: 10,
            threads: 4,
            warmup_ticks: 0,
            duration_ticks: 6,
        };
        let hi = TpccRun {
            warehouses: 10,
            threads: 24,
            warmup_ticks: 0,
            duration_ticks: 6,
        };
        assert!(hi.offered_rate().0 > lo.offered_rate().0);
    }

    #[test]
    fn tpcc_ii_is_periodic() {
        let loads = tpcc_ii_profile().generate(240, 3);
        let reads: Vec<f64> = loads.iter().map(|l| l.reads).collect();
        let verdict = classify(&reads, &PeriodicityConfig::default()).unwrap();
        assert!(verdict.periodic, "{verdict:?}");
    }

    #[test]
    fn tpcc_i_is_mostly_irregular() {
        // Random segment plans occasionally alias into a weak pseudo-period,
        // so assert over several seeds instead of one.
        let mut periodic = 0;
        for seed in 0..8u64 {
            let loads = tpcc_i_profile(seed, 480).generate(480, seed);
            let reads: Vec<f64> = loads.iter().map(|l| l.reads).collect();
            if classify(&reads, &PeriodicityConfig::default())
                .unwrap()
                .periodic
            {
                periodic += 1;
            }
        }
        assert!(
            periodic <= 2,
            "{periodic}/8 TPCC I traces classified periodic"
        );
    }

    #[test]
    fn tpcc_i_covers_horizon() {
        assert_eq!(tpcc_i_profile(4, 200).generate(200, 4).len(), 200);
    }
}
