//! Database-state determination (paper §III-C, Fig. 7).
//!
//! The counts of correlation levels across a database's KPIs decide the
//! window's state:
//!
//! * any level-1 KPI → **abnormal**;
//! * some level-2 KPIs, fewer than the maximum tolerance deviation number
//!   → **observable** (the window will expand);
//! * level-2 KPIs at or beyond the tolerance → **abnormal**;
//! * all participating KPIs level-3 → **healthy**.
//!
//! *Observable* is transitional: the ultimate state is always healthy or
//! abnormal (paper §IV-A3).

use crate::levels::LevelRow;
use serde::{Deserialize, Serialize};

/// State of one database over one time window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DbState {
    /// All participating KPIs correlated.
    Healthy,
    /// Slight deviations within tolerance — expand the window and re-judge.
    Observable,
    /// Extreme deviation, or slight deviations beyond tolerance.
    Abnormal,
}

impl DbState {
    /// Whether this is the abnormal final state.
    pub fn is_abnormal(self) -> bool {
        matches!(self, DbState::Abnormal)
    }

    /// Whether this state still needs window expansion.
    pub fn is_transitional(self) -> bool {
        matches!(self, DbState::Observable)
    }
}

/// Fig. 7's decision procedure over a database's level row.
pub fn determine_state(row: &LevelRow, max_tolerance: usize) -> DbState {
    let (l1, l2, _l3) = row.counts();
    if l1 > 0 {
        DbState::Abnormal
    } else if l2 == 0 {
        DbState::Healthy
    } else if l2 < max_tolerance {
        DbState::Observable
    } else {
        DbState::Abnormal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::level_row;

    fn row(scores: &[f64]) -> LevelRow {
        // alpha 0.7, theta 0.2 → <0.5 L1, <0.7 L2, else L3
        level_row(scores, &vec![0.7; scores.len()], 0.2)
    }

    #[test]
    fn any_level_one_is_abnormal() {
        let r = row(&[0.9, 0.9, 0.3]);
        assert_eq!(determine_state(&r, 3), DbState::Abnormal);
    }

    #[test]
    fn all_level_three_is_healthy() {
        let r = row(&[0.9, 0.95, 0.85]);
        assert_eq!(determine_state(&r, 2), DbState::Healthy);
    }

    #[test]
    fn few_level_two_is_observable() {
        let r = row(&[0.9, 0.6, 0.9]);
        assert_eq!(determine_state(&r, 2), DbState::Observable);
    }

    #[test]
    fn too_many_level_two_is_abnormal() {
        let r = row(&[0.6, 0.6, 0.9]);
        assert_eq!(determine_state(&r, 2), DbState::Abnormal);
    }

    #[test]
    fn zero_tolerance_never_observable() {
        let r = row(&[0.9, 0.6, 0.9]);
        assert_eq!(determine_state(&r, 0), DbState::Abnormal);
    }

    #[test]
    fn non_participating_kpis_ignored() {
        let r = row(&[f64::NAN, f64::NAN, 0.9]);
        assert_eq!(determine_state(&r, 2), DbState::Healthy);
    }

    #[test]
    fn all_non_participating_is_healthy() {
        // an unused database casts no vote — treated as healthy
        let r = row(&[f64::NAN, f64::NAN]);
        assert_eq!(determine_state(&r, 2), DbState::Healthy);
    }

    #[test]
    fn state_predicates() {
        assert!(DbState::Abnormal.is_abnormal());
        assert!(!DbState::Healthy.is_abnormal());
        assert!(DbState::Observable.is_transitional());
        assert!(!DbState::Abnormal.is_transitional());
    }
}
