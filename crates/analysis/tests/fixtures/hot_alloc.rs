// Known-bad fixture: allocation shapes in a hot-scoped module.
pub fn tick(xs: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    out.extend(xs.iter().map(|v| v * 2.0));
    let copy = xs.to_vec();
    drop(copy);
    out
}

pub fn label() -> &'static str {
    // A raw string mentioning Vec::new() must not fire.
    let _ = r#"Vec::new() inside a raw string"#;
    "ok"
}

#[cfg(test)]
mod tests {
    #[test]
    fn alloc_in_tests_is_fine() {
        let v = vec![1.0, 2.0];
        assert_eq!(v.len(), 2);
    }
}
