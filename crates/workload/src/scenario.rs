//! Ready-made single-unit scenarios for examples, case studies and docs.
//!
//! Each scenario wires a load profile, a unit simulator and a hand-placed
//! anomaly into a [`UnitData`] recording — the shape the detector and the
//! paper's case studies (Fig. 12, Fig. 13) consume.

use crate::dataset::{Dataset, Subset, UnitData, WorkloadKind};
use crate::profile::LoadProfile;
use crate::tencent::Archetype;
use dbcatcher_sim::faults::{corrupt_series, CollectorFault, FaultPreset};
use dbcatcher_sim::{
    AnomalyEffect, CorrelatedKind, CorrelatedScenario, Kpi, Modifier, UnitConfig, UnitSim, NUM_KPIS,
};
use serde::{Deserialize, Serialize};

/// A self-contained one-unit scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnitScenario {
    /// Human-readable description (printed by the examples).
    pub description: String,
    /// Load profile driving the unit.
    pub profile: LoadProfile,
    /// Databases in the unit.
    pub num_databases: usize,
    /// Ticks to record.
    pub ticks: usize,
    /// Hand-placed anomalies.
    pub modifiers: Vec<Modifier>,
    /// Collector faults corrupting the recording on its way to the
    /// detector (telemetry trouble, not anomalies — labels untouched).
    pub faults: Vec<CollectorFault>,
    /// RNG seed.
    pub seed: u64,
}

impl UnitScenario {
    /// The quickstart scenario: a gaming unit with a defective
    /// load-balancing episode — strong enough to alarm with default
    /// thresholds, small enough to run in a doc test.
    pub fn quickstart(seed: u64) -> Self {
        Self {
            description: "Gaming unit; defective load balancing routes ~50% of reads \
                          to database 2 during ticks 305..365 (paper Fig. 4)"
                .into(),
            profile: Archetype::Gaming.profile(seed),
            num_databases: 5,
            ticks: 600,
            modifiers: vec![Modifier {
                db: 2,
                ticks: 305..365,
                effect: AnomalyEffect::LoadSkew { extra_share: 0.5 },
            }],
            faults: Vec::new(),
            seed,
        }
    }

    /// Fig. 12 case study: storage fragmentation makes one database's
    /// `Real Capacity` trend diverge — a level-1 (critical-KPI) anomaly.
    pub fn case_study_fragmentation(seed: u64) -> Self {
        Self {
            description: "E-commerce unit; delete/insert churn fragments database 1's \
                          storage from tick 400 (paper Fig. 12, level-1 capacity case)"
                .into(),
            profile: Archetype::Ecommerce.profile(seed),
            num_databases: 5,
            ticks: 700,
            modifiers: vec![Modifier {
                db: 1,
                ticks: 400..520,
                effect: AnomalyEffect::Fragmentation {
                    growth_per_tick: 0.015,
                },
            }],
            faults: Vec::new(),
            seed,
        }
    }

    /// Fig. 13 case study: a resource-consuming task doubles database 1's
    /// CPU and rows-read while its request count stays in line with peers —
    /// a level-2 anomaly.
    pub fn case_study_resource_hog(seed: u64) -> Self {
        Self {
            description: "E-commerce transaction unit; resource-hungry tasks mapped to \
                          database 1 at tick 350 double CPU while Total Requests stays \
                          level with peers (paper Fig. 13, level-2 case)"
                .into(),
            profile: Archetype::Ecommerce.profile(seed.wrapping_add(7)),
            num_databases: 5,
            ticks: 700,
            modifiers: vec![Modifier {
                db: 1,
                ticks: 350..450,
                effect: AnomalyEffect::ResourceHog {
                    cpu_factor: 2.2,
                    rows_read_factor: 3.0,
                },
            }],
            faults: Vec::new(),
            seed,
        }
    }

    /// Fig. 1 scenario: a burst of requests drags CPU with it — healthy
    /// behaviour that single-series detectors misread as anomalous.
    pub fn burst_demo(seed: u64) -> Self {
        Self {
            description: "E-commerce unit; a legitimate request burst raises CPU on every \
                          database simultaneously (paper Fig. 1) — healthy, no anomaly"
                .into(),
            profile: LoadProfile::Bursty {
                base_reads: 3000.0,
                base_writes: 300.0,
                burst_prob: 0.02,
                burst_scale: 3.0,
                burst_len: (6, 15),
                noise: 0.05,
            },
            num_databases: 5,
            ticks: 600,
            modifiers: Vec::new(),
            faults: Vec::new(),
            seed,
        }
    }

    /// The quickstart scenario plus a standard battery of collector
    /// faults — dropped frames, NaN bursts, duplicated ticks, a stuck
    /// sensor and a full outage — for exercising the ingest hardening.
    /// Labels are untouched: the anomaly is the same defective load
    /// balancer; the faults are telemetry trouble layered on top.
    pub fn faulted_quickstart(seed: u64) -> Self {
        let mut scenario = Self::quickstart(seed);
        scenario.description = format!(
            "{} — with the standard collector-fault battery layered on the telemetry",
            scenario.description
        );
        scenario.faults = FaultPreset::Standard.plan(scenario.num_databases, scenario.ticks as u64);
        scenario
    }

    /// Runs the scenario and returns the recording.
    pub fn generate(&self) -> UnitData {
        let loads = self.profile.generate(self.ticks, self.seed ^ 0x10AD);
        let mut sim = UnitSim::new(UnitConfig {
            num_databases: self.num_databases,
            seed: self.seed ^ 0x51B,
            ..UnitConfig::default()
        });
        for m in &self.modifiers {
            sim.add_modifier(m.clone());
        }
        let participation = sim.participation_mask();
        let samples = sim.run(&loads);
        let n = self.num_databases;
        let mut series: Vec<Vec<Vec<f64>>> = (0..n)
            .map(|_| {
                (0..NUM_KPIS)
                    .map(|_| Vec::with_capacity(self.ticks))
                    .collect()
            })
            .collect();
        let mut labels = vec![Vec::with_capacity(self.ticks); n];
        for s in &samples {
            for db in 0..n {
                for k in 0..NUM_KPIS {
                    series[db][k].push(s.values[db][k]);
                }
                labels[db].push(s.anomalous[db]);
            }
        }
        if !self.faults.is_empty() {
            corrupt_series(&self.faults, self.seed ^ 0xFA, &mut series);
        }
        UnitData {
            unit_id: 0,
            series,
            labels,
            participation,
        }
    }
}

/// A multi-unit fleet scenario: per-unit recordings sharing one
/// correlated-failure schedule — the input the fleet-scope hierarchy
/// layer is tested against.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetScenario {
    /// Per-unit scenarios, index = unit id. Units inside the correlated
    /// group carry the scheduled modifiers; the rest run clean.
    pub units: Vec<UnitScenario>,
    /// The shared correlated-failure schedule (ground truth for the
    /// hierarchy layer's blame and classification).
    pub correlated: CorrelatedScenario,
}

impl FleetScenario {
    /// Builds a fleet of `num_units` units with a correlated failure of
    /// `kind` scheduled across `group`. Deterministic from `seed`: unit
    /// archetypes rotate, per-unit seeds derive from the fleet seed, and
    /// the correlated schedule comes from [`CorrelatedScenario::generate`].
    pub fn correlated(
        seed: u64,
        kind: CorrelatedKind,
        num_units: usize,
        group: &[usize],
        ticks: usize,
    ) -> Self {
        let correlated = CorrelatedScenario::generate(seed, kind, group.to_vec(), ticks as u64);
        let archetypes = [
            Archetype::Gaming,
            Archetype::Ecommerce,
            Archetype::Social,
            Archetype::Finance,
        ];
        let num_databases = 5;
        let units = (0..num_units)
            .map(|unit| {
                let unit_seed = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(unit as u64);
                let archetype = archetypes[unit % archetypes.len()];
                UnitScenario {
                    description: format!(
                        "Fleet unit {unit} ({kind}): {role}",
                        kind = correlated.kind.name(),
                        role = if unit == correlated.epicenter && correlated.group.contains(&unit) {
                            "epicenter"
                        } else if correlated.group.contains(&unit) {
                            "blast radius"
                        } else {
                            "bystander"
                        }
                    ),
                    profile: archetype.profile(unit_seed),
                    num_databases,
                    ticks,
                    modifiers: correlated.unit_modifiers(unit, num_databases),
                    faults: Vec::new(),
                    seed: unit_seed,
                }
            })
            .collect();
        FleetScenario { units, correlated }
    }

    /// Runs every unit and wraps the recordings as a [`Dataset`] (unit
    /// ids assigned by position).
    pub fn generate(&self) -> Dataset {
        let units = self
            .units
            .iter()
            .enumerate()
            .map(|(unit, scenario)| {
                let mut data = scenario.generate();
                data.unit_id = unit;
                data
            })
            .collect();
        Dataset {
            name: format!("Fleet/{}", self.correlated.kind.name()),
            kind: WorkloadKind::Tencent,
            subset: Subset::Mixed,
            units,
        }
    }
}

/// KPIs worth plotting for the case studies (a readable subset).
pub fn case_study_kpis() -> Vec<Kpi> {
    vec![
        Kpi::RequestsPerSecond,
        Kpi::CpuUtilization,
        Kpi::InnodbRowsRead,
        Kpi::RealCapacity,
        Kpi::TotalRequests,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_contains_anomaly_window() {
        let data = UnitScenario::quickstart(42).generate();
        assert_eq!(data.num_databases(), 5);
        assert_eq!(data.num_ticks(), 600);
        assert!(data.labels[2][320]);
        assert!(!data.labels[2][100]);
        assert!(!data.labels[0][320]);
    }

    #[test]
    fn quickstart_skew_visible_in_reads_kpi() {
        let data = UnitScenario::quickstart(42).generate();
        let k = Kpi::BufferPoolReadRequests.index();
        let before: f64 = data.kpi_series(2, k)[200..290].iter().sum::<f64>() / 90.0;
        let during: f64 = data.kpi_series(2, k)[310..350].iter().sum::<f64>() / 40.0;
        assert!(during > before * 1.8, "during {during} vs before {before}");
    }

    #[test]
    fn fragmentation_case_diverges_capacity() {
        let data = UnitScenario::case_study_fragmentation(7).generate();
        let k = Kpi::RealCapacity.index();
        let target_growth = data.kpi_series(1, k)[519] / data.kpi_series(1, k)[400];
        let peer_growth = data.kpi_series(3, k)[519] / data.kpi_series(3, k)[400];
        assert!(
            target_growth > peer_growth * 1.5,
            "{target_growth} vs {peer_growth}"
        );
    }

    #[test]
    fn resource_hog_keeps_requests_level() {
        let data = UnitScenario::case_study_resource_hog(7).generate();
        let cpu = Kpi::CpuUtilization.index();
        let req = Kpi::TotalRequests.index();
        let mid = 400usize;
        let peer_cpu = data.kpi_series(3, cpu)[mid];
        let hog_cpu = data.kpi_series(1, cpu)[mid];
        assert!(hog_cpu > peer_cpu * 1.4, "cpu {hog_cpu} vs {peer_cpu}");
        let peer_req = data.kpi_series(3, req)[mid];
        let hog_req = data.kpi_series(1, req)[mid];
        assert!(
            (hog_req / peer_req - 1.0).abs() < 0.6,
            "req {hog_req} vs {peer_req}"
        );
    }

    #[test]
    fn burst_demo_is_anomaly_free() {
        let data = UnitScenario::burst_demo(3).generate();
        assert_eq!(data.anomalous_db_ticks(), 0);
    }

    #[test]
    fn generate_is_deterministic() {
        let a = UnitScenario::quickstart(1).generate();
        let b = UnitScenario::quickstart(1).generate();
        assert_eq!(a.series, b.series);
    }

    #[test]
    fn case_study_kpis_nonempty() {
        assert!(!case_study_kpis().is_empty());
    }

    #[test]
    fn faulted_quickstart_corrupts_telemetry_not_labels() {
        let clean = UnitScenario::quickstart(42).generate();
        let faulted = UnitScenario::faulted_quickstart(42).generate();
        assert_eq!(clean.labels, faulted.labels, "faults must not move labels");
        assert_ne!(
            clean.series, faulted.series,
            "faults must corrupt the series"
        );
        let non_finite: usize = faulted
            .series
            .iter()
            .flatten()
            .flatten()
            .filter(|v| !v.is_finite())
            .count();
        assert!(non_finite > 0, "the NaN burst must land in the recording");
    }

    #[test]
    fn faulted_quickstart_is_deterministic() {
        let a = UnitScenario::faulted_quickstart(9).generate();
        let b = UnitScenario::faulted_quickstart(9).generate();
        assert!(a
            .series
            .iter()
            .flatten()
            .flatten()
            .zip(b.series.iter().flatten().flatten())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn correlated_fleet_places_anomalies_on_the_group_only() {
        let fleet = FleetScenario::correlated(
            13,
            dbcatcher_sim::CorrelatedKind::NoisyNeighbour,
            4,
            &[0, 1, 2],
            480,
        );
        assert_eq!(fleet.units.len(), 4);
        for unit in 0..3 {
            assert!(
                !fleet.units[unit].modifiers.is_empty(),
                "group unit {unit} must carry modifiers"
            );
        }
        assert!(fleet.units[3].modifiers.is_empty(), "bystander runs clean");
        let dataset = fleet.generate();
        assert_eq!(dataset.units.len(), 4);
        for (unit, data) in dataset.units.iter().enumerate() {
            assert_eq!(data.unit_id, unit);
            let anomalous = data.anomalous_db_ticks();
            if fleet.correlated.group.contains(&unit) {
                assert!(anomalous > 0, "group unit {unit} must label anomalies");
            } else {
                assert_eq!(anomalous, 0, "bystander {unit} must stay clean");
            }
        }
    }

    #[test]
    fn correlated_fleet_is_deterministic() {
        let make = || {
            FleetScenario::correlated(
                21,
                dbcatcher_sim::CorrelatedKind::RollingRegression,
                3,
                &[0, 1, 2],
                480,
            )
            .generate()
        };
        let a = make();
        let b = make();
        assert!(a
            .units
            .iter()
            .zip(b.units.iter())
            .all(|(ua, ub)| ua.series == ub.series && ua.labels == ub.labels));
    }
}
