//! JSON report emission (`results/LINT_report.json`).
//!
//! The report is hand-serialised: output must be byte-stable across runs
//! (sorted entries, no timestamps) so the committed artifact diffs
//! cleanly — waiver creep shows up as added lines in review.

use crate::engine::Analysis;
use crate::rules::Severity;
use std::fmt::Write as _;

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render the analysis as pretty-printed deterministic JSON.
pub fn render(a: &Analysis) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"tool\": \"dbclint\",\n  \"schema\": 1,\n");
    let _ = writeln!(s, "  \"files_scanned\": {},", a.files_scanned);
    let _ = writeln!(
        s,
        "  \"summary\": {{ \"deny\": {}, \"warn\": {}, \"waived\": {} }},",
        a.deny_count(),
        a.warn_count(),
        a.waivers.len()
    );

    s.push_str("  \"violations\": [");
    let mut first = true;
    for v in a.violations.iter().filter(|v| v.severity == Severity::Deny) {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str("\n    { \"rule\": ");
        esc(&v.rule, &mut s);
        s.push_str(", \"file\": ");
        esc(&v.file, &mut s);
        let _ = write!(s, ", \"line\": {}, \"pattern\": ", v.line);
        esc(&v.pattern, &mut s);
        s.push_str(", \"snippet\": ");
        esc(&v.snippet, &mut s);
        s.push_str(" }");
    }
    s.push_str(if first { "],\n" } else { "\n  ],\n" });

    // Warn-level hits are aggregated per (file, rule): individually they
    // are review signals, not gate failures, and per-line entries would
    // drown the report.
    s.push_str("  \"warnings\": [");
    let mut groups: Vec<(String, String, Vec<u32>)> = Vec::new();
    for v in a.violations.iter().filter(|v| v.severity == Severity::Warn) {
        match groups
            .iter_mut()
            .find(|(f, r, _)| *f == v.file && *r == v.rule)
        {
            Some((_, _, lines)) => lines.push(v.line),
            None => groups.push((v.file.clone(), v.rule.clone(), vec![v.line])),
        }
    }
    let mut first = true;
    for (file, rule, lines) in &groups {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str("\n    { \"rule\": ");
        esc(rule, &mut s);
        s.push_str(", \"file\": ");
        esc(file, &mut s);
        let _ = write!(s, ", \"count\": {}, \"lines\": {:?} }}", lines.len(), lines);
    }
    s.push_str(if first { "],\n" } else { "\n  ],\n" });

    s.push_str("  \"waivers\": [");
    let mut first = true;
    for w in &a.waivers {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str("\n    { \"rule\": ");
        esc(&w.rule, &mut s);
        s.push_str(", \"file\": ");
        esc(&w.file, &mut s);
        let _ = write!(s, ", \"line\": {}, \"justification\": ", w.line);
        esc(&w.justification, &mut s);
        s.push_str(" }");
    }
    s.push_str(if first { "]\n" } else { "\n  ]\n" });
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Violation, WaiverRecord};

    #[test]
    fn renders_valid_shape_and_escapes() {
        let a = Analysis {
            files_scanned: 2,
            violations: vec![
                Violation {
                    rule: "panic-free".into(),
                    severity: Severity::Deny,
                    file: "crates/x.rs".into(),
                    line: 3,
                    pattern: "unwrap()".into(),
                    snippet: "say \"hi\"\\".into(),
                },
                Violation {
                    rule: "slice-index".into(),
                    severity: Severity::Warn,
                    file: "crates/x.rs".into(),
                    line: 4,
                    pattern: "indexing[]".into(),
                    snippet: "xs[0]".into(),
                },
            ],
            waivers: vec![WaiverRecord {
                rule: "no-unsafe".into(),
                file: "crates/y.rs".into(),
                line: 9,
                justification: "audited".into(),
            }],
        };
        let json = render(&a);
        assert!(json.contains("\"deny\": 1, \"warn\": 1, \"waived\": 1"));
        assert!(json.contains("\\\"hi\\\"\\\\"));
        assert!(json.contains("\"lines\": [4]"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn empty_analysis_renders() {
        let json = render(&Analysis::default());
        assert!(json.contains("\"violations\": []"));
        assert!(json.contains("\"waivers\": []"));
    }
}
