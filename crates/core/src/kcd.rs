//! Key Correlation Distance (paper §III-B, Eq. 1–4).
//!
//! KCD scores the trend correlation of two equally long KPI windows while
//! tolerating *point-in-time delays*: a small phase offset between the two
//! series caused by per-database collection/processing lag.
//!
//! Pipeline per pair:
//! 1. min–max normalise both windows (Eq. 1 — trends, not magnitudes);
//! 2. for every candidate delay `s ∈ [−m, m]`, align the overlapping parts
//!    (Eq. 2), mean-centre them, and take their dot product (Eq. 3);
//! 3. normalise each lag's product by the L2 norms of the centred overlaps
//!    and keep the maximum (Eq. 4) — yielding a score in [−1, 1].
//!
//! Degenerate conventions (paper §III-B "unused database" handling):
//! constant-vs-constant scores 1, constant-vs-varying scores 0.

use dbcatcher_signal::normalize::min_max;

/// Correlation of the two overlapping, mean-centred segments.
///
/// `xs` and `ys` must be equally long; returns a value in [−1, 1].
/// Crate-visible so the incremental engine can fall back to the exact
/// two-pass formulation on degenerate (near-constant) segments.
pub(crate) fn centered_correlation(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut dot = 0.0;
    let mut nx = 0.0;
    let mut ny = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        dot += dx * dy;
        nx += dx * dx;
        ny += dy * dy;
    }
    finish_correlation(dot, nx, ny)
}

/// Shared epilogue: degenerate conventions, then normalise and clamp.
#[inline]
fn finish_correlation(dot: f64, nx: f64, ny: f64) -> f64 {
    if nx == 0.0 && ny == 0.0 {
        return 1.0; // both segments constant: identical trend
    }
    if nx == 0.0 || ny == 0.0 {
        return 0.0; // one flat, one varying: no trend agreement
    }
    (dot / (nx.sqrt() * ny.sqrt())).clamp(-1.0, 1.0)
}

/// Sum of a slice with four independent accumulator lanes, combined
/// pairwise at the end — the shape LLVM turns into packed adds.
#[inline]
fn sum4(xs: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let chunks = xs.chunks_exact(4);
    let tail = chunks.remainder();
    for c in chunks {
        for (lane, &v) in acc.iter_mut().zip(c) {
            *lane += v;
        }
    }
    let mut rest = 0.0;
    for &v in tail {
        rest += v;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + rest
}

/// Fused, unrolled correlation kernel used by the lag scan: one pass
/// computing dot / ‖x‖² / ‖y‖² with four independent accumulator lanes
/// per statistic, so the loop autovectorises and the FP dependency chain
/// is a quarter of the scalar version's.
///
/// Floating-point sums are reassociated relative to
/// [`centered_correlation`], so results can differ in the last ulps; the
/// degenerate conventions stay exact because min–max-normalised constant
/// windows are all-zero and every partial sum of zeros is zero under any
/// association. The scalar two-pass form remains the bit-exact oracle for
/// the incremental engine's degenerate-segment fallback.
fn centered_correlation_fused(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let mx = sum4(xs) / n as f64;
    let my = sum4(ys) / n as f64;
    let mut dot = [0.0f64; 4];
    let mut nx = [0.0f64; 4];
    let mut ny = [0.0f64; 4];
    let xc = xs.chunks_exact(4);
    let yc = ys.chunks_exact(4);
    let (xt, yt) = (xc.remainder(), yc.remainder());
    for (cx, cy) in xc.zip(yc) {
        for lane in 0..4 {
            let dx = cx[lane] - mx;
            let dy = cy[lane] - my;
            dot[lane] += dx * dy;
            nx[lane] += dx * dx;
            ny[lane] += dy * dy;
        }
    }
    let (mut dot_t, mut nx_t, mut ny_t) = (0.0, 0.0, 0.0);
    for (&x, &y) in xt.iter().zip(yt) {
        let dx = x - mx;
        let dy = y - my;
        dot_t += dx * dy;
        nx_t += dx * dx;
        ny_t += dy * dy;
    }
    finish_correlation(
        (dot[0] + dot[1]) + (dot[2] + dot[3]) + dot_t,
        (nx[0] + nx[1]) + (nx[2] + nx[3]) + nx_t,
        (ny[0] + ny[1]) + (ny[2] + ny[3]) + ny_t,
    )
}

/// KCD over pre-normalised windows, scanning lags `0..=max_delay` in both
/// directions. Exposed for callers that already hold normalised data.
pub fn kcd_normalized(x: &[f64], y: &[f64], max_delay: usize) -> f64 {
    assert_eq!(x.len(), y.len(), "KCD windows must be equally long");
    let n = x.len();
    if n == 0 {
        return 0.0;
    }
    // Never let the overlap shrink below 2 points.
    let max_s = max_delay.min(n.saturating_sub(2));
    let mut best = f64::NEG_INFINITY;
    for s in 0..=max_s {
        let len = n - s;
        // x delayed by s (x's sample i matches y's sample i−s)
        let c1 = centered_correlation_fused(&x[s..s + len], &y[..len]);
        // y delayed by s
        let c2 = centered_correlation_fused(&x[..len], &y[s..s + len]);
        best = best.max(c1).max(c2);
        if best >= 1.0 {
            break;
        }
    }
    best
}

/// Key Correlation Distance of two raw KPI windows (Eq. 1–4).
///
/// `max_delay` is the largest phase offset scanned (the paper uses
/// `n / 2`; see [`crate::config::DelayScan`]).
///
/// ```
/// use dbcatcher_core::kcd::kcd;
///
/// // y is x collected 2 ticks late — a point-in-time delay.
/// let x: Vec<f64> = (0..30).map(|i| (i as f64 * 0.4).sin()).collect();
/// let y: Vec<f64> = (0..30).map(|i| ((i as f64 - 2.0) * 0.4).sin()).collect();
/// assert!(kcd(&x, &y, 3) > 0.99);  // the lag scan recovers the trend match
/// assert!(kcd(&x, &y, 0) < 0.95);  // a lag-zero measure (Pearson) does not
/// ```
///
/// # Panics
/// Panics when the windows differ in length.
pub fn kcd(x: &[f64], y: &[f64], max_delay: usize) -> f64 {
    assert_eq!(x.len(), y.len(), "KCD windows must be equally long");
    if x.is_empty() {
        return 0.0;
    }
    let xn = min_max(x);
    let yn = min_max(y);
    kcd_normalized(&xn, &yn, max_delay)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b}");
    }

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    fn sine(n: usize, period: f64, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * (i as f64 + phase) / period).sin())
            .collect()
    }

    #[test]
    fn identical_series_score_one() {
        let x = sine(40, 13.0, 0.0);
        close(kcd(&x, &x, 20), 1.0, 1e-12);
    }

    #[test]
    fn scaled_and_shifted_series_score_one() {
        // KCD measures trends: affine transforms of the same signal must be
        // perfectly correlated.
        let x = sine(40, 13.0, 0.0);
        let y: Vec<f64> = x.iter().map(|v| 3.5 * v + 100.0).collect();
        close(kcd(&x, &y, 20), 1.0, 1e-9);
    }

    #[test]
    fn anti_correlated_series_score_minus_one_at_lag_zero() {
        let x = ramp(20);
        let y: Vec<f64> = x.iter().rev().cloned().collect();
        // lag scans can find spurious positive alignment on monotone ramps;
        // with max_delay 0 the score is exactly -1.
        close(kcd(&x, &y, 0), -1.0, 1e-9);
    }

    #[test]
    fn delay_recovered_by_lag_scan() {
        // y is x delayed by 3 ticks — KCD with sufficient scan range must
        // recover the full correlation; Pearson (lag 0) must not.
        let n = 60;
        let base = sine(n + 3, 17.0, 0.0);
        let x: Vec<f64> = base[3..].to_vec();
        let y: Vec<f64> = base[..n].to_vec();
        let with_scan = kcd(&x, &y, 5);
        let lag_zero = kcd(&x, &y, 0);
        close(with_scan, 1.0, 1e-6);
        assert!(
            with_scan > lag_zero + 0.05,
            "scan {with_scan} vs lag-zero {lag_zero}"
        );
    }

    #[test]
    fn negative_direction_delay_also_recovered() {
        let n = 60;
        let base = sine(n + 4, 17.0, 0.0);
        let x: Vec<f64> = base[..n].to_vec(); // x lags y
        let y: Vec<f64> = base[4..].to_vec();
        close(kcd(&x, &y, 6), 1.0, 1e-6);
    }

    #[test]
    fn constant_conventions() {
        let c1 = vec![5.0; 20];
        let c2 = vec![9.0; 20];
        let varying = sine(20, 7.0, 0.0);
        close(kcd(&c1, &c2, 10), 1.0, 1e-12);
        close(kcd(&c1, &varying, 10), 0.0, 1e-12);
        close(kcd(&varying, &c1, 10), 0.0, 1e-12);
    }

    #[test]
    fn empty_and_short_windows() {
        assert_eq!(kcd(&[], &[], 5), 0.0);
        // length 1: both "constant"
        close(kcd(&[3.0], &[7.0], 5), 1.0, 1e-12);
        // length 2
        close(kcd(&[0.0, 1.0], &[5.0, 9.0], 5), 1.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "equally long")]
    fn length_mismatch_panics() {
        let _ = kcd(&[1.0, 2.0], &[1.0], 3);
    }

    #[test]
    fn score_bounded() {
        // pseudo-random pairs stay within [-1, 1]
        let mut state = 7u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..20 {
            let x: Vec<f64> = (0..30).map(|_| next()).collect();
            let y: Vec<f64> = (0..30).map(|_| next()).collect();
            let s = kcd(&x, &y, 15);
            assert!((-1.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn uncorrelated_noise_scores_below_correlated_trend() {
        let mut state = 1234u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let noise_a: Vec<f64> = (0..40).map(|_| next()).collect();
        let noise_b: Vec<f64> = (0..40).map(|_| next()).collect();
        let trend = sine(40, 11.0, 0.0);
        let trend_noisy: Vec<f64> = trend
            .iter()
            .enumerate()
            .map(|(i, v)| v + 0.1 * noise_a[i])
            .collect();
        let corr_trend = kcd(&trend, &trend_noisy, 5);
        let corr_noise = kcd(&noise_a, &noise_b, 5);
        assert!(
            corr_trend > corr_noise + 0.2,
            "trend {corr_trend} vs noise {corr_noise}"
        );
    }

    #[test]
    fn kcd_symmetric() {
        let x = sine(33, 9.0, 0.0);
        let y: Vec<f64> = sine(33, 9.0, 2.0).iter().map(|v| v * 2.0 + 1.0).collect();
        close(kcd(&x, &y, 10), kcd(&y, &x, 10), 1e-12);
    }

    #[test]
    fn fused_kernel_matches_scalar_oracle() {
        // The 4-lane kernel reassociates sums; it must stay within a few
        // ulps of the exact two-pass form on arbitrary data and exactly on
        // degenerate (constant) segments.
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for len in [1usize, 2, 3, 4, 5, 7, 8, 15, 16, 33, 120] {
            let x: Vec<f64> = (0..len).map(|_| next() * 10.0 - 5.0).collect();
            let y: Vec<f64> = (0..len).map(|_| next() * 10.0 - 5.0).collect();
            let exact = centered_correlation(&x, &y);
            let fused = centered_correlation_fused(&x, &y);
            close(fused, exact, 1e-12);
        }
        let zeros = vec![0.0; 11];
        let varying: Vec<f64> = (0..11).map(|i| (i % 3) as f64).collect();
        assert_eq!(centered_correlation_fused(&zeros, &zeros), 1.0);
        assert_eq!(centered_correlation_fused(&zeros, &varying), 0.0);
        assert_eq!(centered_correlation_fused(&varying, &zeros), 0.0);
        assert_eq!(centered_correlation_fused(&[], &[]), 0.0);
    }

    #[test]
    fn larger_scan_never_lowers_score() {
        let x = sine(40, 13.0, 0.0);
        let y = sine(40, 13.0, 4.0);
        let mut prev = f64::NEG_INFINITY;
        for d in 0..10 {
            let s = kcd(&x, &y, d);
            assert!(s >= prev - 1e-12, "d={d}: {s} < {prev}");
            prev = s;
        }
    }
}
