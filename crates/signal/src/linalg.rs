//! Tiny dense linear algebra: Gaussian elimination and least squares.
//!
//! The JumpStarter-style compressed-sensing baseline solves small
//! (sparsity × sparsity) normal-equation systems inside its orthogonal
//! matching pursuit loop; nothing bigger than ~10×10 ever appears, so a
//! straightforward partial-pivoting implementation is ideal.

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
///
/// Returns `None` when the matrix is (numerically) singular.
///
/// # Panics
/// Panics when `a` is not square or `b` has the wrong length.
pub fn solve(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = a.len();
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");
    assert_eq!(b.len(), n, "rhs length mismatch");
    if n == 0 {
        return Some(Vec::new());
    }
    // augmented matrix
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| {
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();
    for col in 0..n {
        // pivot
        let pivot = (col..n).max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        // eliminate below
        for row in (col + 1)..n {
            let factor = m[row][col] / m[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..=n {
                m[row][k] -= factor * m[col][k];
            }
        }
    }
    // back substitution
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = m[row][n];
        for k in (row + 1)..n {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
    }
    Some(x)
}

/// Least squares `min ||A x − b||₂` via the normal equations
/// `(AᵀA) x = Aᵀ b`. `a` is row-major with `rows >= cols`.
///
/// Returns `None` when the normal equations are singular.
///
/// # Panics
/// Panics when row lengths are inconsistent or `b` mismatches.
pub fn least_squares(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let rows = a.len();
    assert_eq!(b.len(), rows, "rhs length mismatch");
    if rows == 0 {
        return Some(Vec::new());
    }
    let cols = a[0].len();
    assert!(a.iter().all(|r| r.len() == cols), "ragged matrix");
    let mut ata = vec![vec![0.0; cols]; cols];
    let mut atb = vec![0.0; cols];
    for (row, &rhs) in a.iter().zip(b) {
        for i in 0..cols {
            atb[i] += row[i] * rhs;
            for j in i..cols {
                ata[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..cols {
        for j in 0..i {
            ata[i][j] = ata[j][i];
        }
    }
    solve(&ata, &atb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn solve_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(&a, &[3.0, 4.0]).unwrap();
        close(x[0], 3.0);
        close(x[1], 4.0);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x - y = 1  → x = 2, y = 1
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve(&a, &[5.0, 1.0]).unwrap();
        close(x[0], 2.0);
        close(x[1], 1.0);
    }

    #[test]
    fn solve_requires_pivoting() {
        // zero on the diagonal forces a row swap
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(&a, &[7.0, 9.0]).unwrap();
        close(x[0], 9.0);
        close(x[1], 7.0);
    }

    #[test]
    fn singular_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn empty_system() {
        assert_eq!(solve(&[], &[]), Some(vec![]));
    }

    #[test]
    fn least_squares_exact_fit() {
        // y = 2x + 1 sampled exactly
        let a: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64, 1.0]).collect();
        let b: Vec<f64> = (0..5).map(|i| 2.0 * i as f64 + 1.0).collect();
        let x = least_squares(&a, &b).unwrap();
        close(x[0], 2.0);
        close(x[1], 1.0);
    }

    #[test]
    fn least_squares_overdetermined_noisy() {
        // y = 3x with symmetric perturbation: slope recovered exactly
        let a = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
        let b = vec![3.1, 5.9, 9.1, 11.9];
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 3.0).abs() < 0.05, "slope {}", x[0]);
    }

    #[test]
    #[should_panic(expected = "matrix must be square")]
    fn non_square_panics() {
        let _ = solve(&[vec![1.0, 2.0]], &[1.0]);
    }
}
