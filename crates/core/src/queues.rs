//! Data-processing module (paper §III-A, Fig. 6).
//!
//! "The data processing module maintains multiple queues for each KPI, the
//! number of which is equal to the number of databases in the unit." —
//! [`KpiQueues`] is exactly that: a bounded history per `(db, kpi)` pair,
//! addressed by absolute tick so the flexible windows can reach back into
//! history after expansions.
//!
//! Storage is a single flat `Vec<f64>` holding one fixed-stride slab per
//! series (structure-of-arrays). Each slab is `2 * capacity` samples wide
//! and filled left to right; when a slab fills up, the newest `capacity`
//! samples are slid back to the slab front with `copy_within`. Amortised
//! over `capacity` pushes that is O(1) per sample, never allocates after
//! construction, and — the point of the layout — every retained window is
//! one contiguous `&[f64]` slice ([`KpiQueues::window_slice`]), so the
//! correlation kernels stream straight over memory instead of chasing
//! `VecDeque` halves.

/// Bounded per-(database, KPI) history of collected samples.
///
/// Serialisation is hand-written to stay byte-compatible with the original
/// nested `buffers[db][kpi]` snapshot shape, so snapshots written before
/// the flat layout restore unchanged (and vice versa).
#[derive(Debug, Clone)]
pub struct KpiQueues {
    pub(crate) num_dbs: usize,
    pub(crate) num_kpis: usize,
    pub(crate) capacity: usize,
    /// Physical samples currently stored per series (same for all series).
    pub(crate) filled: usize,
    /// Absolute tick of physical slot 0 in every slab.
    pub(crate) phys_base: u64,
    /// `num_dbs * num_kpis` slabs of `2 * capacity` samples each;
    /// series `(db, kpi)` owns `data[(db * num_kpis + kpi) * slab ..][..slab]`.
    pub(crate) data: Vec<f64>,
    /// Absolute tick of the oldest retained sample.
    pub(crate) base_tick: u64,
    /// Total samples ingested (== next absolute tick).
    pub(crate) len: u64,
}

impl KpiQueues {
    /// Creates queues retaining the last `capacity` ticks.
    ///
    /// # Panics
    /// Panics when any dimension is zero.
    pub fn new(num_dbs: usize, num_kpis: usize, capacity: usize) -> Self {
        assert!(
            num_dbs > 0 && num_kpis > 0 && capacity > 0,
            "dimensions must be positive"
        );
        Self {
            num_dbs,
            num_kpis,
            capacity,
            filled: 0,
            phys_base: 0,
            // dbclint: allow(hot-path-alloc) — one-time slab allocation at construction; every later push writes in place.
            data: vec![0.0; num_dbs * num_kpis * capacity * 2],
            base_tick: 0,
            len: 0,
        }
    }

    /// Slab width per series: headroom past `capacity` so compaction runs
    /// once per `capacity` pushes, not on every push.
    fn slab(&self) -> usize {
        self.capacity * 2
    }

    /// Number of databases.
    pub fn num_dbs(&self) -> usize {
        self.num_dbs
    }

    /// Number of KPIs.
    pub fn num_kpis(&self) -> usize {
        self.num_kpis
    }

    /// Retention capacity in ticks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Next absolute tick to be ingested.
    pub fn next_tick(&self) -> u64 {
        self.len
    }

    /// Oldest retained absolute tick.
    pub fn base_tick(&self) -> u64 {
        self.base_tick
    }

    /// Slides the newest `capacity` samples of every slab to its front.
    fn compact(&mut self) {
        let slab = self.slab();
        let drop = slab - self.capacity;
        for series in 0..self.num_dbs * self.num_kpis {
            let o = series * slab;
            self.data.copy_within(o + drop..o + slab, o);
        }
        self.filled = self.capacity;
        self.phys_base += drop as u64;
    }

    /// Ingests one frame: `frame[db][kpi]`. Never allocates.
    ///
    /// # Panics
    /// Panics when the frame shape mismatches the queue dimensions.
    pub fn push(&mut self, frame: &[Vec<f64>]) {
        assert_eq!(frame.len(), self.num_dbs, "frame database arity mismatch");
        if self.filled == self.slab() {
            self.compact();
        }
        let slab = self.slab();
        let at = self.filled;
        for (db, kpis) in frame.iter().enumerate() {
            assert_eq!(kpis.len(), self.num_kpis, "frame KPI arity mismatch");
            for (k, &v) in kpis.iter().enumerate() {
                self.data[(db * self.num_kpis + k) * slab + at] = v;
            }
        }
        self.filled += 1;
        self.len += 1;
        if self.len - self.base_tick > self.capacity as u64 {
            self.base_tick = self.len - self.capacity as u64;
        }
    }

    /// Borrows the window `[start, start + len)` of `(db, kpi)` as one
    /// contiguous slice. Returns `None` when any part of the window has
    /// been evicted or has not arrived yet.
    ///
    /// Eviction is logical: a sample older than `base_tick` is refused
    /// even while it physically lingers in the slab headroom, so flat and
    /// nested layouts agree tick-for-tick.
    pub fn window_slice(&self, db: usize, kpi: usize, start: u64, len: usize) -> Option<&[f64]> {
        let end = start.checked_add(len as u64)?;
        if start < self.base_tick || end > self.len {
            return None;
        }
        let offset = (start - self.phys_base) as usize;
        let o = (db * self.num_kpis + kpi) * self.slab();
        Some(&self.data[o + offset..o + offset + len])
    }

    /// Copies the window `[start, start + len)` of `(db, kpi)` into a
    /// `Vec`. Same availability rules as [`Self::window_slice`], which
    /// hot paths should prefer.
    pub fn window(&self, db: usize, kpi: usize, start: u64, len: usize) -> Option<Vec<f64>> {
        self.window_slice(db, kpi, start, len).map(<[f64]>::to_vec)
    }

    /// Maximum value of `(db, kpi)` over a window, for unused-database
    /// detection. `None` under the same conditions as [`Self::window`].
    pub fn window_max_abs(&self, db: usize, kpi: usize, start: u64, len: usize) -> Option<f64> {
        self.window_slice(db, kpi, start, len)
            .map(|w| w.iter().fold(0.0f64, |acc, &v| acc.max(v.abs())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::VecDeque;

    fn frame(n_db: usize, n_kpi: usize, v: f64) -> Vec<Vec<f64>> {
        (0..n_db)
            .map(|db| (0..n_kpi).map(|k| v + (db * 10 + k) as f64).collect())
            .collect()
    }

    #[test]
    fn push_and_window() {
        let mut q = KpiQueues::new(2, 3, 10);
        for t in 0..5 {
            q.push(&frame(2, 3, t as f64 * 100.0));
        }
        assert_eq!(q.next_tick(), 5);
        let w = q.window(1, 2, 1, 3).unwrap();
        assert_eq!(w, vec![112.0, 212.0, 312.0]);
        assert_eq!(q.window_slice(1, 2, 1, 3).unwrap(), &[112.0, 212.0, 312.0]);
    }

    #[test]
    fn window_unavailable_before_arrival() {
        let mut q = KpiQueues::new(1, 1, 10);
        q.push(&frame(1, 1, 0.0));
        assert!(q.window(0, 0, 0, 2).is_none());
        assert!(q.window(0, 0, 0, 1).is_some());
    }

    #[test]
    fn eviction_moves_base_tick() {
        let mut q = KpiQueues::new(1, 1, 4);
        for t in 0..10 {
            q.push(&frame(1, 1, t as f64));
        }
        assert_eq!(q.base_tick(), 6);
        assert!(
            q.window(0, 0, 5, 2).is_none(),
            "evicted window must be None"
        );
        let w = q.window(0, 0, 6, 4).unwrap();
        assert_eq!(w, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn window_max_abs_tracks_magnitude() {
        let mut q = KpiQueues::new(1, 1, 10);
        q.push(&[vec![-5.0]]);
        q.push(&[vec![2.0]]);
        q.push(&[vec![0.0]]);
        assert_eq!(q.window_max_abs(0, 0, 0, 3), Some(5.0));
        assert_eq!(q.window_max_abs(0, 0, 1, 2), Some(2.0));
        assert_eq!(q.window_max_abs(0, 0, 0, 4), None);
    }

    #[test]
    #[should_panic(expected = "frame database arity")]
    fn wrong_frame_shape_panics() {
        let mut q = KpiQueues::new(2, 2, 4);
        q.push(&frame(1, 2, 0.0));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_capacity_panics() {
        let _ = KpiQueues::new(1, 1, 0);
    }

    #[test]
    fn capacity_one_keeps_latest() {
        let mut q = KpiQueues::new(1, 1, 1);
        q.push(&[vec![1.0]]);
        q.push(&[vec![2.0]]);
        assert_eq!(q.window(0, 0, 1, 1), Some(vec![2.0]));
        assert!(q.window(0, 0, 0, 1).is_none());
    }

    #[test]
    fn base_tick_stays_zero_until_exactly_capacity() {
        // The boundary: `capacity` pushes retain everything; push
        // `capacity + 1` evicts exactly one tick.
        let cap = 4usize;
        let mut q = KpiQueues::new(1, 1, cap);
        for t in 0..cap {
            q.push(&frame(1, 1, t as f64));
            assert_eq!(q.base_tick(), 0, "no eviction through tick {t}");
        }
        assert_eq!(q.window(0, 0, 0, cap).unwrap(), vec![0.0, 1.0, 2.0, 3.0]);
        q.push(&frame(1, 1, cap as f64));
        assert_eq!(q.base_tick(), 1, "one tick past capacity evicts one");
        assert!(q.window(0, 0, 0, 1).is_none(), "tick 0 evicted");
        assert_eq!(q.window(0, 0, 1, cap).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn base_tick_advances_one_per_push_once_saturated() {
        let cap = 3usize;
        let mut q = KpiQueues::new(2, 2, cap);
        for t in 0..20u64 {
            q.push(&frame(2, 2, t as f64));
            let expected_base = (t + 1).saturating_sub(cap as u64);
            assert_eq!(q.base_tick(), expected_base, "after push {t}");
            assert_eq!(q.next_tick(), t + 1);
            // the retained span is always addressable...
            assert!(q
                .window(
                    1,
                    1,
                    expected_base,
                    q.next_tick() as usize - expected_base as usize
                )
                .is_some());
            // ...and one tick before it never is
            if expected_base > 0 {
                assert!(q.window(1, 1, expected_base - 1, 1).is_none());
            }
        }
    }

    #[test]
    fn absolute_addressing_survives_long_uptime() {
        // Online shards address windows by absolute tick after arbitrary
        // uptime; the mapping through base_tick must stay exact.
        let cap = 8usize;
        let mut q = KpiQueues::new(1, 1, cap);
        let total = 10_000u64;
        for t in 0..total {
            q.push(&[vec![t as f64]]);
        }
        assert_eq!(q.next_tick(), total);
        assert_eq!(q.base_tick(), total - cap as u64);
        // full retained window, exact values
        let w = q.window(0, 0, total - cap as u64, cap).unwrap();
        let expect: Vec<f64> = (total - cap as u64..total).map(|t| t as f64).collect();
        assert_eq!(w, expect);
        // suffix window straddling nothing evicted
        assert_eq!(
            q.window(0, 0, total - 2, 2).unwrap(),
            vec![(total - 2) as f64, (total - 1) as f64]
        );
        // requests past the head are refused, even by one tick
        assert!(q.window(0, 0, total - 1, 2).is_none());
        assert!(q.window_max_abs(0, 0, total - 1, 2).is_none());
        assert_eq!(
            q.window_max_abs(0, 0, total - cap as u64, cap),
            Some((total - 1) as f64)
        );
    }

    #[test]
    fn window_len_zero_at_boundaries() {
        let mut q = KpiQueues::new(1, 1, 2);
        for t in 0..5 {
            q.push(&frame(1, 1, t as f64));
        }
        // empty windows are valid wherever their start is retained
        assert_eq!(q.window(0, 0, q.base_tick(), 0), Some(vec![]));
        assert_eq!(q.window(0, 0, q.next_tick(), 0), Some(vec![]));
        assert!(q.window(0, 0, q.base_tick() - 1, 0).is_none());
    }

    #[test]
    fn absurd_window_requests_are_refused_not_panicking() {
        // `start + len` near u64::MAX must not wrap past the bounds check.
        let mut q = KpiQueues::new(1, 1, 4);
        q.push(&frame(1, 1, 0.0));
        assert!(q.window_slice(0, 0, u64::MAX - 1, 3).is_none());
        assert!(q.window_slice(0, 0, u64::MAX, usize::MAX).is_none());
    }

    #[test]
    fn push_never_allocates_after_construction() {
        // The slab headroom plus `copy_within` compaction keeps the flat
        // store allocation-free for the lifetime of the queue.
        let mut q = KpiQueues::new(2, 2, 3);
        let data_ptr = q.data.as_ptr();
        let data_cap = q.data.capacity();
        for t in 0..50 {
            q.push(&frame(2, 2, t as f64));
        }
        assert_eq!(q.data.as_ptr(), data_ptr, "storage must not reallocate");
        assert_eq!(q.data.capacity(), data_cap);
    }

    #[test]
    fn serde_round_trip_preserves_base_tick() {
        // Warm restart depends on absolute addressing surviving
        // snapshot/restore byte-for-byte.
        let mut q = KpiQueues::new(2, 1, 3);
        for t in 0..7 {
            q.push(&frame(2, 1, t as f64));
        }
        let json = serde_json::to_string(&q).expect("serialize");
        let back: KpiQueues = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.base_tick(), q.base_tick());
        assert_eq!(back.next_tick(), q.next_tick());
        assert_eq!(back.capacity(), q.capacity());
        assert_eq!(
            back.window(1, 0, q.base_tick(), 3),
            q.window(1, 0, q.base_tick(), 3)
        );
    }

    #[test]
    fn serde_shape_matches_legacy_nested_layout() {
        // Snapshots written by the pre-flat derive (nested
        // `buffers[db][kpi]` of retained samples) must stay interchangeable
        // in both directions, byte for byte.
        #[derive(Serialize, Deserialize)]
        struct LegacyQueues {
            num_dbs: usize,
            num_kpis: usize,
            capacity: usize,
            buffers: Vec<Vec<VecDeque<f64>>>,
            base_tick: u64,
            len: u64,
        }

        let mut q = KpiQueues::new(2, 2, 3);
        let mut legacy = LegacyQueues {
            num_dbs: 2,
            num_kpis: 2,
            capacity: 3,
            buffers: vec![vec![VecDeque::new(); 2]; 2],
            base_tick: 0,
            len: 0,
        };
        for t in 0..8u64 {
            let f = frame(2, 2, t as f64 + 0.25);
            q.push(&f);
            for (db, kpis) in f.iter().enumerate() {
                for (k, &v) in kpis.iter().enumerate() {
                    let buf = &mut legacy.buffers[db][k];
                    buf.push_back(v);
                    if buf.len() > legacy.capacity {
                        buf.pop_front();
                    }
                }
            }
            legacy.len += 1;
            legacy.base_tick = legacy.len.saturating_sub(legacy.capacity as u64);
        }

        let flat_json = serde_json::to_string(&q).expect("serialize flat");
        let legacy_json = serde_json::to_string(&legacy).expect("serialize legacy");
        assert_eq!(flat_json, legacy_json, "wire shape must be identical");

        // and a legacy-produced snapshot restores into the flat layout
        let back: KpiQueues = serde_json::from_str(&legacy_json).expect("parse legacy");
        assert_eq!(
            back.window(1, 1, back.base_tick(), 3),
            q.window(1, 1, q.base_tick(), 3)
        );
    }

    #[test]
    fn serde_rejects_corrupt_snapshots() {
        let mut q = KpiQueues::new(1, 1, 2);
        q.push(&frame(1, 1, 0.0));
        let json = serde_json::to_string(&q).expect("serialize");
        // truncate a retained sample out of the buffers array
        let broken = json.replace("[[[0.0]]]", "[[[]]]");
        assert_ne!(json, broken, "fixture must actually change");
        assert!(serde_json::from_str::<KpiQueues>(&broken).is_err());
    }
}
