//! Greedy schedule minimization.
//!
//! When a seed fails, the raw plan is usually far bigger than the bug
//! needs: three units, multiple boots, fault schedules, churn sessions.
//! The shrinker tries a fixed list of simplifying edits — drop the
//! crashes, drop the faults, fewer boots, fewer units, shorter streams,
//! calmer timing — re-running the plan after each edit and keeping it
//! only if the failure survives. The result is the smallest schedule this
//! pass can find that still reproduces the failure, reported alongside
//! the original seed.
//!
//! Each re-run is a full daemon lifecycle, so the pass is bounded by
//! `max_runs` rather than run to a fixpoint at any cost.

use crate::harness::run_plan;
use crate::plan::{BootEnd, SimPlan, MIN_TICKS};

/// One named simplifying edit.
type Edit = (&'static str, fn(&mut SimPlan));

/// The edit list, ordered from coarsest (cheapest wins first) to finest.
const EDITS: &[Edit] = &[
    ("keep only the last boot", |p| {
        if let Some(last) = p.boots.pop() {
            p.boots = vec![last];
        }
    }),
    ("drop all crashes", |p| {
        for boot in &mut p.boots {
            boot.end = BootEnd::CleanStop;
        }
    }),
    ("drop all shard injections", |p| {
        for boot in &mut p.boots {
            boot.injection = None;
        }
    }),
    ("drop all collector faults", |p| {
        for unit in &mut p.units {
            unit.scenario.faults.clear();
        }
    }),
    ("drop all anomaly modifiers", |p| {
        for unit in &mut p.units {
            unit.scenario.modifiers.clear();
        }
    }),
    ("one session per boot", |p| {
        for boot in &mut p.boots {
            if let Some(last) = boot.sessions.pop() {
                boot.sessions = vec![last];
            }
        }
    }),
    ("halve the unit count", |p| {
        let keep = p.units.len().div_ceil(2);
        p.units.truncate(keep);
    }),
    ("halve the stream length", |p| {
        for unit in &mut p.units {
            unit.scenario.ticks = (unit.scenario.ticks / 2).max(MIN_TICKS);
        }
    }),
    ("calm the timing (no subscriber, no slow tick)", |p| {
        p.subscribe = false;
        p.slow_tick_us = 0;
    }),
    ("one shard", |p| {
        p.shards = 1;
    }),
];

/// What a shrinking pass did.
#[derive(Debug, Clone)]
pub struct ShrinkReport {
    /// The smallest still-failing plan found.
    pub plan: SimPlan,
    /// Edits that were applied (in application order).
    pub applied: Vec<&'static str>,
    /// How many candidate re-runs the pass spent.
    pub runs: usize,
}

/// Shrinks `plan` with a caller-supplied failure oracle. `still_fails`
/// must return `true` when the candidate plan still reproduces the
/// failure. Exposed for tests; production callers use [`shrink`].
pub fn shrink_with(
    plan: &SimPlan,
    max_runs: usize,
    mut still_fails: impl FnMut(&SimPlan) -> bool,
) -> ShrinkReport {
    let mut best = plan.clone();
    let mut applied = Vec::new();
    let mut runs = 0;
    let mut progress = true;
    while progress && runs < max_runs {
        progress = false;
        for (name, edit) in EDITS {
            if runs >= max_runs {
                break;
            }
            let mut candidate = best.clone();
            edit(&mut candidate);
            candidate.normalize();
            if candidate.to_json() == best.to_json() {
                continue; // edit was a no-op on this plan
            }
            runs += 1;
            if still_fails(&candidate) {
                best = candidate;
                applied.push(*name);
                progress = true;
            }
        }
    }
    ShrinkReport {
        plan: best,
        applied,
        runs,
    }
}

/// Shrinks a failing plan by re-running candidates through the real
/// harness. Spends at most `max_runs` full daemon lifecycles.
pub fn shrink(plan: &SimPlan, max_runs: usize) -> ShrinkReport {
    shrink_with(plan, max_runs, |candidate| !run_plan(candidate).passed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SimOpts;

    #[test]
    fn shrink_reaches_a_minimal_always_failing_plan() {
        let plan = SimPlan::generate(3, &SimOpts::default());
        let report = shrink_with(&plan, 64, |_| true);
        assert_eq!(report.plan.boots.len(), 1);
        assert_eq!(report.plan.units.len(), 1);
        assert_eq!(report.plan.units[0].scenario.ticks, MIN_TICKS);
        assert!(report.plan.units[0].scenario.faults.is_empty());
        assert!(report.plan.units[0].scenario.modifiers.is_empty());
        assert!(!report.plan.subscribe);
        assert_eq!(report.plan.shards, 1);
        // The minimized plan is still structurally sound.
        let mut renorm = report.plan.clone();
        renorm.normalize();
        assert_eq!(renorm.to_json(), report.plan.to_json());
    }

    #[test]
    fn shrink_keeps_the_plan_when_nothing_reproduces() {
        let plan = SimPlan::generate(5, &SimOpts::default());
        let report = shrink_with(&plan, 64, |_| false);
        assert_eq!(report.plan.to_json(), plan.to_json());
        assert!(report.applied.is_empty());
    }

    #[test]
    fn shrink_respects_the_run_budget() {
        let plan = SimPlan::generate(9, &SimOpts::default());
        let report = shrink_with(&plan, 3, |_| true);
        assert!(report.runs <= 3);
    }

    #[test]
    fn shrink_preserves_a_targeted_failure() {
        // Failure depends on a crash being present: the shrinker must
        // reject the "drop all crashes" edit but still simplify the rest.
        let opts = SimOpts::default();
        let plan = (0..200u64)
            .map(|s| SimPlan::generate(s, &opts))
            .find(|p| {
                p.boots
                    .iter()
                    .any(|b| matches!(b.end, BootEnd::Crash { .. }))
            })
            .expect("some seed below 200 crashes");
        let report = shrink_with(&plan, 64, |candidate| {
            candidate
                .boots
                .iter()
                .any(|b| matches!(b.end, BootEnd::Crash { .. }))
        });
        assert!(report
            .plan
            .boots
            .iter()
            .any(|b| matches!(b.end, BootEnd::Crash { .. })));
        assert!(report.plan.units[0].scenario.faults.is_empty());
    }
}
