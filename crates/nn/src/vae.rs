//! Variational bottleneck: diagonal-Gaussian reparameterisation.
//!
//! OmniAnomaly pairs a GRU encoder with a VAE; this module supplies the
//! sampling trick `z = μ + ε·exp(logvar/2)` and its backward pass, so the
//! baseline can train end-to-end through the stochastic layer.

use crate::matrix::Matrix;
use crate::XorShiftRng;

/// The result of a reparameterised sample: `z` plus the noise that produced
/// it (needed for the backward pass).
#[derive(Debug, Clone)]
pub struct Reparameterized {
    /// The latent sample `μ + ε ⊙ exp(logvar / 2)`.
    pub z: Matrix,
    /// The standard-normal noise used.
    pub epsilon: Matrix,
}

/// Draws `z = μ + ε ⊙ σ`, with `σ = exp(logvar / 2)` and `ε ~ N(0, I)`.
///
/// # Panics
/// Panics on shape mismatch between `mu` and `logvar`.
pub fn reparameterize(mu: &Matrix, logvar: &Matrix, rng: &mut XorShiftRng) -> Reparameterized {
    assert_eq!(
        (mu.rows(), mu.cols()),
        (logvar.rows(), logvar.cols()),
        "mu/logvar shape mismatch"
    );
    let epsilon = Matrix::from_fn(mu.rows(), mu.cols(), |_, _| rng.normal());
    let z = mu.add(&epsilon.zip_map(logvar, |e, lv| e * (0.5 * lv.clamp(-20.0, 20.0)).exp()));
    Reparameterized { z, epsilon }
}

/// Deterministic "sample" at the mean (used at inference time, where
/// OmniAnomaly scores with the posterior mean rather than a random draw).
pub fn mean_sample(mu: &Matrix) -> Matrix {
    mu.clone()
}

/// Backward pass through the reparameterisation.
///
/// Given `d loss / d z`, returns `(d loss / d mu, d loss / d logvar)`:
/// `dz/dμ = 1`, `dz/dlogvar = ε · σ / 2`.
pub fn reparameterize_backward(
    sample: &Reparameterized,
    logvar: &Matrix,
    dz: &Matrix,
) -> (Matrix, Matrix) {
    let dmu = dz.clone();
    let dlogvar = dz.zip_map(
        &sample.epsilon.zip_map(logvar, |e, lv| {
            0.5 * e * (0.5 * lv.clamp(-20.0, 20.0)).exp()
        }),
        |g, d| g * d,
    );
    (dmu, dlogvar)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_logvar_gives_unit_noise() {
        let mut rng = XorShiftRng::new(3);
        let mu = Matrix::zeros(1, 1000);
        let logvar = Matrix::zeros(1, 1000);
        let s = reparameterize(&mu, &logvar, &mut rng);
        let mean = s.z.sum() / 1000.0;
        let var =
            s.z.data()
                .iter()
                .map(|z| (z - mean) * (z - mean))
                .sum::<f64>()
                / 1000.0;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var - 1.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn tiny_variance_collapses_to_mu() {
        let mut rng = XorShiftRng::new(5);
        let mu = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let logvar = Matrix::from_vec(1, 3, vec![-40.0, -40.0, -40.0]);
        let s = reparameterize(&mu, &logvar, &mut rng);
        // logvar is clamped at -20, so σ = e^{-10} ≈ 4.5e-5.
        for (z, m) in s.z.data().iter().zip(mu.data()) {
            assert!((z - m).abs() < 1e-3);
        }
    }

    #[test]
    fn mean_sample_is_mu() {
        let mu = Matrix::from_vec(1, 2, vec![0.3, 0.7]);
        assert_eq!(mean_sample(&mu), mu);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = XorShiftRng::new(9);
        let mu = Matrix::from_vec(1, 2, vec![0.4, -0.6]);
        let logvar = Matrix::from_vec(1, 2, vec![0.2, -0.1]);
        let s = reparameterize(&mu, &logvar, &mut rng);
        // loss = sum(z^2)
        let loss = |z: &Matrix| z.data().iter().map(|v| v * v).sum::<f64>();
        let l0 = loss(&s.z);
        let dz = s.z.scale(2.0);
        let (dmu, dlogvar) = reparameterize_backward(&s, &logvar, &dz);

        let eps = 1e-6;
        for i in 0..2 {
            // same epsilon, perturbed mu
            let mut mup = mu.clone();
            mup.data_mut()[i] += eps;
            let zp = mup.add(&s.epsilon.zip_map(&logvar, |e, lv| e * (0.5 * lv).exp()));
            let numeric = (loss(&zp) - l0) / eps;
            assert!((numeric - dmu.data()[i]).abs() < 1e-4);

            let mut lvp = logvar.clone();
            lvp.data_mut()[i] += eps;
            let zp = mu.add(&s.epsilon.zip_map(&lvp, |e, lv| e * (0.5 * lv).exp()));
            let numeric = (loss(&zp) - l0) / eps;
            assert!((numeric - dlogvar.data()[i]).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "mu/logvar shape mismatch")]
    fn shape_mismatch_panics() {
        let mut rng = XorShiftRng::new(1);
        let _ = reparameterize(&Matrix::zeros(1, 2), &Matrix::zeros(1, 3), &mut rng);
    }
}
