//! Offline replay of recorded series — cold path, kept out of
//! `pipeline.rs` so the per-tick detection module stays allocation-free
//! under `dbclint`. Used by the evaluation harness and integration tests,
//! never by the serving loop.

use crate::config::DbCatcherConfig;
use crate::pipeline::DbCatcher;
use crate::Verdict;

/// Offline convenience: streams a whole recording through a fresh
/// detector and returns `(verdicts, per-tick predictions)`.
///
/// `series[db][kpi][tick]`; each tick of a window inherits the window's
/// final state; trailing ticks not covered by any verdict predict healthy.
pub fn detect_series(
    config: DbCatcherConfig,
    series: &[Vec<Vec<f64>>],
    participation: Option<Vec<Vec<bool>>>,
) -> (Vec<Verdict>, Vec<Vec<bool>>) {
    let num_dbs = series.len();
    let num_ticks = series
        .first()
        .and_then(|db| db.first())
        .map(|s| s.len())
        .unwrap_or(0);
    let mut catcher = DbCatcher::new(config, num_dbs);
    if let Some(mask) = participation {
        catcher = catcher.with_participation(mask);
    }
    let mut verdicts = Vec::new();
    // One frame buffer reused across every tick of the replay.
    let mut frame: Vec<Vec<f64>> = series
        .iter()
        .map(|db| Vec::with_capacity(db.len()))
        .collect();
    for t in 0..num_ticks {
        for (row, db) in frame.iter_mut().zip(series) {
            row.clear();
            row.extend(db.iter().map(|kpi| kpi[t]));
        }
        verdicts.extend(catcher.ingest_tick(&frame));
    }
    let mut predictions = vec![vec![false; num_ticks]; num_dbs];
    for v in &verdicts {
        if v.state.is_abnormal() {
            for t in v.start_tick..v.end_tick.min(num_ticks as u64) {
                predictions[v.db][t as usize] = true;
            }
        }
    }
    (verdicts, predictions)
}
