//! A small hand-rolled Rust lexer, sufficient for lint-grade analysis.
//!
//! The goal is not a full grammar: `dbclint` only needs to see the token
//! *stream* faithfully enough that pattern matches never fire inside
//! comments or string literals, and that `#[cfg(test)]` spans can be
//! tracked by brace matching. The hard parts of that job are exactly the
//! ones a regex cannot do: nested block comments, raw strings with
//! arbitrary `#` fences, byte/raw-byte strings, char literals versus
//! lifetimes, and raw identifiers (`r#fn` versus `r#"..."#`).

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `Vec`, `r#match`, ...).
    Ident,
    /// Lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// Numeric literal, including float forms and suffixes.
    Number,
    /// String literal of any flavour: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br##"…"##`, `c"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'\xFF'`.
    Char,
    /// `// …` comment (includes doc `///` and `//!`).
    LineComment,
    /// `/* … */` comment, possibly nested (includes doc forms).
    BlockComment,
    /// Any single punctuation byte (`:`, `(`, `!`, `#`, ...).
    Punct(u8),
}

/// One token: kind plus the byte range and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lexing failure: the scanner refuses to guess past malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Scanner<'a> {
    fn peek(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied();
        if let Some(b) = b {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        b
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            line: self.line,
            message: message.into(),
        }
    }

    /// Consume a `"…"`-style body (opening quote already consumed),
    /// honouring backslash escapes.
    fn escaped_string_body(&mut self, quote: u8, what: &str) -> Result<(), LexError> {
        loop {
            match self.bump() {
                None => return Err(self.err(format!("unterminated {what}"))),
                Some(b'\\') => {
                    // Skip the escaped byte (covers \" \\ \n \u{…} enough
                    // for termination scanning).
                    if self.bump().is_none() {
                        return Err(self.err(format!("unterminated {what}")));
                    }
                }
                Some(b) if b == quote => return Ok(()),
                Some(_) => {}
            }
        }
    }

    /// Consume a raw string: at `pos` the `#`* fence then `"`.
    fn raw_string_body(&mut self) -> Result<(), LexError> {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.bump() != Some(b'"') {
            return Err(self.err("malformed raw string opening"));
        }
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated raw string")),
                Some(b'"') => {
                    let mut matched = 0usize;
                    while matched < hashes && self.peek(0) == Some(b'#') {
                        matched += 1;
                        self.bump();
                    }
                    if matched == hashes {
                        return Ok(());
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// Consume a block comment; the leading `/*` is already consumed.
    /// Block comments nest in Rust.
    fn block_comment_body(&mut self) -> Result<(), LexError> {
        let mut depth = 1usize;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated block comment")),
                Some(b'*') if self.peek(0) == Some(b'/') => {
                    self.bump();
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Some(b'/') if self.peek(0) == Some(b'*') => {
                    self.bump();
                    depth += 1;
                }
                Some(_) => {}
            }
        }
    }

    fn ident_body(&mut self) {
        while let Some(b) = self.peek(0) {
            if is_ident_continue(b) {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn number_body(&mut self) {
        // Digits, underscores, hex/bin/oct letters and type suffixes all
        // fall under "alphanumeric or underscore".
        while let Some(b) = self.peek(0) {
            if is_ident_continue(b) {
                self.bump();
            } else if b == b'.' {
                // `1.5` continues the number; `0..10` does not; a trailing
                // `1.` (no digit after) is left to punctuation.
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        self.bump();
                    }
                    _ => break,
                }
            } else if (b == b'+' || b == b'-')
                && matches!(
                    self.src.get(self.pos.wrapping_sub(1)),
                    Some(b'e') | Some(b'E')
                )
            {
                // Exponent sign: `1e-3`.
                self.bump();
            } else {
                break;
            }
        }
    }
}

/// Tokenize `src`. Whitespace is dropped; comments are kept as tokens so
/// the rule engine can read waiver annotations out of them.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut sc = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = sc.peek(0) {
        let start = sc.pos;
        let line = sc.line;
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                sc.bump();
                continue;
            }
            b'/' if sc.peek(1) == Some(b'/') => {
                while let Some(nb) = sc.peek(0) {
                    if nb == b'\n' {
                        break;
                    }
                    sc.bump();
                }
                TokenKind::LineComment
            }
            b'/' if sc.peek(1) == Some(b'*') => {
                sc.bump();
                sc.bump();
                sc.block_comment_body()?;
                TokenKind::BlockComment
            }
            b'"' => {
                sc.bump();
                sc.escaped_string_body(b'"', "string literal")?;
                TokenKind::Str
            }
            b'r' if matches!(sc.peek(1), Some(b'"') | Some(b'#')) => {
                // `r"…"` / `r#"…"#` are raw strings, but `r#fn` is a raw
                // identifier: decide by what follows the `#` fence.
                let mut off = 1usize;
                while sc.peek(off) == Some(b'#') {
                    off += 1;
                }
                if sc.peek(off) == Some(b'"') && off <= 256 {
                    sc.bump(); // r
                    sc.raw_string_body()?;
                    TokenKind::Str
                } else if off == 2 && sc.peek(2).is_some_and(is_ident_start) {
                    // r# + ident-start → raw identifier.
                    sc.bump();
                    sc.bump();
                    sc.ident_body();
                    TokenKind::Ident
                } else if off == 1 {
                    unreachable!("peek(1) was '\"' or '#'");
                } else {
                    return Err(sc.err("malformed raw string or raw identifier"));
                }
            }
            b'b' | b'c' if sc.peek(1) == Some(b'"') => {
                sc.bump();
                sc.bump();
                sc.escaped_string_body(b'"', "byte string literal")?;
                TokenKind::Str
            }
            b'b' if sc.peek(1) == Some(b'\'') => {
                sc.bump();
                sc.bump();
                sc.escaped_string_body(b'\'', "byte char literal")?;
                TokenKind::Char
            }
            b'b' if sc.peek(1) == Some(b'r') && matches!(sc.peek(2), Some(b'"') | Some(b'#')) => {
                sc.bump();
                sc.bump();
                sc.raw_string_body()?;
                TokenKind::Str
            }
            b'\'' => {
                // Lifetime or char literal. `'\…'` is always a char; `'x'`
                // is a char; `'x` followed by anything but `'` is a
                // lifetime.
                sc.bump();
                match sc.peek(0) {
                    Some(b'\\') => {
                        sc.escaped_string_body(b'\'', "char literal")?;
                        TokenKind::Char
                    }
                    Some(nb) if is_ident_start(nb) || nb.is_ascii_digit() => {
                        sc.bump();
                        sc.ident_body();
                        if sc.peek(0) == Some(b'\'') {
                            sc.bump();
                            TokenKind::Char
                        } else {
                            TokenKind::Lifetime
                        }
                    }
                    Some(_) => {
                        // `'('`-style punctuation char literal.
                        sc.escaped_string_body(b'\'', "char literal")?;
                        TokenKind::Char
                    }
                    None => return Err(sc.err("dangling quote at end of input")),
                }
            }
            _ if is_ident_start(b) => {
                sc.bump();
                sc.ident_body();
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => {
                sc.bump();
                sc.number_body();
                TokenKind::Number
            }
            _ => {
                sc.bump();
                TokenKind::Punct(b)
            }
        };
        out.push(Token {
            kind,
            start,
            end: sc.pos,
            line,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src)
            .unwrap()
            .into_iter()
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            texts("let x = a.unwrap();"),
            vec!["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]
        );
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still outer */ b";
        let t = lex(src).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t[1].kind, TokenKind::BlockComment);
        assert_eq!(t[2].text(src), "b");
    }

    #[test]
    fn raw_string_with_fences() {
        let src = r####"x = r#"contains "quotes" and unwrap()"# ;"####;
        let t = lex(src).unwrap();
        let s = t.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert!(s.text(src).contains("unwrap()"));
        // The unwrap inside the raw string is NOT an Ident token.
        assert!(!t
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "unwrap"));
    }

    #[test]
    fn raw_ident_vs_raw_string() {
        assert_eq!(kinds("r#match"), vec![TokenKind::Ident]);
        assert_eq!(kinds(r##"r#"s"#"##), vec![TokenKind::Str]);
        assert_eq!(kinds(r###"r##"s"##"###), vec![TokenKind::Str]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        assert_eq!(
            kinds("'a 'static '\\'' 'x' '('"),
            vec![
                TokenKind::Lifetime,
                TokenKind::Lifetime,
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Char,
            ]
        );
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(
            kinds(r##"b"x" br#"y"# c"z" b'q'"##),
            vec![
                TokenKind::Str,
                TokenKind::Str,
                TokenKind::Str,
                TokenKind::Char
            ]
        );
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(
            texts("0..10"),
            vec!["0", ".", ".", "10"],
            "range dots must not be eaten by the number"
        );
        assert_eq!(texts("1.5e-3_f64"), vec!["1.5e-3_f64"]);
        assert_eq!(texts("0xFF_u8"), vec!["0xFF_u8"]);
    }

    #[test]
    fn line_numbers() {
        let src = "a\nb\n\n  c";
        let t = lex(src).unwrap();
        assert_eq!(t.iter().map(|t| t.line).collect::<Vec<_>>(), vec![1, 2, 4]);
    }

    #[test]
    fn string_escapes() {
        let src = r#""with \" escaped quote and unwrap()""#;
        let t = lex(src).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].kind, TokenKind::Str);
    }

    #[test]
    fn unterminated_inputs_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* nested /* deep */").is_err());
        assert!(lex("r#\"open").is_err());
    }

    #[test]
    fn attribute_shape() {
        assert_eq!(
            texts("#[cfg(test)]"),
            vec!["#", "[", "cfg", "(", "test", ")", "]"]
        );
    }
}
