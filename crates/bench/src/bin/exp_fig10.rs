//! Fig. 10 + Table VIII: performance and window size on the **periodic**
//! datasets (Tencent II / Sysbench II / TPCC II).

use dbcatcher_bench::{print_performance, print_scale_banner, print_window_sizes};
use dbcatcher_eval::experiments::{compare_methods, subset_specs, Scale};
use dbcatcher_eval::methods::MethodKind;
use dbcatcher_workload::dataset::Subset;

fn main() {
    let scale = Scale::from_args();
    print_scale_banner("Fig. 10 / Table VIII — periodic datasets", &scale);
    let specs = subset_specs(&scale, Subset::Periodic);
    let results = compare_methods(&specs, &MethodKind::all(), &scale);
    print_performance("Fig. 10: performance on periodic datasets", &results);
    print_window_sizes(
        "Table VIII: Window-Sizes for best F-Measure (periodic)",
        &results,
    );
    println!(
        "{}",
        serde_json::to_string(&results).expect("serializable results")
    );
}
