//! Snapshot + WAL atomicity under a mid-tick kill.
//!
//! Property: for an arbitrary kill tick K, a daemon with per-tick
//! snapshots and a write-ahead log that dies mid-tick (via
//! [`CrashSwitch`], after ingesting tick K) leaves recoverable state
//! equal to **exactly** what it ingested: the snapshot alone may lag by
//! the single in-flight tick, but snapshot + WAL suffix reconstructs
//! every accepted tick — zero lost, zero duplicated. A `--resume`
//! reboot replays that state so the union of both sessions' verdicts
//! equals a clean offline run.
//!
//! Fixed kill points run in the default suite; the 256-case sweep over
//! arbitrary kill ticks is `#[ignore]`d and driven by `ci.sh` in release.

use dbcatcher_core::config::DbCatcherConfig;
use dbcatcher_core::pipeline::{DbCatcher, Verdict};
use dbcatcher_core::snapshot::DetectorSnapshot;
use dbcatcher_serve::{
    emit_surviving, wal, CrashSwitch, DetectionServer, EmitOptions, ServeConfig, UnitStream,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const DBS: usize = 3;
const KPIS: usize = 4;
const TICKS: usize = 140;

/// Smooth synthetic telemetry: correlated across databases with a mild
/// per-database phase offset, so the detector has structure to track.
fn frame(t: usize) -> Vec<Vec<f64>> {
    (0..DBS)
        .map(|db| {
            (0..KPIS)
                .map(|kpi| {
                    let phase = t as f64 * 0.13 + kpi as f64 * 1.3 + db as f64 * 0.05;
                    50.0 + 10.0 * phase.sin() + kpi as f64
                })
                .collect()
        })
        .collect()
}

fn offline_verdicts() -> Vec<(u64, Verdict)> {
    let mut catcher = DbCatcher::new(DbCatcherConfig::with_kpis(KPIS), DBS);
    let mut out = Vec::new();
    for t in 0..TICKS {
        let report = catcher.try_ingest_tick(&frame(t)).expect("clean frames");
        out.extend(report.verdicts.into_iter().map(|v| (t as u64, v)));
    }
    out
}

type Key = (u64, usize, u64, u64, usize, u32);

fn key(at_tick: u64, v: &Verdict) -> Key {
    (
        at_tick,
        v.db,
        v.start_tick,
        v.end_tick,
        v.window_size,
        v.expansions,
    )
}

fn scratch() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dbcatcher_atomicity_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn boot(dir: &Path, crash: Option<std::sync::Arc<CrashSwitch>>) -> Vec<(u64, Verdict)> {
    let config = ServeConfig {
        max_units: 1,
        shards: 1,
        queue_cap: 8,
        snapshot_dir: Some(dir.to_path_buf()),
        snapshot_every: 1,
        resume_dir: Some(dir.to_path_buf()),
        wal_dir: Some(dir.join("wal")),
        fsync_every: 1,
        retry_after_ms: 2,
        crash,
        ..ServeConfig::default()
    };
    let server = DetectionServer::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    let streams = vec![UnitStream {
        unit: 0,
        dbs: DBS,
        kpis: KPIS,
        participation: None,
        frames: (0..TICKS).map(frame).collect(),
    }];
    let options = EmitOptions {
        rate: 0.0,
        window: 16,
        stop_after: false,
        ..EmitOptions::default()
    };
    let report = emit_surviving(addr, streams, &options).expect("session connects");
    handle.stop();
    thread.join().expect("server thread").expect("server run");
    report
        .verdicts
        .into_iter()
        .map(|r| (r.at_tick, r.verdict))
        .collect()
}

/// Kill after `kill_tick` ingests, resume, and check both halves of the
/// contract against the persisted snapshot and the offline oracle.
fn check_kill_resume(kill_tick: u64) {
    let dir = scratch();
    let switch = CrashSwitch::armed(kill_tick);
    let survivors = boot(&dir, Some(switch.clone()));
    assert!(switch.tripped(), "kill at {kill_tick} must fire");
    let ingested = switch.ingested().get(&0).copied().unwrap_or(0);
    assert_eq!(
        ingested, kill_tick,
        "single shard ingests exactly to the trip"
    );

    // Snapshot-only bound: the tripping tick may be ingested but not yet
    // snapshotted, every earlier tick is (snapshot_every == 1).
    let snapshot_path = dir.join("unit_0.json");
    let persisted = if kill_tick <= 1 {
        assert!(
            !snapshot_path.exists(),
            "killing on the first ingest leaves no snapshot"
        );
        0
    } else {
        let json = std::fs::read_to_string(&snapshot_path).expect("snapshot file");
        let snapshot = DetectorSnapshot::from_json(&json).expect("snapshot parses");
        snapshot.validate().expect("snapshot internally consistent");
        snapshot.summary().next_tick
    };
    assert!(
        persisted + 1 == ingested || persisted == ingested,
        "kill at {kill_tick}: persisted {persisted}, ingested {ingested}"
    );

    // Zero-loss contract: the WAL records every accepted tick before it
    // reaches the detector, so snapshot + WAL suffix recovers to the
    // ingest position exactly — no tick lost, none replayed twice.
    let recovery = wal::recover_shard(&dir.join("wal").join("shard_0")).expect("wal readable");
    let recovered = recovery.recovered_position(0, persisted);
    assert_eq!(
        recovered, ingested,
        "kill at {kill_tick}: snapshot+WAL must recover exactly the ingested prefix"
    );

    // Resume and replay the remainder: the union of both sessions'
    // verdicts must equal the deterministic offline run.
    let resumed = boot(&dir, None);
    let mut online: Vec<Key> = survivors
        .iter()
        .chain(resumed.iter())
        .map(|(t, v)| key(*t, v))
        .collect();
    online.sort_unstable();
    online.dedup();
    let mut offline: Vec<Key> = offline_verdicts().iter().map(|(t, v)| key(*t, v)).collect();
    offline.sort_unstable();
    offline.dedup();
    assert_eq!(
        online, offline,
        "kill at {kill_tick}: online union must equal the offline replay"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_on_first_ingest_recovers_it_from_the_wal() {
    check_kill_resume(1);
}

#[test]
fn kill_mid_stream_preserves_the_verdict_stream() {
    check_kill_resume(40);
}

#[test]
fn kill_past_the_first_verdict_window_preserves_state() {
    check_kill_resume(97);
}

proptest! {
    /// The full sweep: an arbitrary kill tick anywhere in the stream
    /// recovers every ingested tick from snapshot + WAL and never loses
    /// or duplicates a verdict across the restart.
    #[test]
    #[ignore = "256 daemon lifecycles; ci.sh runs this in release"]
    fn arbitrary_kill_tick_recovers_every_ingested_tick(kill in 1u64..(TICKS as u64)) {
        check_kill_resume(kill);
    }
}
