//! Ingestion hardening: frame validation, gap repair and the telemetry
//! health ledger.
//!
//! The paper assumes every database delivers a clean KPI frame each
//! 5-second cycle; real collectors drop, duplicate and corrupt samples.
//! This module sits in front of [`crate::queues::KpiQueues`]: every
//! incoming sample is checked for finiteness and staleness, bad samples
//! are repaired by a configurable [`GapPolicy`] (the correlation engines
//! must never see a non-finite value — `NaN` would corrupt the
//! incremental engine's monotonic deques), and every repair is recorded in
//! a per-`(db, kpi)` [`TelemetryHealth`] ledger.
//!
//! A database whose recent frames are mostly bad is *demoted to
//! non-voting*: it is excluded from every correlation matrix and level
//! aggregation through the same participation path as the paper's
//! unused-database rule, so a flaky collector cannot drag healthy peers'
//! scores down. After enough consecutive clean ticks the database is
//! re-admitted automatically. See DESIGN.md §"Degraded-mode semantics".
//!
//! Everything here is a pure function of the observed stream, so both
//! correlation backends see identical sanitized data and demotion
//! decisions — the differential harness checks exactly that.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How a missing (non-finite) sample is replaced before entering the
/// queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GapPolicy {
    /// Repeat the last good value (default; a flat segment keeps KCD's
    /// constant-window conventions well-defined).
    #[default]
    HoldLast,
    /// Continue the last good slope (`last + (last − prev)`), falling
    /// back to hold-last with fewer than two good points.
    LinearFill,
    /// Fill with the last good value but *mark the tick missing*: any
    /// window overlapping it excludes the `(db, kpi)` pair from
    /// participation, so repaired data never votes.
    MarkMissing,
}

impl std::str::FromStr for GapPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hold-last" => Ok(GapPolicy::HoldLast),
            "linear-fill" => Ok(GapPolicy::LinearFill),
            "mark-missing" => Ok(GapPolicy::MarkMissing),
            other => Err(format!("unknown gap policy: {other}")),
        }
    }
}

/// Ingestion-hardening knobs, embedded in
/// [`crate::config::DbCatcherConfig`]. The defaults leave a clean stream
/// bit-identical to a detector without the ingest layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestConfig {
    /// Repair policy for missing samples.
    pub gap_policy: GapPolicy,
    /// A sensor repeating the exact same value for more than this many
    /// consecutive ticks is *stale* (wedged); `0` disables the check.
    pub stale_after: usize,
    /// Fraction of bad ticks within [`Self::health_window`] beyond which
    /// a database is demoted to non-voting.
    pub demote_ratio: f64,
    /// Length in ticks of the sliding badness window.
    pub health_window: usize,
    /// Consecutive clean ticks a demoted database needs for re-admission.
    pub readmit_after: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            gap_policy: GapPolicy::HoldLast,
            stale_after: 0,
            demote_ratio: 0.5,
            health_window: 60,
            readmit_after: 20,
        }
    }
}

/// Typed ingestion failure; [`crate::DbCatcher::try_ingest_tick`] returns
/// it instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The frame's database count mismatches the unit.
    FrameArity {
        /// Databases expected.
        expected: usize,
        /// Databases delivered.
        got: usize,
    },
    /// One database's KPI count mismatches the configuration.
    KpiArity {
        /// Offending database.
        db: usize,
        /// KPIs expected.
        expected: usize,
        /// KPIs delivered.
        got: usize,
    },
    /// A judged window reaches outside the retained queue history —
    /// internal inconsistency surfaced as an error instead of a panic.
    WindowUnavailable {
        /// Database whose window was read.
        db: usize,
        /// KPI whose window was read.
        kpi: usize,
        /// First tick of the window.
        start: u64,
        /// Window length.
        len: usize,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::FrameArity { expected, got } => {
                write!(
                    f,
                    "frame has {got} database(s), detector expects {expected}"
                )
            }
            IngestError::KpiArity { db, expected, got } => {
                write!(
                    f,
                    "database {db} delivered {got} KPI(s), configuration expects {expected}"
                )
            }
            IngestError::WindowUnavailable {
                db,
                kpi,
                start,
                len,
            } => {
                write!(
                    f,
                    "window [{start}, {start}+{len}) of (db {db}, kpi {kpi}) is not retained"
                )
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// What one successful [`crate::DbCatcher::try_ingest_tick`] call did.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IngestReport {
    /// Verdicts that became final at this tick.
    pub verdicts: Vec<crate::pipeline::Verdict>,
    /// Samples repaired (missing → gap-policy substitute) this tick.
    pub repaired: usize,
    /// Samples flagged stale this tick.
    pub stale: usize,
    /// Databases demoted to non-voting at this tick.
    pub demoted: Vec<usize>,
    /// Databases re-admitted to voting at this tick.
    pub readmitted: Vec<usize>,
}

/// Per-tick outcome of [`TelemetryHealth::observe`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickHealth {
    /// Samples repaired this tick.
    pub repaired: usize,
    /// Samples flagged stale this tick.
    pub stale: usize,
    /// Databases demoted this tick.
    pub demoted: Vec<usize>,
    /// Databases re-admitted this tick.
    pub readmitted: Vec<usize>,
}

/// Lifetime counters and repair state of one `(db, kpi)` sensor.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SensorHealth {
    /// Samples observed.
    pub total: u64,
    /// Samples that arrived non-finite.
    pub missing: u64,
    /// Samples flagged stale.
    pub stale: u64,
    /// Samples substituted by the gap policy.
    pub repaired: u64,
    /// Most recent value pushed into the queues (always finite).
    last_good: Option<f64>,
    /// The value before `last_good` (linear-fill slope).
    prev_good: Option<f64>,
    /// Last *delivered* finite value, for stale-run tracking.
    last_raw: Option<f64>,
    /// Length of the current identical-value run.
    run_length: u64,
}

/// The per-unit telemetry health ledger: sensor counters, the per-database
/// sliding badness window, voting status and (under
/// [`GapPolicy::MarkMissing`]) the recorded missing ticks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryHealth {
    num_dbs: usize,
    num_kpis: usize,
    /// Flattened `db * num_kpis + kpi`.
    sensors: Vec<SensorHealth>,
    /// Per-database ring of per-tick badness flags (≤ `health_window`).
    recent_bad: Vec<VecDeque<bool>>,
    /// Cached count of `true` entries in each ring.
    bad_counts: Vec<usize>,
    /// `false` = demoted to non-voting.
    voting: Vec<bool>,
    /// Consecutive clean ticks per database (re-admission counter).
    clean_streak: Vec<u64>,
    /// Per-sensor missing-tick log, kept only under
    /// [`GapPolicy::MarkMissing`], pruned to the queue retention.
    missing_ticks: Vec<VecDeque<u64>>,
    /// Lifetime demotion count.
    demotions: u64,
    /// Lifetime re-admission count.
    readmissions: u64,
}

impl TelemetryHealth {
    /// A fresh ledger for `num_dbs × num_kpis` sensors, all voting.
    pub fn new(num_dbs: usize, num_kpis: usize) -> Self {
        let sensors = num_dbs * num_kpis;
        Self {
            num_dbs,
            num_kpis,
            sensors: vec![SensorHealth::default(); sensors],
            recent_bad: vec![VecDeque::new(); num_dbs],
            bad_counts: vec![0; num_dbs],
            voting: vec![true; num_dbs],
            clean_streak: vec![0; num_dbs],
            missing_ticks: vec![VecDeque::new(); sensors],
            demotions: 0,
            readmissions: 0,
        }
    }

    #[inline]
    fn idx(&self, db: usize, kpi: usize) -> usize {
        db * self.num_kpis + kpi
    }

    /// Validates and repairs one frame, updates the ledger, and applies
    /// demotion / re-admission. Returns the sanitized frame (every value
    /// finite) plus what happened. `retention` bounds the missing-tick log
    /// to what any window can still read.
    pub fn observe(
        &mut self,
        frame: &[Vec<f64>],
        tick: u64,
        cfg: &IngestConfig,
        retention: usize,
    ) -> (Vec<Vec<f64>>, TickHealth) {
        let mut out = Vec::with_capacity(frame.len());
        let summary = self.observe_into(frame, tick, cfg, retention, &mut out);
        (out, summary)
    }

    /// [`Self::observe`] writing the sanitized frame into a reusable
    /// staging buffer instead of allocating one — `out` is reshaped to the
    /// frame (rows keep their capacity across ticks), so a warmed-up
    /// caller pays zero allocations on a clean tick.
    pub fn observe_into(
        &mut self,
        frame: &[Vec<f64>],
        tick: u64,
        cfg: &IngestConfig,
        retention: usize,
        out: &mut Vec<Vec<f64>>,
    ) -> TickHealth {
        out.resize_with(frame.len(), Vec::new);
        let mut summary = TickHealth::default();
        for ((db, kpis), row) in frame.iter().enumerate().zip(out.iter_mut()) {
            let mut db_bad = false;
            row.clear();
            for (kpi, &raw) in kpis.iter().enumerate() {
                let i = self.idx(db, kpi);
                let s = &mut self.sensors[i];
                s.total += 1;
                let value = if raw.is_finite() {
                    let same = s.last_raw.is_some_and(|p| p.to_bits() == raw.to_bits());
                    s.run_length = if same { s.run_length + 1 } else { 1 };
                    s.last_raw = Some(raw);
                    let is_stale = cfg.stale_after > 0 && s.run_length > cfg.stale_after as u64;
                    if is_stale {
                        s.stale += 1;
                        summary.stale += 1;
                        db_bad = true;
                    }
                    s.prev_good = s.last_good;
                    s.last_good = Some(raw);
                    if is_stale && cfg.gap_policy == GapPolicy::MarkMissing {
                        self.missing_ticks[i].push_back(tick);
                    }
                    raw
                } else {
                    s.missing += 1;
                    s.repaired += 1;
                    summary.repaired += 1;
                    db_bad = true;
                    // a broken stale-run is over; the next finite sample
                    // starts a fresh run
                    s.run_length = 0;
                    s.last_raw = None;
                    let fill = match cfg.gap_policy {
                        GapPolicy::HoldLast | GapPolicy::MarkMissing => s.last_good.unwrap_or(0.0),
                        GapPolicy::LinearFill => match (s.last_good, s.prev_good) {
                            (Some(last), Some(prev)) => last + (last - prev),
                            (Some(last), None) => last,
                            _ => 0.0,
                        },
                    };
                    let fill = if fill.is_finite() {
                        fill
                    } else {
                        s.last_good.unwrap_or(0.0)
                    };
                    s.prev_good = s.last_good;
                    s.last_good = Some(fill);
                    if cfg.gap_policy == GapPolicy::MarkMissing {
                        self.missing_ticks[i].push_back(tick);
                    }
                    fill
                };
                // prune entries no retained window can read anymore
                let log = &mut self.missing_ticks[i];
                while log.front().is_some_and(|&t| t + retention as u64 <= tick) {
                    log.pop_front();
                }
                row.push(value);
            }

            // sliding badness window + voting state
            let ring = &mut self.recent_bad[db];
            ring.push_back(db_bad);
            if db_bad {
                self.bad_counts[db] += 1;
            }
            while ring.len() > cfg.health_window {
                if ring.pop_front() == Some(true) {
                    self.bad_counts[db] -= 1;
                }
            }
            if self.voting[db] {
                if self.bad_counts[db] as f64 > cfg.demote_ratio * cfg.health_window as f64 {
                    self.voting[db] = false;
                    self.clean_streak[db] = 0;
                    self.demotions += 1;
                    summary.demoted.push(db);
                }
            } else if db_bad {
                self.clean_streak[db] = 0;
            } else {
                self.clean_streak[db] += 1;
                if self.clean_streak[db] >= cfg.readmit_after as u64 {
                    self.voting[db] = true;
                    self.clean_streak[db] = 0;
                    self.recent_bad[db].clear();
                    self.bad_counts[db] = 0;
                    self.readmissions += 1;
                    summary.readmitted.push(db);
                }
            }
        }
        summary
    }

    /// Whether database `db` currently votes in correlation matrices and
    /// level aggregation.
    pub fn is_voting(&self, db: usize) -> bool {
        self.voting.get(db).copied().unwrap_or(true)
    }

    /// Currently demoted databases, ascending.
    pub fn non_voting(&self) -> Vec<usize> {
        (0..self.num_dbs).filter(|&db| !self.voting[db]).collect()
    }

    /// `true` when no recorded missing tick of `(db, kpi)` overlaps the
    /// window `[start, start + len)` — always `true` outside
    /// [`GapPolicy::MarkMissing`].
    pub fn window_clean(&self, db: usize, kpi: usize, start: u64, len: usize) -> bool {
        let end = start + len as u64;
        !self.missing_ticks[self.idx(db, kpi)]
            .iter()
            .any(|&t| t >= start && t < end)
    }

    /// Lifetime counters of one sensor.
    pub fn sensor(&self, db: usize, kpi: usize) -> &SensorHealth {
        &self.sensors[self.idx(db, kpi)]
    }

    /// Lifetime demotion count.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Lifetime re-admission count.
    pub fn readmissions(&self) -> u64 {
        self.readmissions
    }

    /// Total missing samples across all sensors.
    pub fn total_missing(&self) -> u64 {
        self.sensors.iter().map(|s| s.missing).sum()
    }

    /// Total repaired samples across all sensors.
    pub fn total_repaired(&self) -> u64 {
        self.sensors.iter().map(|s| s.repaired).sum()
    }

    /// Total stale samples across all sensors.
    pub fn total_stale(&self) -> u64 {
        self.sensors.iter().map(|s| s.stale).sum()
    }

    /// One-line summary for CLI reports.
    pub fn summary_line(&self) -> String {
        format!(
            "{} sample(s) repaired, {} stale, {} demotion(s), {} re-admission(s), \
             non-voting now: {:?}",
            self.total_repaired(),
            self.total_stale(),
            self.demotions,
            self.readmissions,
            self.non_voting()
        )
    }
}

/// Validates the ingest knobs (called from
/// [`crate::config::DbCatcherConfig::validate`]).
pub(crate) fn validate_ingest(cfg: &IngestConfig) -> Result<(), crate::config::ConfigError> {
    use crate::config::ConfigError;
    if !(cfg.demote_ratio > 0.0 && cfg.demote_ratio <= 1.0) {
        return Err(ConfigError::DemoteRatioOutOfRange {
            ratio: cfg.demote_ratio,
        });
    }
    if cfg.health_window == 0 {
        return Err(ConfigError::ZeroHealthWindow);
    }
    if cfg.readmit_after == 0 {
        return Err(ConfigError::ZeroReadmitAfter);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> IngestConfig {
        IngestConfig {
            health_window: 10,
            demote_ratio: 0.5,
            readmit_after: 4,
            ..IngestConfig::default()
        }
    }

    fn observe_row(
        health: &mut TelemetryHealth,
        cfg: &IngestConfig,
        tick: u64,
        values: &[f64],
    ) -> (Vec<f64>, TickHealth) {
        let frame: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        let (out, summary) = health.observe(&frame, tick, cfg, 100);
        (out.into_iter().map(|row| row[0]).collect(), summary)
    }

    #[test]
    fn clean_stream_passes_through_untouched() {
        let mut health = TelemetryHealth::new(2, 1);
        let cfg = cfg();
        for t in 0..20 {
            let (out, summary) = observe_row(&mut health, &cfg, t, &[t as f64, t as f64 * 2.0]);
            assert_eq!(out, vec![t as f64, t as f64 * 2.0]);
            assert_eq!(summary, TickHealth::default());
        }
        assert_eq!(health.total_repaired(), 0);
        assert!(health.is_voting(0) && health.is_voting(1));
    }

    #[test]
    fn hold_last_repairs_nan_and_inf() {
        let mut health = TelemetryHealth::new(1, 1);
        let cfg = cfg();
        observe_row(&mut health, &cfg, 0, &[5.0]);
        let (out, s) = observe_row(&mut health, &cfg, 1, &[f64::NAN]);
        assert_eq!(out, vec![5.0]);
        assert_eq!(s.repaired, 1);
        let (out, _) = observe_row(&mut health, &cfg, 2, &[f64::INFINITY]);
        assert_eq!(out, vec![5.0]);
        assert_eq!(health.sensor(0, 0).missing, 2);
    }

    #[test]
    fn leading_gap_fills_zero() {
        let mut health = TelemetryHealth::new(1, 1);
        let (out, _) = observe_row(&mut health, &cfg(), 0, &[f64::NAN]);
        assert_eq!(out, vec![0.0]);
    }

    #[test]
    fn linear_fill_continues_slope() {
        let mut health = TelemetryHealth::new(1, 1);
        let cfg = IngestConfig {
            gap_policy: GapPolicy::LinearFill,
            ..cfg()
        };
        observe_row(&mut health, &cfg, 0, &[10.0]);
        observe_row(&mut health, &cfg, 1, &[12.0]);
        let (out, _) = observe_row(&mut health, &cfg, 2, &[f64::NAN]);
        assert_eq!(out, vec![14.0]);
        let (out, _) = observe_row(&mut health, &cfg, 3, &[f64::NAN]);
        assert_eq!(out, vec![16.0], "consecutive gaps keep extrapolating");
    }

    #[test]
    fn mark_missing_taints_overlapping_windows() {
        let mut health = TelemetryHealth::new(1, 1);
        let cfg = IngestConfig {
            gap_policy: GapPolicy::MarkMissing,
            ..cfg()
        };
        for t in 0..10 {
            let v = if t == 4 { f64::NAN } else { t as f64 };
            observe_row(&mut health, &cfg, t, &[v]);
        }
        assert!(!health.window_clean(0, 0, 0, 10));
        assert!(!health.window_clean(0, 0, 4, 1));
        assert!(health.window_clean(0, 0, 0, 4));
        assert!(health.window_clean(0, 0, 5, 5));
    }

    #[test]
    fn hold_last_windows_always_clean() {
        let mut health = TelemetryHealth::new(1, 1);
        let cfg = cfg();
        for t in 0..10 {
            observe_row(&mut health, &cfg, t, &[f64::NAN]);
        }
        assert!(health.window_clean(0, 0, 0, 10));
    }

    #[test]
    fn stale_run_detected_after_threshold() {
        let mut health = TelemetryHealth::new(1, 1);
        let cfg = IngestConfig {
            stale_after: 3,
            ..cfg()
        };
        let mut stale_ticks = 0;
        for t in 0..8 {
            let (_, s) = observe_row(&mut health, &cfg, t, &[42.0]);
            stale_ticks += s.stale;
        }
        // runs 1..=8; stale from run 4 on → ticks 3..8 = 5 samples
        assert_eq!(stale_ticks, 5);
        // a changed value resets the run
        let (_, s) = observe_row(&mut health, &cfg, 8, &[43.0]);
        assert_eq!(s.stale, 0);
    }

    #[test]
    fn demotion_and_readmission_lifecycle() {
        let mut health = TelemetryHealth::new(2, 1);
        let cfg = cfg(); // window 10, ratio 0.5, readmit 4
        let mut demoted_at = None;
        let mut readmitted_at = None;
        for t in 0..40 {
            // db 0 loses every sample during ticks 5..15, db 1 stays clean
            let v0 = if (5..15).contains(&t) {
                f64::NAN
            } else {
                t as f64
            };
            let (_, s) = observe_row(&mut health, &cfg, t, &[v0, t as f64]);
            if s.demoted == vec![0] && demoted_at.is_none() {
                demoted_at = Some(t);
            }
            if s.readmitted == vec![0] {
                readmitted_at = Some(t);
            }
        }
        // > 5 bad ticks in the 10-tick window → demotion at tick 10
        assert_eq!(demoted_at, Some(10));
        // clean from tick 15; 4 consecutive clean ticks → back at 18
        assert_eq!(readmitted_at, Some(18));
        assert!(health.is_voting(0));
        assert_eq!(health.demotions(), 1);
        assert_eq!(health.readmissions(), 1);
        assert!(health.is_voting(1), "clean peer never demoted");
    }

    #[test]
    fn bad_ticks_during_demotion_reset_the_streak() {
        let mut health = TelemetryHealth::new(1, 1);
        let cfg = cfg();
        for t in 0..11 {
            observe_row(&mut health, &cfg, t, &[f64::NAN]);
        }
        assert!(!health.is_voting(0));
        // alternate clean/bad: streak never reaches 4
        for t in 11..30 {
            let v = if t % 2 == 0 { f64::NAN } else { 1.0 };
            observe_row(&mut health, &cfg, t, &[v]);
        }
        assert!(!health.is_voting(0));
        assert_eq!(health.readmissions(), 0);
    }

    #[test]
    fn missing_log_pruned_to_retention() {
        let mut health = TelemetryHealth::new(1, 1);
        let cfg = IngestConfig {
            gap_policy: GapPolicy::MarkMissing,
            demote_ratio: 1.0,
            ..cfg()
        };
        for t in 0..50 {
            let frame = vec![vec![f64::NAN]];
            health.observe(&frame, t, &cfg, 10);
        }
        assert!(health.missing_ticks[0].len() <= 10);
        assert!(!health.window_clean(0, 0, 45, 5));
    }

    #[test]
    fn summary_line_mentions_counts() {
        let mut health = TelemetryHealth::new(1, 1);
        observe_row(&mut health, &cfg(), 0, &[f64::NAN]);
        let line = health.summary_line();
        assert!(line.contains("1 sample(s) repaired"), "{line}");
    }

    #[test]
    fn ledger_serde_round_trips() {
        let mut health = TelemetryHealth::new(2, 2);
        let cfg = IngestConfig {
            gap_policy: GapPolicy::MarkMissing,
            ..cfg()
        };
        for t in 0..12 {
            let frame = vec![vec![t as f64, f64::NAN], vec![1.0, 2.0]];
            health.observe(&frame, t, &cfg, 100);
        }
        let json = serde_json::to_string(&health).expect("serialize");
        let back: TelemetryHealth = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(health, back);
    }

    #[test]
    fn gap_policy_parses() {
        assert_eq!("hold-last".parse::<GapPolicy>(), Ok(GapPolicy::HoldLast));
        assert_eq!(
            "linear-fill".parse::<GapPolicy>(),
            Ok(GapPolicy::LinearFill)
        );
        assert_eq!(
            "mark-missing".parse::<GapPolicy>(),
            Ok(GapPolicy::MarkMissing)
        );
        assert!("zero".parse::<GapPolicy>().is_err());
    }
}
