//! Registry-free `#[derive(Serialize, Deserialize)]` shim.
//!
//! No `syn`/`quote` are available offline, so this crate parses the token
//! stream by hand. It supports exactly the shapes this workspace uses:
//! non-generic structs (named, tuple, unit) and non-generic enums with
//! unit, tuple, and struct variants (explicit discriminants allowed).
//! Anything fancier panics at compile time with a clear message rather
//! than silently producing wrong code.
//!
//! Generated impls target the in-tree `serde` shim's `Value` model:
//! structs become objects, unit variants become strings, data-carrying
//! variants become `{"Variant": …}` single-key objects — mirroring
//! serde_json's externally-tagged default.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` (shim Value model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (shim Value model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ------------------------------------------------------------------ parse

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(kw)) => kw.to_string(),
        other => panic!("serde shim derive: expected struct/enum keyword, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde shim derive: malformed struct `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    Input { name, shape }
}

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes(tokens: &mut Tokens) {
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next(); // '#'
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("serde shim derive: malformed attribute: {other:?}"),
        }
    }
}

fn skip_visibility(tokens: &mut Tokens) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        // pub(crate) / pub(super) / …
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Parses `name: Type, …` field lists; returns the field names in order.
/// Commas inside angle brackets (`HashMap<String, f64>`) are tracked by
/// hand because `<…>` is not a token group.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(field)) => {
                match tokens.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!(
                        "serde shim derive: expected `:` after field `{field}`, found {other:?}"
                    ),
                }
                fields.push(field.to_string());
                skip_type_until_comma(&mut tokens);
            }
            other => panic!("serde shim derive: expected field name, found {other:?}"),
        }
    }
    fields
}

fn skip_type_until_comma(tokens: &mut Tokens) {
    let mut angle_depth = 0usize;
    while let Some(token) = tokens.peek() {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    tokens.next();
                    return;
                }
                _ => {}
            }
        }
        tokens.next();
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0usize;
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        count += 1;
        skip_type_until_comma(&mut tokens);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => panic!("serde shim derive: expected variant name, found {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                tokens.next();
                VariantShape::Tuple(count_tuple_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                tokens.next();
                VariantShape::Named(parse_named_fields(inner))
            }
            _ => VariantShape::Unit,
        };
        // optional explicit discriminant: `= <expr>` — skip to the comma
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            skip_type_until_comma(&mut tokens);
        } else if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string())"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(f0))])"
                        ),
                        VariantShape::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(value.get(\"{f}\").unwrap_or(&::serde::Value::Null)).map_err(|e| e.context(\"{name}.{f}\"))?"
                    )
                })
                .collect();
            format!(
                "if value.as_object().is_none() {{\n\
                 \treturn Err(::serde::DeError::new(\"{name}: expected object\"));\n\
                 }}\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(arity) => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(&items[{i}]).map_err(|e| e.context(\"{name}.{i}\"))?"
                    )
                })
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| ::serde::DeError::new(\"{name}: expected array\"))?;\n\
                 if items.len() != {arity} {{\n\
                 \treturn Err(::serde::DeError::new(\"{name}: wrong arity\"));\n\
                 }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0})", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(inner).map_err(|e| e.context(\"{name}::{vname}\"))?))"
                        )),
                        VariantShape::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(&items[{i}]).map_err(|e| e.context(\"{name}::{vname}.{i}\"))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 \tlet items = inner.as_array().ok_or_else(|| ::serde::DeError::new(\"{name}::{vname}: expected array\"))?;\n\
                                 \tif items.len() != {arity} {{\n\
                                 \t\treturn Err(::serde::DeError::new(\"{name}::{vname}: wrong arity\"));\n\
                                 \t}}\n\
                                 \tOk({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(inner.get(\"{f}\").unwrap_or(&::serde::Value::Null)).map_err(|e| e.context(\"{name}::{vname}.{f}\"))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => Ok({name}::{vname} {{ {} }})",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match value {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit}\n\
                 other => Err(::serde::DeError::new(format!(\"{name}: unknown variant {{other:?}}\"))),\n\
                 }},\n\
                 v => {{\n\
                 \tlet entries = v.as_object().ok_or_else(|| ::serde::DeError::new(\"{name}: expected variant string or object\"))?;\n\
                 \tif entries.len() != 1 {{\n\
                 \t\treturn Err(::serde::DeError::new(\"{name}: expected single-key variant object\"));\n\
                 \t}}\n\
                 \tlet (tag, inner) = &entries[0];\n\
                 \tmatch tag.as_str() {{\n\
                 {data}\n\
                 other => Err(::serde::DeError::new(format!(\"{name}: unknown variant {{other:?}}\"))),\n\
                 \t}}\n\
                 }}\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                data = if data_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", data_arms.join(",\n"))
                },
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         \tfn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         \t}}\n\
         }}"
    )
}
