// Known-bad fixture: waiver pathologies.
pub fn naked(xs: &[f64]) -> f64 {
    // dbclint: allow(panic-free)
    *xs.first().unwrap()
}

pub fn stale() -> f64 {
    // dbclint: allow(panic-free) — nothing to waive on the next line.
    1.0
}

pub fn unknown(xs: &[f64]) -> f64 {
    // dbclint: allow(no-such-rule) — not a rule dbclint knows.
    *xs.last().unwrap()
}
