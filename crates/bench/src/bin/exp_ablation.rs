//! Design-choice ablation (beyond the paper's Table X): score
//! aggregation, KCD lag-scan bound, resolve-at-max policy and the initial
//! window, each with thresholds re-learned, on the Sysbench mixed
//! dataset.

use dbcatcher_bench::print_scale_banner;
use dbcatcher_eval::experiments::{ablation_design_choices, Scale};
use dbcatcher_eval::report::{pct, render_table};

fn main() {
    let scale = Scale::from_args();
    print_scale_banner("Ablation — DBCatcher design choices", &scale);
    let rows: Vec<Vec<String>> = ablation_design_choices(&scale)
        .into_iter()
        .map(|r| vec![r.label, pct(r.f1), format!("{:.1}", r.avg_window)])
        .collect();
    println!(
        "{}",
        render_table(
            "Design-choice ablation (Sysbench mixed, thresholds re-learned per variant)",
            &["Variant", "F-Measure", "Avg Window"],
            &rows,
        )
    );
    println!(
        "(DESIGN.md §3 documents the reinterpretations these knobs correspond to; \
         the ±n/2 row shows why the paper's full lag scan is not the default here)"
    );
}
