//! Golden-file regression test: a fixed-seed scenario streamed through the
//! default detector must reproduce the committed verdict stream exactly.
//!
//! The golden file pins the *observable behaviour* of the whole pipeline —
//! queues, correlation engine, level quantisation, window state machine —
//! so an unintended change anywhere surfaces as a diff here even when
//! every unit test still passes.
//!
//! Regenerating after an **intended** behaviour change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! then review the diff of `tests/golden/quickstart_verdicts.jsonl` like
//! any other code change.

use dbcatcher::core::{DbCatcher, DbCatcherConfig, GapPolicy};
use dbcatcher::workload::scenario::UnitScenario;
use std::path::Path;

const GOLDEN_PATH: &str = "tests/golden/quickstart_verdicts.jsonl";
const FAULTED_GOLDEN_PATH: &str = "tests/golden/faulted_verdicts.jsonl";

/// One JSON line per verdict, in emission order.
fn render_verdicts(scenario: &UnitScenario, config: DbCatcherConfig) -> String {
    let data = scenario.generate();
    let mut catcher =
        DbCatcher::new(config, data.num_databases()).with_participation(data.participation.clone());
    let mut out = String::new();
    for t in 0..data.num_ticks() {
        let report = catcher
            .try_ingest_tick(&data.tick_matrix(t))
            .expect("well-shaped frame");
        for v in report.verdicts {
            out.push_str(&serde_json::to_string(&v).expect("verdict serializes"));
            out.push('\n');
        }
    }
    out
}

/// Compares (or, under `UPDATE_GOLDEN=1`, regenerates) one golden file.
fn check_golden(rendered: &str, golden_path: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(golden_path);
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, rendered).expect("write golden file");
        eprintln!("regenerated {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nrun `UPDATE_GOLDEN=1 cargo test --test golden` to create it",
            path.display()
        )
    });
    if rendered != golden {
        let diff_line = rendered
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| rendered.lines().count().min(golden.lines().count()) + 1);
        panic!(
            "verdict stream diverges from {} at line {diff_line} \
             ({} rendered vs {} golden lines).\n\
             If the change is intended, regenerate with \
             `UPDATE_GOLDEN=1 cargo test --test golden` and review the diff.",
            path.display(),
            rendered.lines().count(),
            golden.lines().count()
        );
    }
}

#[test]
fn quickstart_verdicts_match_golden_file() {
    let scenario = UnitScenario::quickstart(7);
    let rendered = render_verdicts(&scenario, DbCatcherConfig::default());
    assert!(!rendered.is_empty(), "scenario produced no verdicts");
    check_golden(&rendered, GOLDEN_PATH);
}

/// Pins the degraded-mode behaviour: the same scenario with the standard
/// collector-fault battery, repaired under mark-missing and with ingest
/// knobs tight enough that the outage demotes its database. Catches
/// unintended changes anywhere in the gap-repair / staleness / demotion
/// path, complementing the clean-stream golden above.
#[test]
fn faulted_verdicts_match_golden_file() {
    let scenario = UnitScenario::faulted_quickstart(7);
    let mut config = DbCatcherConfig::default();
    config.ingest.gap_policy = GapPolicy::MarkMissing;
    config.ingest.demote_ratio = 0.3;
    config.ingest.health_window = 30;
    config.ingest.readmit_after = 10;
    config.ingest.stale_after = 12;
    let rendered = render_verdicts(&scenario, config);
    assert!(
        !rendered.is_empty(),
        "faulted scenario produced no verdicts"
    );
    check_golden(&rendered, FAULTED_GOLDEN_PATH);
}
