//! Counting-allocator harness pinning the hot-path heap budget.
//!
//! The detection hot path (flat queues + scratch arenas + preallocated
//! incremental state) is designed to stop allocating once warm: after the
//! buffers have grown to the unit's steady shape, a **non-judging**
//! `ingest_tick` must perform **zero** heap allocations. Judging ticks are
//! allowed to allocate — they build `Verdict` values the caller keeps.
//!
//! The allocator below wraps `System` and counts every `alloc` /
//! `realloc` / `alloc_zeroed` in this test binary (integration tests link
//! their own binaries, so the counter never sees other suites).

use dbcatcher::core::config::{CorrelationBackend, DbCatcherConfig, DelayScan};
use dbcatcher::core::pipeline::DbCatcher;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY AUDIT — one of the workspace's two sanctioned `unsafe` surfaces
// (this file and its twin `crates/bench/benches/kcd.rs` are excluded from
// dbclint's `no-unsafe` rule; the other surface, the SIMD intrinsics in
// `crates/core/src/simd.rs`, stays in scope with per-site waivers).
//
// `GlobalAlloc` is an unsafe trait because the allocator must uphold the
// contract rustc's codegen relies on: returned pointers are valid for
// `layout`, dealloc/realloc are only reached with pointers this allocator
// handed out, and no unwinding crosses the allocator boundary. This impl
// delegates every operation verbatim to `std::alloc::System` — the same
// allocator the program would use anyway — and only increments a relaxed
// atomic counter on the side. The counter cannot unwind, allocate, or
// touch the pointer, so the entire safety obligation is inherited from
// `System`, which upholds it by definition.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Healthy, correlated telemetry: every database follows the same
/// sinusoid family, so windows resolve at the initial size and nothing
/// demotes or expands.
fn fill_frame(frame: &mut [Vec<f64>], kpis: usize, t: u64) {
    for (db, row) in frame.iter_mut().enumerate() {
        row.clear();
        for k in 0..kpis {
            let tf = t as f64;
            row.push(
                100.0 * (1.0 + 0.05 * db as f64)
                    + 30.0 * (std::f64::consts::TAU * (tf + k as f64) / 30.0).sin(),
            );
        }
    }
}

#[test]
fn steady_state_tick_allocates_nothing() {
    let dbs = 4usize;
    let kpis = 6usize;
    let config = DbCatcherConfig {
        initial_window: 20,
        max_window: 60,
        delay_scan: DelayScan::Fixed(3),
        backend: CorrelationBackend::Incremental,
        ..DbCatcherConfig::with_kpis(kpis)
    };
    let mut catcher = DbCatcher::new(config, dbs);
    let mut frame: Vec<Vec<f64>> = (0..dbs).map(|_| Vec::with_capacity(kpis)).collect();

    // Warmup: roughly three retention spans, enough for every queue,
    // deque, cache and hash table to reach its steady capacity.
    let warmup = 450u64;
    for t in 0..warmup {
        fill_frame(&mut frame, kpis, t);
        catcher
            .try_ingest_tick(&frame)
            .expect("healthy frame accepted");
    }

    let mut quiet_ticks = 0u64;
    let mut judging_ticks = 0u64;
    for t in warmup..warmup + 200 {
        fill_frame(&mut frame, kpis, t);
        let before = allocations();
        let report = catcher
            .try_ingest_tick(&frame)
            .expect("healthy frame accepted");
        let allocated = allocations() - before;
        if report.verdicts.is_empty() {
            assert_eq!(
                allocated, 0,
                "non-judging tick {t} allocated {allocated} times"
            );
            quiet_ticks += 1;
        } else {
            judging_ticks += 1;
        }
    }
    assert!(
        quiet_ticks >= 150,
        "only {quiet_ticks} quiet ticks measured"
    );
    assert!(judging_ticks > 0, "windows never resolved — bad fixture");
}
