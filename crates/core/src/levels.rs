//! Correlation levels (paper §III-C, Algorithm 1).
//!
//! A KCD score quantises into three levels against a per-KPI threshold
//! `α` and the tolerance `θ`:
//!
//! * **level-1** (extreme deviation): `score < α − θ`
//! * **level-2** (slight deviation): `α − θ ≤ score < α`
//! * **level-3** (correlated): `score ≥ α`
//!
//! (The paper's prose for the boundaries is self-contradictory; this is
//! the consistent reading — see DESIGN.md §3.1.)
//!
//! A database has N−1 pairwise scores per KPI; [`aggregate_scores`]
//! reduces them to one score before quantisation (DESIGN.md §3.2).

use crate::config::LevelAggregation;
use dbcatcher_signal::stats::{mean, median};
use serde::{Deserialize, Serialize};

/// Correlation level of one database on one KPI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    /// Level-1: extreme deviation.
    ExtremeDeviation,
    /// Level-2: slight deviation.
    SlightDeviation,
    /// Level-3: correlated.
    Correlated,
}

impl Level {
    /// The paper's numeric level (1, 2 or 3).
    pub fn number(self) -> u8 {
        match self {
            Level::ExtremeDeviation => 1,
            Level::SlightDeviation => 2,
            Level::Correlated => 3,
        }
    }
}

/// Quantisation grid for [`score_to_level`]. The two correlation
/// backends agree to ~1e-9 but not to the last ulp; when an aggregated
/// score lands *exactly* on a threshold (easy under telemetry faults:
/// the mean of an exact-convention 0.0 and a ~1.0 peer score is ~0.5,
/// the default `α − θ`), that last ulp would quantise into different
/// levels and the backends' window schedules would diverge. Snapping
/// scores to this grid first makes the decision insensitive to sub-grid
/// noise; exact convention values (0, ±0.5, 1) lie on the grid.
const LEVEL_GRID: f64 = 1e-12;

/// `ScoreToLevel` of Algorithm 1.
pub fn score_to_level(score: f64, alpha: f64, theta: f64) -> Level {
    let score = (score / LEVEL_GRID).round() * LEVEL_GRID;
    if score < alpha - theta {
        Level::ExtremeDeviation
    } else if score < alpha {
        Level::SlightDeviation
    } else {
        Level::Correlated
    }
}

/// Reduces a database's pairwise scores to one per-KPI score.
///
/// Returns `None` when the database has no participating peers (the KPI
/// then casts no vote on the database's state).
pub fn aggregate_scores(scores: &[f64], aggregation: LevelAggregation) -> Option<f64> {
    if scores.is_empty() {
        return None;
    }
    Some(match aggregation {
        LevelAggregation::Median => median(scores),
        LevelAggregation::Min => scores.iter().cloned().fold(f64::INFINITY, f64::min),
        LevelAggregation::Mean => mean(scores),
    })
}

/// Per-database level vector over all KPIs (the `D[j, ·]` row of
/// Algorithm 1). `None` entries are KPIs where the database does not
/// participate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelRow {
    /// One entry per KPI.
    pub levels: Vec<Option<Level>>,
    /// The aggregated score that produced each level (for judgment
    /// records / threshold re-learning). `NaN` where not participating.
    pub scores: Vec<f64>,
}

impl LevelRow {
    /// Counts of (level-1, level-2, level-3) across participating KPIs.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for level in self.levels.iter().flatten() {
            match level {
                Level::ExtremeDeviation => c.0 += 1,
                Level::SlightDeviation => c.1 += 1,
                Level::Correlated => c.2 += 1,
            }
        }
        c
    }
}

/// Builds a database's [`LevelRow`] from its aggregated per-KPI scores.
///
/// `scores[kpi]` must be `NaN` for KPIs where the database does not
/// participate.
///
/// # Panics
/// Panics when `scores` and `alphas` lengths differ.
pub fn level_row(scores: &[f64], alphas: &[f64], theta: f64) -> LevelRow {
    assert_eq!(scores.len(), alphas.len(), "score/alpha arity mismatch");
    let levels = scores
        .iter()
        .zip(alphas)
        .map(|(&s, &a)| {
            if s.is_nan() {
                None
            } else {
                Some(score_to_level(s, a, theta))
            }
        })
        .collect();
    LevelRow {
        levels,
        scores: scores.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_follow_design_reading() {
        let (alpha, theta) = (0.7, 0.2);
        assert_eq!(score_to_level(0.49, alpha, theta), Level::ExtremeDeviation);
        assert_eq!(score_to_level(0.50, alpha, theta), Level::SlightDeviation);
        assert_eq!(score_to_level(0.69, alpha, theta), Level::SlightDeviation);
        assert_eq!(score_to_level(0.70, alpha, theta), Level::Correlated);
        assert_eq!(score_to_level(1.0, alpha, theta), Level::Correlated);
        assert_eq!(score_to_level(-1.0, alpha, theta), Level::ExtremeDeviation);
    }

    #[test]
    fn level_numbers() {
        assert_eq!(Level::ExtremeDeviation.number(), 1);
        assert_eq!(Level::SlightDeviation.number(), 2);
        assert_eq!(Level::Correlated.number(), 3);
    }

    #[test]
    fn aggregation_median_robust_to_one_bad_peer() {
        // db correlates with 3 of 4 peers; one pairwise score is low
        // (because *that peer* is anomalous). Median keeps this db clean.
        let scores = [0.95, 0.92, 0.2, 0.94];
        let med = aggregate_scores(&scores, LevelAggregation::Median).unwrap();
        assert!(med > 0.9, "median {med}");
        let min = aggregate_scores(&scores, LevelAggregation::Min).unwrap();
        assert!((min - 0.2).abs() < 1e-12);
        let mean = aggregate_scores(&scores, LevelAggregation::Mean).unwrap();
        assert!(mean > 0.7 && mean < 0.9);
    }

    #[test]
    fn aggregation_empty_is_none() {
        assert_eq!(aggregate_scores(&[], LevelAggregation::Median), None);
    }

    #[test]
    fn level_row_counts_and_nan_handling() {
        let scores = [0.9, f64::NAN, 0.55, 0.3];
        let alphas = [0.7, 0.7, 0.7, 0.7];
        let row = level_row(&scores, &alphas, 0.2);
        assert_eq!(row.levels[0], Some(Level::Correlated));
        assert_eq!(row.levels[1], None);
        assert_eq!(row.levels[2], Some(Level::SlightDeviation));
        assert_eq!(row.levels[3], Some(Level::ExtremeDeviation));
        assert_eq!(row.counts(), (1, 1, 1));
    }

    #[test]
    fn level_row_per_kpi_alphas() {
        // the same score can be level-3 under a loose alpha and level-1
        // under a strict one
        let scores = [0.65, 0.65];
        let alphas = [0.6, 0.9];
        let row = level_row(&scores, &alphas, 0.1);
        assert_eq!(row.levels[0], Some(Level::Correlated));
        assert_eq!(row.levels[1], Some(Level::ExtremeDeviation));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn level_row_arity_mismatch_panics() {
        let _ = level_row(&[0.5], &[0.7, 0.7], 0.2);
    }

    #[test]
    fn all_participating_all_correlated() {
        let scores = [0.95; 14];
        let alphas = [0.7; 14];
        let row = level_row(&scores, &alphas, 0.2);
        assert_eq!(row.counts(), (0, 0, 14));
    }
}
