//! Detection metrics (paper §IV-A3).
//!
//! Results are labelled per *time window*: a window is a true positive
//! when the method calls it abnormal and the ground truth contains an
//! anomalous tick inside it, and so on. Precision, Recall and F-Measure
//! follow directly.

use serde::{Deserialize, Serialize};

/// Confusion counts over windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Correctly detected abnormal windows.
    pub tp: usize,
    /// Healthy windows flagged abnormal.
    pub fp: usize,
    /// Abnormal windows missed.
    pub fn_: usize,
    /// Healthy windows passed as healthy.
    pub tn: usize,
}

impl Confusion {
    /// Accumulates one observation.
    pub fn observe(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Merges another confusion into this one.
    pub fn merge(&mut self, other: &Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }

    /// `TP / (TP + FP)`; 0 when nothing was predicted positive... unless
    /// nothing was positive at all, which scores a vacuous 1.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return if self.fn_ == 0 { 1.0 } else { 0.0 };
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// `TP / (TP + FN)`; vacuous 1 when there were no positives to find
    /// and none were invented.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return if self.fp == 0 { 1.0 } else { 0.0 };
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f_measure(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Total observed windows.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }
}

/// Builds a confusion over aligned prediction/label sequences.
///
/// # Panics
/// Panics when lengths differ.
pub fn confusion_from(predictions: &[bool], labels: &[bool]) -> Confusion {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut c = Confusion::default();
    for (&p, &l) in predictions.iter().zip(labels) {
        c.observe(p, l);
    }
    c
}

/// Tiles `ticks` into consecutive windows of size `w` (the trailing
/// partial window is dropped, mirroring a blocked online detector).
pub fn window_ranges(ticks: usize, w: usize) -> Vec<std::ops::Range<usize>> {
    assert!(w > 0, "window must be positive");
    (0..ticks / w).map(|i| i * w..(i + 1) * w).collect()
}

/// Reduces per-tick booleans to per-window "any" values.
pub fn windowed_any(ticks: &[bool], w: usize) -> Vec<bool> {
    window_ranges(ticks.len(), w)
        .into_iter()
        .map(|r| ticks[r].iter().any(|&b| b))
        .collect()
}

/// Reduces per-tick scores to per-window maxima.
pub fn windowed_max(scores: &[f64], w: usize) -> Vec<f64> {
    window_ranges(scores.len(), w)
        .into_iter()
        .map(|r| scores[r].iter().cloned().fold(f64::NEG_INFINITY, f64::max))
        .collect()
}

/// Expands per-detection-window verdicts back to per-tick predictions: a
/// detection window of `det_w` ticks whose score maximum exceeds `thr`
/// marks all its ticks abnormal (trailing partial windows stay healthy —
/// a blocked detector never judges them).
pub fn verdict_ticks(scores: &[f64], det_w: usize, thr: f64) -> Vec<bool> {
    let mut ticks = vec![false; scores.len()];
    for r in window_ranges(scores.len(), det_w) {
        let max = scores[r.clone()]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        if max > thr {
            ticks[r].iter_mut().for_each(|t| *t = true);
        }
    }
    ticks
}

/// Point-adjusts predictions against ground-truth episodes (the standard
/// protocol of the OmniAnomaly / JumpStarter line of work the paper
/// compares against): within every maximal run of positive labels, a
/// single positive prediction marks the whole run as detected. Operates at
/// whatever granularity the sequences are in (ticks or windows).
///
/// # Panics
/// Panics when lengths differ.
pub fn point_adjust(predictions: &mut [bool], labels: &[bool]) {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut i = 0;
    while i < labels.len() {
        if !labels[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < labels.len() && labels[i] {
            i += 1;
        }
        if predictions[start..i].iter().any(|&p| p) {
            predictions[start..i].iter_mut().for_each(|p| *p = true);
        }
    }
}

/// [`confusion_from`] after [`point_adjust`].
pub fn adjusted_confusion(predictions: &[bool], labels: &[bool]) -> Confusion {
    let mut preds = predictions.to_vec();
    point_adjust(&mut preds, labels);
    confusion_from(&preds, labels)
}

/// Mean / min / max summary of repeated runs (the error bars of
/// Fig. 8–10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spread {
    /// Mean over runs.
    pub mean: f64,
    /// Minimum over runs.
    pub min: f64,
    /// Maximum over runs.
    pub max: f64,
}

impl Spread {
    /// Summarises a non-empty sample.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn of(samples: &[f64]) -> Spread {
        assert!(!samples.is_empty(), "no samples");
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        Spread {
            mean,
            min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
            max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_detection() {
        let c = confusion_from(&[true, false, true], &[true, false, true]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f_measure(), 1.0);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn known_counts() {
        // 2 TP, 1 FP, 1 FN, 1 TN
        let c = confusion_from(
            &[true, true, true, false, false],
            &[true, true, false, true, false],
        );
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (2, 1, 1, 1));
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f_measure() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_conventions() {
        let all_quiet = confusion_from(&[false; 4], &[false; 4]);
        assert_eq!(all_quiet.precision(), 1.0);
        assert_eq!(all_quiet.recall(), 1.0);
        let all_missed = confusion_from(&[false; 3], &[true; 3]);
        assert_eq!(all_missed.recall(), 0.0);
        assert_eq!(all_missed.f_measure(), 0.0);
        let all_noise = confusion_from(&[true; 3], &[false; 3]);
        assert_eq!(all_noise.precision(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = confusion_from(&[true], &[true]);
        let b = confusion_from(&[true, false], &[false, true]);
        a.merge(&b);
        assert_eq!((a.tp, a.fp, a.fn_, a.tn), (1, 1, 1, 0));
    }

    #[test]
    fn window_ranges_tile() {
        let r = window_ranges(25, 10);
        assert_eq!(r, vec![0..10, 10..20]);
        assert!(window_ranges(5, 10).is_empty());
    }

    #[test]
    fn windowed_reductions() {
        let ticks = [false, true, false, false, false, false];
        assert_eq!(windowed_any(&ticks, 3), vec![true, false]);
        let scores = [1.0, 5.0, 2.0, 0.0, 3.0, 1.0];
        assert_eq!(windowed_max(&scores, 3), vec![5.0, 3.0]);
    }

    #[test]
    fn point_adjust_fills_detected_episode() {
        let labels = [false, true, true, true, false, true, true];
        let mut preds = [false, false, true, false, false, false, false];
        point_adjust(&mut preds, &labels);
        assert_eq!(preds, [false, true, true, true, false, false, false]);
    }

    #[test]
    fn point_adjust_leaves_missed_episode() {
        let labels = [true, true, false];
        let mut preds = [false, false, true];
        point_adjust(&mut preds, &labels);
        assert_eq!(preds, [false, false, true]); // miss stays a miss, FP stays
    }

    #[test]
    fn adjusted_confusion_rewards_partial_hits() {
        let labels = [false, true, true, true, false];
        let preds = [false, false, true, false, false];
        let raw = confusion_from(&preds, &labels);
        let adj = adjusted_confusion(&preds, &labels);
        assert!(adj.recall() > raw.recall());
        assert_eq!(adj.recall(), 1.0);
    }

    #[test]
    fn spread_summary() {
        let s = Spread::of(&[0.5, 0.7, 0.6]);
        assert!((s.mean - 0.6).abs() < 1e-12);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 0.7);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn spread_empty_panics() {
        let _ = Spread::of(&[]);
    }
}
