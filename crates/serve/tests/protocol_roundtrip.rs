//! Wire-protocol property tests: every message variant survives
//! serialize → parse, and hostile lines (garbage, truncation, oversize)
//! always produce a typed [`ProtocolError`] — never a panic, never a
//! silently wrong message.

use dbcatcher_core::pipeline::Verdict;
use dbcatcher_core::state::DbState;
use dbcatcher_hierarchy::{IncidentClass, Scope, ScopeState, ScopeVerdict};
use dbcatcher_serve::metrics::{MetricsSnapshot, ShardStatus, UnitMetrics};
use dbcatcher_serve::protocol::{
    decode_request, decode_response, encode, ProtocolError, RejectReason, Request, Response,
    MAX_LINE_BYTES,
};
use proptest::prelude::*;

/// NaN-tolerant equality: the wire maps non-finite to `null` to NaN.
fn close(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || a == b
}

fn request_for(choice: usize, unit: usize, tick: u64, samples: &[f64]) -> Request {
    match choice % 7 {
        0 => Request::Hello {
            unit,
            dbs: 1 + unit % 7,
            kpis: 1 + tick as usize % 14,
            participation: if unit.is_multiple_of(2) {
                None
            } else {
                Some(vec![
                    vec![unit.is_multiple_of(3); 1 + unit % 7];
                    1 + tick as usize % 14
                ])
            },
        },
        1 => Request::Tick {
            unit,
            tick,
            frame: samples.chunks(3).map(<[f64]>::to_vec).collect(),
        },
        2 => Request::Flush { unit },
        3 => Request::Subscribe,
        4 => Request::Stats,
        5 => Request::ResetUnit { unit },
        _ => Request::Stop,
    }
}

fn response_for(choice: usize, unit: usize, tick: u64, samples: &[f64]) -> Response {
    match choice % 10 {
        0 => Response::HelloAck {
            unit,
            next_tick: tick,
            resumed: unit.is_multiple_of(2),
        },
        1 => Response::Accepted { unit, tick },
        2 => Response::Rejected {
            unit,
            tick,
            expected: tick / 2,
            retry_after_ms: 20,
            reason: match unit % 4 {
                0 => RejectReason::Backpressure,
                1 => RejectReason::OutOfOrder,
                2 => RejectReason::Degraded,
                _ => RejectReason::UnknownUnit,
            },
        },
        3 => Response::Verdict {
            unit,
            at_tick: tick,
            verdict: Verdict {
                db: unit % 5,
                start_tick: tick.saturating_sub(20),
                end_tick: tick,
                state: if unit.is_multiple_of(2) {
                    DbState::Healthy
                } else {
                    DbState::Abnormal
                },
                window_size: 20 + unit % 40,
                expansions: (tick % 3) as u32,
                scores: samples.to_vec(),
            },
        },
        4 => Response::FlushAck {
            unit,
            ticks_ingested: tick,
            verdicts: tick / 3,
            next_tick: tick,
        },
        5 => Response::Subscribed,
        6 => Response::Stats(MetricsSnapshot {
            units: vec![UnitMetrics {
                unit,
                ticks: tick,
                demoted_dbs: vec![unit % 3],
                last_error: Some("disk full".into()),
                ..UnitMetrics::default()
            }],
            shards: 2,
            shard_status: vec![ShardStatus {
                shard: 0,
                restarts: tick % 3,
                wedges: tick % 2,
                failed: unit.is_multiple_of(5),
                ticks: tick * 2,
                ns_per_tick: 1000 + tick,
                last_panic: (!unit.is_multiple_of(2)).then(|| "panicked: boom".into()),
            }],
            subscribers: 1,
            total_ticks: tick,
            total_rejects: 0,
            total_verdicts: tick / 3,
            hierarchy_enabled: unit.is_multiple_of(2),
            scope_verdicts: tick % 7,
            scope_alarms_active: tick % 3,
        }),
        7 => Response::ResetAck {
            unit,
            next_tick: tick,
        },
        8 => Response::ScopeVerdict(ScopeVerdict {
            scope: match unit % 3 {
                0 => Scope::Cluster(unit / 3),
                1 => Scope::Region(unit / 3),
                _ => Scope::Fleet,
            },
            at_tick: tick,
            state: if unit.is_multiple_of(2) {
                ScopeState::Alarm
            } else {
                ScopeState::Clear
            },
            score: 0.5,
            class: unit
                .is_multiple_of(2)
                .then_some(IncidentClass::SuddenIncident),
            onset_tick: unit.is_multiple_of(2).then(|| tick.saturating_sub(4)),
            epicenter: Some(unit),
            group: vec![unit, unit + 1],
            blamed_kpi: Some(unit % 14),
        }),
        _ => Response::Error {
            message: format!("unit {unit} degraded at tick {tick}"),
        },
    }
}

proptest! {
    /// Every request variant round-trips through one wire line.
    #[test]
    fn requests_round_trip(
        choice in 0usize..7,
        unit in 0usize..64,
        tick in 0u64..100_000,
        samples in prop::collection::vec(-1e6f64..1e6, 1..12),
    ) {
        let request = request_for(choice, unit, tick, &samples);
        let line = encode(&request);
        prop_assert!(!line.contains('\n'), "wire lines must be single-line");
        let back = decode_request(&line).expect("round trip");
        prop_assert_eq!(back, request);
    }

    /// Every response variant round-trips, NaN scores included.
    #[test]
    fn responses_round_trip(
        choice in 0usize..10,
        unit in 0usize..64,
        tick in 0u64..100_000,
        samples in prop::collection::vec(-1e6f64..1e6, 1..12),
        poison in any::<bool>(),
    ) {
        let mut scores = samples.clone();
        if poison {
            scores[0] = f64::NAN;
        }
        let response = response_for(choice, unit, tick, &scores);
        let line = encode(&response);
        prop_assert!(!line.contains('\n'));
        let back = decode_response(&line).expect("round trip");
        match (&back, &response) {
            (
                Response::Verdict { verdict: a, .. },
                Response::Verdict { verdict: b, .. },
            ) => {
                prop_assert_eq!(a.scores.len(), b.scores.len());
                for (x, y) in a.scores.iter().zip(&b.scores) {
                    prop_assert!(close(*x, *y), "{x} vs {y}");
                }
            }
            _ => prop_assert_eq!(&back, &response),
        }
    }

    /// Truncating a valid line anywhere yields a typed error, not a panic
    /// and not a different valid message.
    #[test]
    fn truncation_yields_typed_error(
        choice in 0usize..7,
        unit in 0usize..64,
        tick in 0u64..100_000,
        cut in 0.0f64..1.0,
    ) {
        let line = encode(&request_for(choice, unit, tick, &[1.0, 2.0, 3.0]));
        let keep = ((line.len() as f64 * cut) as usize).min(line.len().saturating_sub(1));
        // stay on a char boundary (labels are ASCII, but be safe)
        let mut keep = keep;
        while !line.is_char_boundary(keep) {
            keep -= 1;
        }
        let truncated = &line[..keep];
        match decode_request(truncated) {
            Err(ProtocolError::Malformed { .. }) => {}
            Ok(parsed) => {
                // Only the degenerate cut that keeps the entire payload
                // may still parse.
                prop_assert_eq!(keep, line.len(), "prefix parsed: {:?}", parsed);
            }
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }

    /// Arbitrary garbage never panics the decoder and never produces a
    /// message.
    #[test]
    fn garbage_yields_typed_error(bytes in prop::collection::vec(0usize..256, 1..64)) {
        let garbage: String = bytes
            .iter()
            .map(|&b| char::from_u32(b as u32).unwrap_or('?'))
            .collect();
        // Anything that accidentally forms valid JSON for a variant is
        // astronomically unlikely; accept either outcome but require no
        // panic and a typed error otherwise.
        if let Err(e) = decode_request(&garbage) {
            assert!(matches!(e, ProtocolError::Malformed { .. } | ProtocolError::Oversized { .. }));
        }
    }
}

#[test]
fn oversized_lines_rejected_for_both_directions() {
    let huge = format!("{{\"Flush\":{{\"unit\":{}}}}}", "9".repeat(MAX_LINE_BYTES));
    assert!(matches!(
        decode_request(&huge),
        Err(ProtocolError::Oversized { .. })
    ));
    assert!(matches!(
        decode_response(&huge),
        Err(ProtocolError::Oversized { .. })
    ));
}
