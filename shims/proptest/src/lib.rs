//! Registry-free shim for the subset of `proptest` this workspace uses:
//! the `proptest!` macro, `Strategy`, range and `prop::collection::vec`
//! strategies, `any::<bool>()`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case reports its iteration seed instead;
//! * fixed case count (256 per property) drawn from a deterministic
//!   generator, so failures reproduce bit-identically across runs;
//! * `prop_assert!` panics (like `assert!`) rather than returning a
//!   `TestCaseResult` — sufficient for how the tests are written.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
pub use rand::Rng;

/// Number of cases each `proptest!` property runs.
pub const CASES: u32 = 256;

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut StdRng) -> i64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(self.start..self.end)
    }
}

/// Strategy for "any value of `T`" (the shim covers `bool`).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — uniform draw over `T`'s values.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// Namespaced strategy constructors (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// A strategy producing `Vec`s with element strategy `S` and a
        /// length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            min_len: usize,
            max_len: usize,
        }

        /// Vector strategy over an element strategy and a length range.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "vec strategy: empty length range");
            VecStrategy {
                element,
                min_len: len.start,
                max_len: len.end,
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.min_len..self.max_len);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use super::prop;
    pub use super::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Deterministic per-property seed derived from the test name.
    pub fn seed_for(name: &str) -> u64 {
        // FNV-1a, good enough to decorrelate sibling properties.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::__rt::SeedableRng as _;
            use $crate::Strategy as _;
            let mut rng =
                $crate::__rt::StdRng::seed_from_u64($crate::__rt::seed_for(stringify!($name)));
            for case in 0..$crate::CASES {
                $(let $arg = ($strategy).generate(&mut rng);)*
                let run = || -> () { $body };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest shim: property {} failed on case {case}/{} with inputs:",
                        stringify!($name),
                        $crate::CASES,
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)*
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Property assertion (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// The harness runs and draws values inside the strategy bounds.
        #[test]
        fn ranges_hold(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        /// Vec strategy respects its length range.
        #[test]
        fn vec_lengths_hold(xs in prop::collection::vec(0.0f64..1.0, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }

        /// any::<bool>() produces both values across cases (checked by the
        /// deterministic seed — this would fail if generation were stuck).
        #[test]
        fn bool_strategy_works(b in any::<bool>()) {
            prop_assert_eq!(b as u8 <= 1, true);
        }
    }

    #[test]
    fn seeds_differ_per_property() {
        assert_ne!(super::__rt::seed_for("a"), super::__rt::seed_for("b"));
    }
}
