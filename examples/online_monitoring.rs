//! Full online loop: streaming detection, DBA feedback, and adaptive
//! threshold learning when performance drops below the criterion
//! (paper Fig. 6: all four modules working together).
//!
//! ```bash
//! cargo run --release --example online_monitoring
//! ```

use dbcatcher::core::ga::GeneticConfig;
use dbcatcher::core::{DbCatcher, DbCatcherConfig, FeedbackModule};
use dbcatcher::workload::anomaly::AnomalyPlanConfig;
use dbcatcher::workload::dataset::{DatasetSpec, Subset, WorkloadKind};
use dbcatcher::workload::profile::RareEventConfig;

fn main() {
    // One Tencent-like unit, 600 ticks, ~5 % anomalous.
    let dataset = DatasetSpec {
        name: "demo".into(),
        kind: WorkloadKind::Tencent,
        subset: Subset::Mixed,
        num_units: 1,
        ticks: 600,
        databases_per_unit: 5,
        anomalies: AnomalyPlanConfig {
            target_ratio: 0.05,
            ..AnomalyPlanConfig::default()
        },
        rare_events: RareEventConfig::default(),
        seed: 7,
    }
    .build();
    let unit = &dataset.units[0];

    // Deliberately mis-tuned initial thresholds: far too strict, so the
    // detector alarms constantly until the feedback loop repairs it.
    let mut config = DbCatcherConfig::default();
    config.alphas = vec![0.97; config.num_kpis];
    config.theta = 0.01;
    config.max_tolerance = 0;

    let mut catcher =
        DbCatcher::new(config, unit.num_databases()).with_participation(unit.participation.clone());
    // Keep the last 200 judgment records; retrain below 75 % F-Measure
    // (paper §IV-D3).
    let mut feedback = FeedbackModule::new(200, 0.75);
    let mut retrainings = 0;

    for tick in 0..unit.num_ticks() {
        for verdict in catcher.ingest_tick(&unit.tick_matrix(tick)) {
            // the "DBA" marks the verdict using ground truth
            let end = (verdict.end_tick as usize).min(unit.num_ticks());
            let truth = (verdict.start_tick as usize..end).any(|t| unit.labels[verdict.db][t]);
            feedback.record(&verdict, truth);
        }
        // periodically check whether the current thresholds still meet the
        // criterion; if not, re-learn them from the recent records
        if tick % 100 == 99 {
            let genes = dbcatcher::core::ga::Genes {
                alphas: catcher.config().alphas.clone(),
                theta: catcher.config().theta,
                max_tolerance: catcher.config().max_tolerance,
            };
            let f1 = feedback.current_f_measure(&genes);
            println!("tick {tick}: rolling F-Measure {f1:.2}");
            if feedback.needs_retraining(&genes) {
                let outcome = feedback.retrain(
                    catcher.config().num_kpis,
                    &GeneticConfig {
                        seed: tick as u64,
                        ..GeneticConfig::default()
                    },
                );
                println!(
                    "  -> thresholds re-learned (fitness {:.2}, {} evaluations)",
                    outcome.fitness, outcome.evaluations
                );
                catcher.set_genes(&outcome.genes);
                retrainings += 1;
            }
        }
    }

    let timing = catcher.timing();
    println!(
        "\nretrained {retrainings} time(s); component split: correlation {:.0}%, observation {:.0}%",
        100.0 * timing.correlation.as_secs_f64()
            / (timing.correlation + timing.observation).as_secs_f64(),
        100.0 * timing.observation.as_secs_f64()
            / (timing.correlation + timing.observation).as_secs_f64(),
    );
    assert!(
        retrainings > 0,
        "the mis-tuned start must trigger adaptation"
    );
}
