//! Table I: qualitative characteristics of the compared methods, derived
//! from measured results on the mixed datasets plus structural facts
//! (threshold auto-adjustment is a design property, not a measurement).

use dbcatcher_bench::print_scale_banner;
use dbcatcher_eval::experiments::{compare_methods, mixed_specs, subset_specs, Scale};
use dbcatcher_eval::methods::MethodKind;
use dbcatcher_eval::report::render_table;
use dbcatcher_workload::dataset::Subset;

/// Buckets a measured value into High / Medium / Low against the cohort.
fn bucket(value: f64, cohort: &[f64], higher_is_better: bool) -> &'static str {
    let mut sorted = cohort.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = sorted.iter().filter(|&&v| v < value).count() as f64 / cohort.len() as f64;
    let rank = if higher_is_better { rank } else { 1.0 - rank };
    if rank >= 0.6 {
        "High"
    } else if rank >= 0.3 {
        "Medium"
    } else {
        "Low"
    }
}

fn main() {
    let scale = Scale::from_args();
    print_scale_banner("Table I — method characteristics (measured)", &scale);
    let methods = MethodKind::all();
    let mixed = compare_methods(&mixed_specs(&scale), &methods, &scale);
    let irregular = compare_methods(&subset_specs(&scale, Subset::Irregular), &methods, &scale);

    // average across the three datasets per method
    let avg = |results: &[dbcatcher_eval::experiments::DatasetComparison],
               f: &dyn Fn(&dbcatcher_eval::experiments::CompareCell) -> f64| {
        (0..methods.len())
            .map(|mi| results.iter().map(|r| f(&r.cells[mi])).sum::<f64>() / results.len() as f64)
            .collect::<Vec<f64>>()
    };
    let f1 = avg(&mixed, &|c| c.f_measure.mean);
    let window = avg(&mixed, &|c| c.window_size);
    let irregular_f1 = avg(&irregular, &|c| c.f_measure.mean);

    let rows: Vec<Vec<String>> = methods
        .iter()
        .enumerate()
        .map(|(mi, m)| {
            vec![
                m.name().to_string(),
                bucket(f1[mi], &f1, true).to_string(),
                bucket(window[mi], &window, false).to_string(),
                // only DBCatcher re-learns its thresholds online (§III-D)
                if *m == MethodKind::DbCatcher {
                    "High"
                } else {
                    "Low"
                }
                .to_string(),
                bucket(irregular_f1[mi], &irregular_f1, true).to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table I: characteristics of different anomaly detection methods",
            &[
                "Model",
                "Detection performance",
                "Detection efficiency",
                "Threshold auto-adjustment",
                "Workload adaptability",
            ],
            &rows,
        )
    );
}
