//! # dbcatcher-bench
//!
//! Criterion micro-benchmarks (`benches/`) and experiment runners
//! (`src/bin/exp_*.rs`) reproducing every table and figure of the
//! DBCatcher paper. See DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured results.
//!
//! Every `exp_*` binary accepts `--scale F --repeats N --seed S`
//! (defaults: the laptop scale of
//! [`dbcatcher_eval::experiments::Scale::lab`]); `--scale 1.0` regenerates
//! paper-sized datasets.

use dbcatcher_eval::experiments::DatasetComparison;
use dbcatcher_eval::report::{pct, render_table, secs};

/// Prints a Fig. 8/9/10-style performance block (Precision / Recall /
/// F-Measure with mean [min, max] over repetitions).
pub fn print_performance(title: &str, comparisons: &[DatasetComparison]) {
    for cmp in comparisons {
        let rows: Vec<Vec<String>> = cmp
            .cells
            .iter()
            .map(|c| {
                let spread = |s: &dbcatcher_eval::metrics::Spread| {
                    format!("{} [{}, {}]", pct(s.mean), pct(s.min), pct(s.max))
                };
                vec![
                    c.method.name().to_string(),
                    spread(&c.precision),
                    spread(&c.recall),
                    spread(&c.f_measure),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!("{title} — {}", cmp.dataset),
                &["Model", "Precision", "Recall", "F-Measure"],
                &rows,
            )
        );
    }
}

/// Prints a Table V/VII/VIII-style window-size block.
pub fn print_window_sizes(title: &str, comparisons: &[DatasetComparison]) {
    let headers: Vec<String> = std::iter::once("Model".to_string())
        .chain(comparisons.iter().map(|c| format!("{} Size", c.dataset)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let methods = &comparisons[0].cells;
    let rows: Vec<Vec<String>> = methods
        .iter()
        .enumerate()
        .map(|(mi, cell)| {
            std::iter::once(cell.method.name().to_string())
                .chain(
                    comparisons
                        .iter()
                        .map(|c| format!("{:.0}", c.cells[mi].window_size)),
                )
                .collect()
        })
        .collect();
    println!("{}", render_table(title, &header_refs, &rows));
}

/// Prints a Table VI-style training-time block.
pub fn print_train_times(title: &str, comparisons: &[DatasetComparison]) {
    let headers: Vec<String> = std::iter::once("Model".to_string())
        .chain(comparisons.iter().map(|c| format!("{} Time", c.dataset)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let methods = &comparisons[0].cells;
    let rows: Vec<Vec<String>> = methods
        .iter()
        .enumerate()
        .map(|(mi, cell)| {
            std::iter::once(cell.method.name().to_string())
                .chain(comparisons.iter().map(|c| secs(c.cells[mi].train_secs)))
                .collect()
        })
        .collect();
    println!("{}", render_table(title, &header_refs, &rows));
}

/// Prints the scale banner every experiment binary leads with.
pub fn print_scale_banner(experiment: &str, scale: &dbcatcher_eval::experiments::Scale) {
    println!(
        "# {experiment}  (scale {:.3}, repeats {}, seed {}; --scale 1.0 = paper-sized)",
        scale.factor, scale.repeats, scale.seed
    );
}
