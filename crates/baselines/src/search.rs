//! Threshold-search baselines (paper §IV-D3, Fig. 11).
//!
//! The paper compares its genetic algorithm against **simulated
//! annealing** and **random search** for finding the detector's threshold
//! genes. Both are implemented here on the same
//! [`Genes`]/[`LearnOutcome`] types so Fig. 11 can hold the evaluation
//! budget constant across the three algorithms.

use dbcatcher_core::ga::{Genes, GeneticConfig, LearnOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random search: sample `budget` independent gene vectors and keep the
/// best (the paper's baseline protocol, also used by the compared
/// detectors' threshold search, §IV-B).
pub fn random_search(
    num_kpis: usize,
    cfg: &GeneticConfig,
    budget: usize,
    mut fitness: impl FnMut(&Genes) -> f64,
) -> LearnOutcome {
    assert!(budget > 0, "budget must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut best: Option<(Genes, f64)> = None;
    for _ in 0..budget {
        let genes = Genes::random(num_kpis, cfg, &mut rng);
        let score = fitness(&genes);
        if best.as_ref().map(|(_, b)| score > *b).unwrap_or(true) {
            best = Some((genes, score));
        }
    }
    let (genes, fitness_value) = best.expect("budget > 0");
    LearnOutcome {
        genes,
        fitness: fitness_value,
        evaluations: budget,
    }
}

/// Simulated-annealing hyper-parameters.
#[derive(Debug, Clone)]
pub struct AnnealingConfig {
    /// Starting temperature.
    pub t0: f64,
    /// Multiplicative cooling per step.
    pub cooling: f64,
    /// Neighbour step size on α thresholds.
    pub step: f64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        Self {
            t0: 0.3,
            cooling: 0.97,
            step: 0.05,
        }
    }
}

/// Simulated annealing over the gene space with a fixed evaluation
/// `budget`.
pub fn simulated_annealing(
    num_kpis: usize,
    cfg: &GeneticConfig,
    sa: &AnnealingConfig,
    budget: usize,
    mut fitness: impl FnMut(&Genes) -> f64,
) -> LearnOutcome {
    assert!(budget > 0, "budget must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5AA);
    let mut current = Genes::random(num_kpis, cfg, &mut rng);
    let mut current_fit = fitness(&current);
    let mut best = (current.clone(), current_fit);
    let mut temperature = sa.t0;
    for _ in 1..budget {
        let neighbour = neighbour_of(&current, cfg, sa.step, &mut rng);
        let f = fitness(&neighbour);
        let accept = f >= current_fit || {
            let p = ((f - current_fit) / temperature.max(1e-9)).exp();
            rng.gen_bool(p.clamp(0.0, 1.0))
        };
        if accept {
            current = neighbour;
            current_fit = f;
        }
        if current_fit > best.1 {
            best = (current.clone(), current_fit);
        }
        temperature *= sa.cooling;
    }
    LearnOutcome {
        genes: best.0,
        fitness: best.1,
        evaluations: budget,
    }
}

/// A random neighbour: one α nudged by ±step, θ nudged, N occasionally
/// re-sampled.
fn neighbour_of(genes: &Genes, cfg: &GeneticConfig, step: f64, rng: &mut StdRng) -> Genes {
    let mut next = genes.clone();
    let idx = rng.gen_range(0..next.alphas.len());
    let delta = rng.gen_range(-step..=step);
    next.alphas[idx] = (next.alphas[idx] + delta).clamp(cfg.alpha_bounds.0, cfg.alpha_bounds.1);
    let dtheta = rng.gen_range(-step / 2.0..=step / 2.0);
    next.theta = (next.theta + dtheta).clamp(cfg.theta_range.0, cfg.theta_range.1);
    if rng.gen_bool(0.2) {
        next.max_tolerance = rng.gen_range(cfg.tolerance_range.0..=cfg.tolerance_range.1);
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcatcher_core::ga::learn_thresholds;

    /// A smooth fitness landscape peaking near α = 0.72, θ = 0.18.
    fn landscape(g: &Genes) -> f64 {
        let alpha_err: f64 =
            g.alphas.iter().map(|a| (a - 0.72).abs()).sum::<f64>() / g.alphas.len() as f64;
        (1.0 - 3.0 * alpha_err - (g.theta - 0.18).abs()).max(0.0)
    }

    #[test]
    fn random_search_improves_with_budget() {
        let cfg = GeneticConfig {
            seed: 4,
            ..GeneticConfig::default()
        };
        let small = random_search(4, &cfg, 5, landscape);
        let large = random_search(4, &cfg, 200, landscape);
        assert!(large.fitness >= small.fitness);
        assert_eq!(large.evaluations, 200);
    }

    #[test]
    fn annealing_reaches_peak_region() {
        let cfg = GeneticConfig {
            seed: 8,
            ..GeneticConfig::default()
        };
        let out = simulated_annealing(4, &cfg, &AnnealingConfig::default(), 400, landscape);
        assert!(out.fitness > 0.8, "fitness {}", out.fitness);
    }

    #[test]
    fn ga_competitive_with_baselines_at_equal_budget() {
        // Fig. 11's qualitative claim: at equal evaluation budget the GA
        // is at least as good as random search on this landscape.
        let budget = 330;
        let ga_cfg = GeneticConfig {
            population: 30,
            generations: 10, // 30*10 + 30 final = 330 evaluations
            seed: 21,
            ..GeneticConfig::default()
        };
        let ga = learn_thresholds(4, &ga_cfg, landscape);
        assert_eq!(ga.evaluations, budget);
        let rs = random_search(4, &ga_cfg, budget, landscape);
        assert!(
            ga.fitness >= rs.fitness - 0.02,
            "ga {} vs random {}",
            ga.fitness,
            rs.fitness
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GeneticConfig {
            seed: 3,
            ..GeneticConfig::default()
        };
        let a = simulated_annealing(3, &cfg, &AnnealingConfig::default(), 50, landscape);
        let b = simulated_annealing(3, &cfg, &AnnealingConfig::default(), 50, landscape);
        assert_eq!(a.genes, b.genes);
    }

    #[test]
    fn neighbours_respect_bounds() {
        let cfg = GeneticConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = Genes::random(5, &cfg, &mut rng);
        for _ in 0..500 {
            g = neighbour_of(&g, &cfg, 0.2, &mut rng);
            assert!(g
                .alphas
                .iter()
                .all(|a| (cfg.alpha_bounds.0..=cfg.alpha_bounds.1).contains(a)));
            assert!((cfg.theta_range.0..=cfg.theta_range.1).contains(&g.theta));
            assert!(g.max_tolerance <= cfg.tolerance_range.1);
        }
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_panics() {
        let cfg = GeneticConfig::default();
        let _ = random_search(2, &cfg, 0, |_| 0.0);
    }
}
