//! # dbcatcher-hierarchy
//!
//! Fleet-scope hierarchical detection above the per-unit DBCatcher
//! detectors — the tier the paper leaves open (§V) and DeCorus-style
//! systems show is the bar at cloud scale. Per-unit verdicts roll up a
//! configurable [`topology`] (unit → cluster → region → fleet) into
//! severity-weighted, hysteresis-damped scope verdicts ([`rollup`]); an
//! incremental cross-unit co-occurrence correlator ([`correlate`]) flags
//! noisy-neighbour / shared-storage groups and blames an epicenter unit
//! via `core::diagnosis` KPI attribution; and a per-scope CUSUM
//! change-point analyzer ([`changepoint`]) classifies each alarm as a
//! `SuddenIncident` or a `SlowRegression` with an onset-tick estimate.
//!
//! The [`engine::FleetEngine`] is **arrival-order-insensitive**: it
//! buffers verdicts per tick behind a roster watermark and evaluates
//! complete ticks in canonical order, so the online feed inside the
//! serve daemon and the offline [`replay()`] (`dbcatcher analyze-fleet`)
//! of the same verdict stream produce byte-identical scope-verdict
//! streams — the property the chaos simulator checks under crash and
//! restart.

#![forbid(unsafe_code)]

pub mod changepoint;
pub mod correlate;
pub mod engine;
pub mod replay;
pub mod rollup;
pub mod topology;

pub use changepoint::{Cusum, CusumConfig, IncidentClass};
pub use correlate::{CoOccurrence, CorrelateConfig};
pub use engine::{FleetEngine, HierarchyConfig, ScopeState, ScopeVerdict, UnitVerdict};
pub use replay::{
    parse_scope_line, parse_unit_line, render_scope_line, render_unit_line, replay, FleetReplay,
};
pub use rollup::{scope_scores, verdict_severity, RollupConfig, ScopeTracker, Transition};
pub use topology::{Scope, Topology, TopologyError};
