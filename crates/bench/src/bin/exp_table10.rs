//! Table X: F-Measure of the correlation-measure ablation (MM-Pearson /
//! MM-DTW / MM-KCD / AMM-KCD) on the mixed datasets.

use dbcatcher_bench::print_scale_banner;
use dbcatcher_eval::experiments::{table10_matrix_methods, Scale};
use dbcatcher_eval::report::{pct, render_table};

fn main() {
    let scale = Scale::from_args();
    print_scale_banner("Table X — correlation-measure ablation", &scale);
    let candidates = 20;
    let (datasets, rows) = table10_matrix_methods(&scale, candidates);
    let headers: Vec<String> = std::iter::once("Model".to_string())
        .chain(datasets.iter().map(|d| format!("{d} F-Measure")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            std::iter::once(r.label.clone())
                .chain(r.f1.iter().map(|&f| pct(f)))
                .collect()
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table X: F-Measure for correlation measures combined with MM",
            &header_refs,
            &table_rows,
        )
    );
    println!(
        "(paper: MM-KCD beats MM-Pearson and MM-DTW; AMM-KCD adds the flexible window on top)"
    );
}
