//! Cause interpretation: mapping a diagnosis's deviating KPIs onto the
//! anomaly families of the paper's case studies (§V).
//!
//! `dbcatcher-core`'s `diagnosis` module ranks *which* KPIs broke
//! correlation; this module knows what the 14 KPIs *mean* (Table II) and
//! turns the pattern into a DBA-facing hypothesis:
//!
//! * capacity diverging alone → storage fragmentation (paper Fig. 12);
//! * CPU / rows-read up while request counts stay in line → a
//!   resource-consuming task (paper Fig. 13);
//! * request-rate KPIs broken across the board → traffic imbalance
//!   (paper Fig. 4's defective balancer);
//! * write-path KPIs only → replication / write-path trouble.

use crate::kpi::Kpi;
use serde::{Deserialize, Serialize};

/// DBA-facing anomaly hypotheses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CauseHint {
    /// Reads routed unevenly — defective load balancing (Fig. 4).
    TrafficImbalance,
    /// Per-request cost exploded while traffic stayed level (Fig. 13).
    ResourceContention,
    /// Storage occupancy diverging — fragmentation / runaway growth
    /// (Fig. 12).
    CapacityAnomaly,
    /// Write path / replication trouble (stalls, lag).
    WriteAnomaly,
    /// Several families at once.
    Mixed,
    /// Nothing deviates (healthy verdict) or no pattern matches.
    Unknown,
}

impl CauseHint {
    /// DBA-facing one-liner.
    pub fn description(self) -> &'static str {
        match self {
            CauseHint::TrafficImbalance => {
                "read traffic routed unevenly — inspect the load balancing strategy"
            }
            CauseHint::ResourceContention => {
                "per-request cost exploded with level traffic — look for slow or resource-hungry queries"
            }
            CauseHint::CapacityAnomaly => {
                "storage occupancy diverging — check fragmentation and data churn"
            }
            CauseHint::WriteAnomaly => {
                "write path deviating — check replication and write stalls"
            }
            CauseHint::Mixed => "multiple KPI families deviating — broad incident",
            CauseHint::Unknown => "no deviating KPIs matched a known cause pattern",
        }
    }
}

fn is_traffic(kpi: Kpi) -> bool {
    matches!(
        kpi,
        Kpi::RequestsPerSecond | Kpi::TotalRequests | Kpi::BufferPoolReadRequests
    )
}

fn is_cost(kpi: Kpi) -> bool {
    matches!(kpi, Kpi::CpuUtilization | Kpi::InnodbRowsRead)
}

/// Classifies the deviating KPI set (most severe first, as produced by
/// `dbcatcher-core`'s `diagnose`).
pub fn interpret_cause(deviating: &[Kpi]) -> CauseHint {
    if deviating.is_empty() {
        return CauseHint::Unknown;
    }
    let capacity = deviating.contains(&Kpi::RealCapacity);
    let traffic = deviating.iter().any(|&k| is_traffic(k));
    let cost = deviating.iter().any(|&k| is_cost(k));
    let writes = deviating.iter().any(|&k| k.is_write_driven());

    // capacity alone (or clearly leading) is its own family
    if capacity && !traffic && !cost {
        return CauseHint::CapacityAnomaly;
    }
    match (traffic, cost, writes) {
        // cost up without traffic: the Fig. 13 signature
        (false, true, _) => CauseHint::ResourceContention,
        // traffic itself broken: Fig. 4
        (true, _, _) => CauseHint::TrafficImbalance,
        (false, false, true) => CauseHint::WriteAnomaly,
        (false, false, false) => {
            if capacity {
                CauseHint::CapacityAnomaly
            } else {
                CauseHint::Mixed
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_signature_is_capacity() {
        assert_eq!(
            interpret_cause(&[Kpi::RealCapacity]),
            CauseHint::CapacityAnomaly
        );
    }

    #[test]
    fn fig13_signature_is_contention() {
        assert_eq!(
            interpret_cause(&[Kpi::CpuUtilization, Kpi::InnodbRowsRead]),
            CauseHint::ResourceContention
        );
        // buffer-pool reads join in (they are traffic-ish) → imbalance wins
        assert_eq!(
            interpret_cause(&[
                Kpi::CpuUtilization,
                Kpi::InnodbRowsRead,
                Kpi::BufferPoolReadRequests
            ]),
            CauseHint::TrafficImbalance
        );
    }

    #[test]
    fn fig4_signature_is_imbalance() {
        assert_eq!(
            interpret_cause(&[
                Kpi::RequestsPerSecond,
                Kpi::TotalRequests,
                Kpi::BufferPoolReadRequests,
                Kpi::InnodbRowsRead
            ]),
            CauseHint::TrafficImbalance
        );
    }

    #[test]
    fn write_only_signature() {
        assert_eq!(
            interpret_cause(&[Kpi::InnodbDataWrites, Kpi::InnodbRowsUpdated]),
            CauseHint::WriteAnomaly
        );
    }

    #[test]
    fn empty_is_unknown() {
        assert_eq!(interpret_cause(&[]), CauseHint::Unknown);
    }

    #[test]
    fn descriptions_nonempty() {
        for hint in [
            CauseHint::TrafficImbalance,
            CauseHint::ResourceContention,
            CauseHint::CapacityAnomaly,
            CauseHint::WriteAnomaly,
            CauseHint::Mixed,
            CauseHint::Unknown,
        ] {
            assert!(!hint.description().is_empty());
        }
    }
}
