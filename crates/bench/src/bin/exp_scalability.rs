//! Fleet scalability (extension): wall-clock detection time over a fleet
//! of units as worker threads grow — the deployment shape of §IV-D4
//! (50 units at once) on a multi-core host.

use dbcatcher_core::{DbCatcherConfig, FleetDetector};
use dbcatcher_eval::experiments::Scale;
use dbcatcher_eval::report::render_table;
use dbcatcher_workload::scenario::UnitScenario;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let units = ((50.0 * scale.factor.max(0.3)).round() as usize).max(8);
    let ticks = 600usize;
    println!("# Fleet scalability — {units} units x 5 databases x {ticks} ticks");
    println!("(detector configured with the paper's full ±n/2 lag scan to give each tick\n realistic correlation work; available cores: {})",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));

    // pre-generate the recordings once
    let recordings: Vec<_> = (0..units)
        .map(|u| UnitScenario::burst_demo(scale.seed + u as u64).generate())
        .collect();
    let unit_sizes: Vec<usize> = recordings.iter().map(|r| r.num_databases()).collect();
    let frames: Vec<Vec<Vec<Vec<f64>>>> = (0..ticks)
        .map(|t| recordings.iter().map(|r| r.tick_matrix(t)).collect())
        .collect();

    let mut rows = Vec::new();
    let mut baseline = None;
    for workers in [1usize, 2, 4, 8] {
        let masks: Vec<_> = recordings.iter().map(|r| r.participation.clone()).collect();
        let config = DbCatcherConfig {
            delay_scan: dbcatcher_core::config::DelayScan::HalfWindow,
            ..DbCatcherConfig::default()
        };
        let mut fleet = FleetDetector::new(config, &unit_sizes, Some(masks), workers);
        let effective = fleet.num_workers();
        let t0 = Instant::now();
        let mut verdicts = 0usize;
        for frame in &frames {
            verdicts += fleet.ingest_tick(frame).len();
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let base = *baseline.get_or_insert(elapsed);
        rows.push(vec![
            format!("{workers} ({effective} effective)"),
            format!("{:.1} ms", elapsed * 1000.0),
            format!("{:.2}x", base / elapsed),
            verdicts.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Fleet detection wall-clock vs worker threads",
            &["Workers", "Time", "Speedup", "Verdicts"],
            &rows,
        )
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores == 1 {
        println!(
            "(this host has a single core: flat/declining speedup is expected — the extra \
             workers only add channel overhead; on an N-core host the speedup approaches \
             min(workers, N, units))"
        );
    } else {
        println!("(units shard perfectly; speedup saturates at min(workers, cores, units))");
    }
}
