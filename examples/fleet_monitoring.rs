//! Fleet-scale monitoring with root-cause hints: many units detected in
//! parallel (paper §IV-D4 runs 50 units), each alarm explained by the
//! ranked deviating KPIs and a cause hypothesis (paper future work §V).
//!
//! ```bash
//! cargo run --release --example fleet_monitoring
//! ```

use dbcatcher::core::diagnosis::diagnose;
use dbcatcher::core::{DbCatcherConfig, FleetDetector};
use dbcatcher::sim::{interpret_cause, Kpi};
use dbcatcher::workload::scenario::UnitScenario;

fn main() {
    // Eight units: most healthy, two carrying the paper's case studies.
    let scenarios: Vec<UnitScenario> = (0..8)
        .map(|i| match i {
            2 => UnitScenario::case_study_fragmentation(7),
            5 => UnitScenario::case_study_resource_hog(7),
            _ => UnitScenario::burst_demo(100 + i as u64),
        })
        .collect();
    let recordings: Vec<_> = scenarios.iter().map(|s| s.generate()).collect();
    let ticks = recordings.iter().map(|r| r.num_ticks()).min().unwrap();

    let config = DbCatcherConfig::default();
    let unit_sizes: Vec<usize> = recordings.iter().map(|r| r.num_databases()).collect();
    let masks: Vec<_> = recordings.iter().map(|r| r.participation.clone()).collect();
    let mut fleet = FleetDetector::new(config.clone(), &unit_sizes, Some(masks), 0);
    println!(
        "monitoring {} units with {} worker threads\n",
        fleet.num_units(),
        fleet.num_workers()
    );

    let started = std::time::Instant::now();
    let mut alarms = 0;
    for t in 0..ticks {
        let frames: Vec<_> = recordings.iter().map(|r| r.tick_matrix(t)).collect();
        for fv in fleet.ingest_tick(&frames) {
            if !fv.verdict.state.is_abnormal() {
                continue;
            }
            alarms += 1;
            let diagnosis = diagnose(&fv.verdict, &config);
            let kpis: Vec<Kpi> = diagnosis
                .deviations
                .iter()
                .map(|d| Kpi::from_index(d.kpi))
                .collect();
            let hint = interpret_cause(&kpis);
            println!(
                "unit {} db {} [{}..{}): {:?}",
                fv.unit,
                fv.verdict.db + 1,
                fv.verdict.start_tick,
                fv.verdict.end_tick,
                hint
            );
            println!("   {}", hint.description());
            for d in diagnosis.deviations.iter().take(3) {
                println!(
                    "   {} score {:.2} ({:?})",
                    Kpi::from_index(d.kpi).name(),
                    d.score,
                    d.level
                );
            }
        }
    }
    let stats = fleet.finish();
    let (avg_window, timing) = (stats.average_window_size, stats.timing);
    println!(
        "\n{} alarms over {} unit-ticks in {:.2?}; avg window {:.1} ticks; \
         correlation {:.0}% / observation {:.0}% of detection time",
        alarms,
        ticks * recordings.len(),
        started.elapsed(),
        avg_window,
        100.0 * timing.correlation.as_secs_f64()
            / (timing.correlation + timing.observation).as_secs_f64(),
        100.0 * timing.observation.as_secs_f64()
            / (timing.correlation + timing.observation).as_secs_f64(),
    );
    assert!(alarms >= 2, "both case studies must alarm");
}
