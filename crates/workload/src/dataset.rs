//! Dataset construction (paper §IV-A, Table III).
//!
//! A [`Dataset`] is a collection of independent unit recordings
//! ([`UnitData`]): for each unit, the full KPI series of every database,
//! ground-truth anomaly labels, and the Table II participation mask. The
//! builders reproduce the paper's three datasets — Tencent, Sysbench and
//! TPCC — in mixed, irregular-only (…I) and periodic-only (…II) variants,
//! at a configurable scale (`scale = 1.0` matches the Table III point
//! counts).

use crate::anomaly::{plan_anomalies, AnomalyPlanConfig};
use crate::profile::{overlay_rare_events, LoadProfile, RareEventConfig};
use crate::sysbench::{sysbench_i_profile, sysbench_ii_profile};
use crate::tencent::Archetype;
use crate::tpcc::{tpcc_i_profile, tpcc_ii_profile};
use dbcatcher_sim::{UnitConfig, UnitSim, NUM_KPIS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Which benchmark family a dataset imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Tencent production mixture (social / gaming / e-commerce / finance).
    Tencent,
    /// Sysbench `oltp_read_write` parameter space (Table IV).
    Sysbench,
    /// TPC-C parameter space (Table IV).
    Tpcc,
}

impl WorkloadKind {
    /// Short display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Tencent => "Tencent",
            WorkloadKind::Sysbench => "Sysbench",
            WorkloadKind::Tpcc => "TPCC",
        }
    }
}

/// Which periodicity subset to generate (paper §IV-A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Subset {
    /// The 40 % periodic / 60 % irregular production mixture.
    Mixed,
    /// Irregular units only (Tencent I / Sysbench I / TPCC I).
    Irregular,
    /// Periodic units only (Tencent II / Sysbench II / TPCC II).
    Periodic,
}

/// The recorded KPI streams of one unit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnitData {
    /// Identifier within the dataset.
    pub unit_id: usize,
    /// `series[db][kpi][tick]`.
    pub series: Vec<Vec<Vec<f64>>>,
    /// Ground truth: `labels[db][tick]`.
    pub labels: Vec<Vec<bool>>,
    /// Table II participation mask: `participation[kpi][db]`.
    pub participation: Vec<Vec<bool>>,
}

impl UnitData {
    /// Number of databases.
    pub fn num_databases(&self) -> usize {
        self.series.len()
    }

    /// Number of KPIs.
    pub fn num_kpis(&self) -> usize {
        self.series.first().map(|db| db.len()).unwrap_or(0)
    }

    /// Number of ticks recorded.
    pub fn num_ticks(&self) -> usize {
        self.series
            .first()
            .and_then(|db| db.first())
            .map(|s| s.len())
            .unwrap_or(0)
    }

    /// The `db x kpi` value matrix at one tick — the detector's input frame.
    ///
    /// # Panics
    /// Panics when `tick` is out of range.
    pub fn tick_matrix(&self, tick: usize) -> Vec<Vec<f64>> {
        self.series
            .iter()
            .map(|db| db.iter().map(|kpi| kpi[tick]).collect())
            .collect()
    }

    /// One KPI series of one database.
    pub fn kpi_series(&self, db: usize, kpi: usize) -> &[f64] {
        &self.series[db][kpi]
    }

    /// Whether any database is anomalous at `tick`.
    pub fn any_anomalous(&self, tick: usize) -> bool {
        self.labels.iter().any(|db| db[tick])
    }

    /// Restricts the recording to a tick range (used for train/test splits).
    pub fn slice(&self, range: Range<usize>) -> UnitData {
        UnitData {
            unit_id: self.unit_id,
            series: self
                .series
                .iter()
                .map(|db| db.iter().map(|kpi| kpi[range.clone()].to_vec()).collect())
                .collect(),
            labels: self
                .labels
                .iter()
                .map(|db| db[range.clone()].to_vec())
                .collect(),
            participation: self.participation.clone(),
        }
    }

    /// Count of anomalous `(db, tick)` pairs.
    pub fn anomalous_db_ticks(&self) -> usize {
        self.labels
            .iter()
            .map(|db| db.iter().filter(|&&l| l).count())
            .sum()
    }
}

/// Table III-style dataset statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of units.
    pub units: usize,
    /// KPI dimensionality (14).
    pub dimensions: usize,
    /// Total points: `units * databases * kpis * ticks`.
    pub total_points: usize,
    /// Anomalous points (each anomalous db-tick counts its 14 KPI points).
    pub anomal_points: usize,
    /// `anomal_points / total_points`.
    pub abnormal_ratio: f64,
}

/// A complete dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Display name, e.g. `"Sysbench I"`.
    pub name: String,
    /// The benchmark family.
    pub kind: WorkloadKind,
    /// Periodicity subset.
    pub subset: Subset,
    /// The unit recordings.
    pub units: Vec<UnitData>,
}

impl Dataset {
    /// Table III statistics.
    pub fn stats(&self) -> DatasetStats {
        let dims = self.units.first().map(|u| u.num_kpis()).unwrap_or(0);
        let total: usize = self
            .units
            .iter()
            .map(|u| u.num_databases() * u.num_kpis() * u.num_ticks())
            .sum();
        let anomal: usize = self
            .units
            .iter()
            .map(|u| u.anomalous_db_ticks() * u.num_kpis())
            .sum();
        DatasetStats {
            units: self.units.len(),
            dimensions: dims,
            total_points: total,
            anomal_points: anomal,
            abnormal_ratio: if total == 0 {
                0.0
            } else {
                anomal as f64 / total as f64
            },
        }
    }

    /// Splits each unit's timeline: the first `frac` of ticks become the
    /// training set, the remainder the testing set (paper §IV-B uses 50/50).
    pub fn split(&self, frac: f64) -> (Dataset, Dataset) {
        let frac = frac.clamp(0.0, 1.0);
        let mk = |units: Vec<UnitData>, tag: &str| Dataset {
            name: format!("{} ({tag})", self.name),
            kind: self.kind,
            subset: self.subset,
            units,
        };
        let train: Vec<UnitData> = self
            .units
            .iter()
            .map(|u| {
                let cut = (u.num_ticks() as f64 * frac).round() as usize;
                u.slice(0..cut)
            })
            .collect();
        let test: Vec<UnitData> = self
            .units
            .iter()
            .map(|u| {
                let cut = (u.num_ticks() as f64 * frac).round() as usize;
                u.slice(cut..u.num_ticks())
            })
            .collect();
        (mk(train, "train"), mk(test, "test"))
    }
}

/// Dataset generation parameters.
///
/// ```
/// use dbcatcher_workload::dataset::DatasetSpec;
///
/// // a laptop-sized slice of the paper's Sysbench dataset
/// let dataset = DatasetSpec::paper_sysbench(7).scaled(0.04).build();
/// let stats = dataset.stats();
/// assert_eq!(stats.dimensions, 14);
/// assert!(stats.abnormal_ratio > 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Display name.
    pub name: String,
    /// Benchmark family.
    pub kind: WorkloadKind,
    /// Periodicity subset.
    pub subset: Subset,
    /// Number of units.
    pub num_units: usize,
    /// Ticks recorded per unit.
    pub ticks: usize,
    /// Databases per unit (paper §IV-A5: one primary + four replicas).
    pub databases_per_unit: usize,
    /// Anomaly planner configuration.
    pub anomalies: AnomalyPlanConfig,
    /// Rare legitimate load events (paper Fig. 1) overlaid on every unit.
    pub rare_events: RareEventConfig,
    /// Master seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// The paper's Tencent dataset shape (Table III): 100 units,
    /// 5 databases, 14 KPIs, ≈790 ticks, 3.11 % abnormal.
    pub fn paper_tencent(seed: u64) -> Self {
        Self {
            name: "Tencent".into(),
            kind: WorkloadKind::Tencent,
            subset: Subset::Mixed,
            num_units: 100,
            ticks: 790,
            databases_per_unit: 5,
            anomalies: AnomalyPlanConfig {
                target_ratio: 0.0311,
                ..AnomalyPlanConfig::default()
            },
            rare_events: RareEventConfig::default(),
            seed,
        }
    }

    /// The paper's Sysbench dataset shape: 50 units, ≈185 ticks, 4.21 %.
    pub fn paper_sysbench(seed: u64) -> Self {
        Self {
            name: "Sysbench".into(),
            kind: WorkloadKind::Sysbench,
            subset: Subset::Mixed,
            num_units: 50,
            ticks: 185,
            databases_per_unit: 5,
            anomalies: AnomalyPlanConfig {
                target_ratio: 0.0421,
                start_margin: 30,
                min_duration: 8,
                max_duration: 25,
                gap: 10,
            },
            rare_events: RareEventConfig::default(),
            seed,
        }
    }

    /// The paper's TPCC dataset shape: 50 units, ≈185 ticks, 4.06 %.
    pub fn paper_tpcc(seed: u64) -> Self {
        Self {
            name: "TPCC".into(),
            kind: WorkloadKind::Tpcc,
            subset: Subset::Mixed,
            num_units: 50,
            ticks: 185,
            databases_per_unit: 5,
            anomalies: AnomalyPlanConfig {
                target_ratio: 0.0406,
                start_margin: 30,
                min_duration: 8,
                max_duration: 25,
                gap: 10,
            },
            rare_events: RareEventConfig::default(),
            seed,
        }
    }

    /// Scales unit count and tick length by `factor` (for laptop-scale
    /// runs); keeps at least 2 units and 120 ticks.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.num_units = ((self.num_units as f64 * factor).round() as usize).max(2);
        self.ticks = ((self.ticks as f64 * factor.sqrt()).round() as usize).max(120);
        self
    }

    /// Switches to the irregular-only subset and renames accordingly
    /// (Tencent I / Sysbench I / TPCC I).
    pub fn irregular(mut self) -> Self {
        self.subset = Subset::Irregular;
        self.name = format!("{} I", self.kind.name());
        self
    }

    /// Switches to the periodic-only subset (… II).
    pub fn periodic(mut self) -> Self {
        self.subset = Subset::Periodic;
        self.name = format!("{} II", self.kind.name());
        self
    }

    /// Generates the dataset.
    pub fn build(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let units = (0..self.num_units)
            .map(|unit_id| {
                let unit_seed = rng.gen::<u64>();
                self.build_unit(unit_id, unit_seed)
            })
            .collect();
        Dataset {
            name: self.name.clone(),
            kind: self.kind,
            subset: self.subset,
            units,
        }
    }

    /// Selects the load profile for one unit.
    fn unit_profile(&self, rng: &mut StdRng, seed: u64) -> LoadProfile {
        let periodic = match self.subset {
            Subset::Mixed => rng.gen::<f64>() < 0.4,
            Subset::Irregular => false,
            Subset::Periodic => true,
        };
        match self.kind {
            WorkloadKind::Tencent => {
                let arch = if periodic {
                    if rng.gen_bool(0.5) {
                        Archetype::Social
                    } else {
                        Archetype::Gaming
                    }
                } else if rng.gen_bool(0.5) {
                    Archetype::Ecommerce
                } else {
                    Archetype::Finance
                };
                arch.profile(seed)
            }
            WorkloadKind::Sysbench => {
                if periodic {
                    sysbench_ii_profile()
                } else {
                    sysbench_i_profile(seed, self.ticks)
                }
            }
            WorkloadKind::Tpcc => {
                if periodic {
                    tpcc_ii_profile()
                } else {
                    tpcc_i_profile(seed, self.ticks)
                }
            }
        }
    }

    fn build_unit(&self, unit_id: usize, unit_seed: u64) -> UnitData {
        let mut rng = StdRng::seed_from_u64(unit_seed);
        let profile = self.unit_profile(&mut rng, unit_seed);
        let mut loads = profile.generate(self.ticks, unit_seed ^ 0x10AD);
        overlay_rare_events(&mut loads, &self.rare_events, unit_seed);

        let mut sim = UnitSim::new(UnitConfig {
            num_databases: self.databases_per_unit,
            seed: unit_seed ^ 0x51B,
            ..UnitConfig::default()
        });
        for m in plan_anomalies(
            self.databases_per_unit,
            self.ticks,
            &self.anomalies,
            unit_seed ^ 0xA40,
        ) {
            sim.add_modifier(m);
        }
        let participation = sim.participation_mask();
        let samples = sim.run(&loads);

        let n = self.databases_per_unit;
        let mut series: Vec<Vec<Vec<f64>>> = (0..n)
            .map(|_| {
                (0..NUM_KPIS)
                    .map(|_| Vec::with_capacity(self.ticks))
                    .collect()
            })
            .collect();
        let mut labels = vec![Vec::with_capacity(self.ticks); n];
        for s in &samples {
            for db in 0..n {
                for k in 0..NUM_KPIS {
                    series[db][k].push(s.values[db][k]);
                }
                labels[db].push(s.anomalous[db]);
            }
        }
        UnitData {
            unit_id,
            series,
            labels,
            participation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            name: "tiny".into(),
            kind: WorkloadKind::Sysbench,
            subset: Subset::Mixed,
            num_units: 3,
            ticks: 200,
            databases_per_unit: 5,
            anomalies: AnomalyPlanConfig {
                target_ratio: 0.05,
                start_margin: 30,
                min_duration: 8,
                max_duration: 20,
                gap: 10,
            },
            rare_events: RareEventConfig::default(),
            seed: 42,
        }
    }

    #[test]
    fn build_shapes_are_consistent() {
        let ds = tiny_spec().build();
        assert_eq!(ds.units.len(), 3);
        for u in &ds.units {
            assert_eq!(u.num_databases(), 5);
            assert_eq!(u.num_kpis(), NUM_KPIS);
            assert_eq!(u.num_ticks(), 200);
            assert_eq!(u.labels.len(), 5);
            assert_eq!(u.labels[0].len(), 200);
            assert_eq!(u.participation.len(), NUM_KPIS);
        }
    }

    #[test]
    fn anomalies_present_and_ratio_sane() {
        let ds = tiny_spec().build();
        let stats = ds.stats();
        assert!(stats.anomal_points > 0, "no anomalies injected");
        assert!(
            stats.abnormal_ratio > 0.01 && stats.abnormal_ratio < 0.12,
            "ratio {}",
            stats.abnormal_ratio
        );
        assert_eq!(stats.dimensions, NUM_KPIS);
        assert_eq!(stats.total_points, 3 * 5 * NUM_KPIS * 200);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = tiny_spec().build();
        let b = tiny_spec().build();
        assert_eq!(a.units[0].series, b.units[0].series);
        let mut spec2 = tiny_spec();
        spec2.seed = 43;
        let c = spec2.build();
        assert_ne!(a.units[0].series, c.units[0].series);
    }

    #[test]
    fn tick_matrix_matches_series() {
        let ds = tiny_spec().build();
        let u = &ds.units[0];
        let m = u.tick_matrix(17);
        assert_eq!(m.len(), 5);
        assert_eq!(m[0].len(), NUM_KPIS);
        assert_eq!(m[2][3], u.kpi_series(2, 3)[17]);
    }

    #[test]
    fn split_preserves_totals() {
        let ds = tiny_spec().build();
        let (train, test) = ds.split(0.5);
        for ((u, tr), te) in ds.units.iter().zip(&train.units).zip(&test.units) {
            assert_eq!(tr.num_ticks() + te.num_ticks(), u.num_ticks());
            // concatenation reproduces the original
            assert_eq!(tr.kpi_series(0, 0).len(), 100);
            assert_eq!(
                [tr.kpi_series(1, 2), te.kpi_series(1, 2)].concat(),
                u.kpi_series(1, 2)
            );
        }
    }

    #[test]
    fn paper_specs_match_table_iii_shapes() {
        let t = DatasetSpec::paper_tencent(1);
        assert_eq!(t.num_units, 100);
        assert_eq!(
            t.num_units * t.databases_per_unit * NUM_KPIS * t.ticks,
            5_530_000
        );
        let s = DatasetSpec::paper_sysbench(1);
        assert_eq!(
            s.num_units * s.databases_per_unit * NUM_KPIS * s.ticks,
            647_500
        );
        let c = DatasetSpec::paper_tpcc(1);
        assert_eq!(c.num_units, 50);
        assert_eq!(c.kind, WorkloadKind::Tpcc);
    }

    #[test]
    fn scaled_reduces_size_with_floors() {
        let s = DatasetSpec::paper_tencent(1).scaled(0.05);
        assert_eq!(s.num_units, 5);
        assert!(s.ticks >= 120);
        let tinyest = DatasetSpec::paper_tencent(1).scaled(0.0001);
        assert_eq!(tinyest.num_units, 2);
        assert_eq!(tinyest.ticks, 120);
    }

    #[test]
    fn subset_builders_rename() {
        let i = DatasetSpec::paper_sysbench(1).irregular();
        assert_eq!(i.name, "Sysbench I");
        assert_eq!(i.subset, Subset::Irregular);
        let p = DatasetSpec::paper_tpcc(1).periodic();
        assert_eq!(p.name, "TPCC II");
        assert_eq!(p.subset, Subset::Periodic);
    }

    #[test]
    fn serialization_round_trip() {
        let ds = DatasetSpec {
            num_units: 1,
            ticks: 150,
            ..tiny_spec()
        }
        .build();
        let json = serde_json::to_string(&ds).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back.units[0].series, ds.units[0].series);
        assert_eq!(back.name, ds.name);
    }

    #[test]
    fn any_anomalous_consistent_with_labels() {
        let ds = tiny_spec().build();
        let u = &ds.units[0];
        for t in 0..u.num_ticks() {
            let expect = (0..u.num_databases()).any(|db| u.labels[db][t]);
            assert_eq!(u.any_anomalous(t), expect);
        }
    }
}
