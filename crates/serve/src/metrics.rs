//! Live observability for the daemon.
//!
//! [`ServerMetrics`] is the single shared sink every layer reports into:
//! the connection readers count accepts/rejects at enqueue time, the shard
//! workers count ticks, verdicts, wall-clock and snapshot failures, and a
//! `Stats` request renders the whole thing as one serialisable
//! [`MetricsSnapshot`]. Errors that would have aborted the offline CLI
//! (snapshot I/O, degraded detectors) are *recorded here* instead of
//! killing the process — the daemon degrades and tells you about it.

use crate::sync::LockRecover;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Per-unit counters, accumulated since daemon start (or warm restart).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UnitMetrics {
    /// Unit id.
    pub unit: usize,
    /// Shard worker that owns the unit.
    pub shard: usize,
    /// Ticks ingested by the detector.
    pub ticks: u64,
    /// Ticks rejected because the ingress queue was full.
    pub rejected_backpressure: u64,
    /// Ticks rejected because they were out of order.
    pub rejected_order: u64,
    /// Healthy verdicts emitted.
    pub verdicts_healthy: u64,
    /// Abnormal verdicts emitted.
    pub verdicts_abnormal: u64,
    /// Ticks currently sitting in the ingress queue.
    pub queue_depth: usize,
    /// Databases currently demoted to non-voting by telemetry health.
    pub demoted_dbs: Vec<usize>,
    /// Whether the unit is hard-degraded (strike limit reached; only an
    /// operator `ResetUnit` re-admits it).
    pub degraded: bool,
    /// Whether the unit is on probation: a frame failed ingest recently
    /// and the unit is substituting/counting clean ticks toward
    /// re-admission.
    pub probation: bool,
    /// Failed-frame strikes since the last re-admission or reset.
    pub strikes: u32,
    /// Times the unit completed probation and resumed full health.
    pub readmissions: u64,
    /// WAL append failures (durability degraded, detection continues).
    pub wal_errors: u64,
    /// Mean detector wall-clock per tick, in nanoseconds.
    pub ns_per_tick: u64,
    /// Snapshot persistence failures (the daemon keeps running).
    pub snapshot_errors: u64,
    /// Most recent error recorded for the unit, if any.
    pub last_error: Option<String>,
}

/// Supervisor-facing state of one shard worker.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Times the supervisor restarted this shard (panic or wedge).
    pub restarts: u64,
    /// How many of those restarts were wedge (heartbeat deadline)
    /// recoveries rather than panics.
    pub wedges: u64,
    /// The restart limit was exhausted; the shard is out of service and
    /// its units are hard-degraded.
    pub failed: bool,
    /// Ticks this shard worker processed, across all of its units.
    pub ticks: u64,
    /// Mean wall-clock per shard-processed tick, in nanoseconds. Unlike
    /// the per-unit [`UnitMetrics::ns_per_tick`], this reflects the
    /// batched granularity the worker actually runs at: every tick the
    /// shard thread executes counts once here, whichever unit it served,
    /// so the figure is the shard's real per-tick cost rather than an
    /// average diluted across units.
    pub ns_per_tick: u64,
    /// Most recent panic payload or wedge diagnostic, if any.
    pub last_panic: Option<String>,
}

/// One `Stats` reply: the full state of the daemon.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Per-unit metrics, ascending by unit id.
    pub units: Vec<UnitMetrics>,
    /// Shard worker threads.
    pub shards: usize,
    /// Per-shard supervisor state, ascending by shard index.
    pub shard_status: Vec<ShardStatus>,
    /// Connected verdict-stream subscribers.
    pub subscribers: usize,
    /// Sum of `ticks` over all units.
    pub total_ticks: u64,
    /// Sum of both reject counters over all units.
    pub total_rejects: u64,
    /// Sum of both verdict counters over all units.
    pub total_verdicts: u64,
    /// Whether the fleet-scope hierarchy engine is running.
    pub hierarchy_enabled: bool,
    /// Scope verdicts (alarm raises and clears) emitted so far.
    pub scope_verdicts: u64,
    /// Scopes currently in the alarmed state.
    pub scope_alarms_active: u64,
}

/// Internal mutable per-unit state behind the metrics lock.
#[derive(Debug, Default)]
struct UnitCounters {
    shard: usize,
    ticks: u64,
    rejected_backpressure: u64,
    rejected_order: u64,
    verdicts_healthy: u64,
    verdicts_abnormal: u64,
    demoted_dbs: Vec<usize>,
    degraded: bool,
    probation: bool,
    strikes: u32,
    readmissions: u64,
    wal_errors: u64,
    detector_nanos: u128,
    snapshot_errors: u64,
    last_error: Option<String>,
}

/// Internal hierarchy-engine counters behind the metrics lock.
#[derive(Debug, Default)]
struct HierarchyCounters {
    enabled: bool,
    scope_verdicts: u64,
    alarms_active: u64,
}

/// The shared metrics sink. Cheap to clone the handle (`Arc` it at the
/// server level); every method takes `&self`.
#[derive(Debug)]
pub struct ServerMetrics {
    units: Mutex<BTreeMap<usize, UnitCounters>>,
    /// Per-unit in-flight tick counts (`unit id` indexed), shared with the
    /// connection readers for bounded-ingress accounting.
    inflight: Vec<AtomicUsize>,
    shards: usize,
    shard_status: Mutex<Vec<ShardStatus>>,
    /// Per-shard detector wall-clock accumulators (nanoseconds), indexed
    /// by shard; paired with `ShardStatus::ticks` to render the shard's
    /// mean `ns_per_tick` at snapshot time.
    shard_nanos: Mutex<Vec<u128>>,
    hierarchy: Mutex<HierarchyCounters>,
}

impl ServerMetrics {
    /// A sink for up to `max_units` units over `shards` workers.
    pub fn new(max_units: usize, shards: usize) -> Self {
        Self {
            units: Mutex::new(BTreeMap::new()),
            inflight: (0..max_units).map(|_| AtomicUsize::new(0)).collect(),
            shards,
            shard_status: Mutex::new(
                (0..shards)
                    .map(|shard| ShardStatus {
                        shard,
                        ..ShardStatus::default()
                    })
                    .collect(),
            ),
            shard_nanos: Mutex::new(vec![0; shards]),
            hierarchy: Mutex::new(HierarchyCounters::default()),
        }
    }

    /// Marks the hierarchy engine as running.
    pub fn record_hierarchy_enabled(&self) {
        self.hierarchy.lock_clean().enabled = true;
    }

    /// Records newly emitted scope verdicts and the current count of
    /// alarmed scopes.
    pub fn record_scope_verdicts(&self, emitted: u64, alarms_active: u64) {
        let mut h = self.hierarchy.lock_clean();
        h.scope_verdicts += emitted;
        h.alarms_active = alarms_active;
    }

    fn with_unit<R>(&self, unit: usize, f: impl FnOnce(&mut UnitCounters) -> R) -> R {
        let mut map = self.units.lock_clean();
        f(map.entry(unit).or_default())
    }

    /// Records the shard assignment when a unit registers.
    pub fn register_unit(&self, unit: usize, shard: usize) {
        self.with_unit(unit, |u| u.shard = shard);
    }

    /// Current in-flight count for a unit.
    pub fn queue_depth(&self, unit: usize) -> usize {
        self.inflight
            .get(unit)
            .map(|c| c.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// Reserves one ingress slot if the unit is below `cap`. Returns
    /// whether the reservation succeeded (reader side of backpressure).
    pub fn try_reserve_slot(&self, unit: usize, cap: usize) -> bool {
        let Some(counter) = self.inflight.get(unit) else {
            return false;
        };
        let mut current = counter.load(Ordering::Acquire);
        loop {
            if current >= cap {
                return false;
            }
            match counter.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(seen) => current = seen,
            }
        }
    }

    /// Releases one ingress slot (shard side, after processing; also the
    /// reader side when a reserved send fails). Saturates at zero: a
    /// supervisor restart zeroes a shard's queues, and a release racing
    /// that reset must not underflow the counter into a permanent jam.
    pub fn release_slot(&self, unit: usize) {
        if let Some(counter) = self.inflight.get(unit) {
            let _ = counter.fetch_update(Ordering::AcqRel, Ordering::Acquire, |current| {
                current.checked_sub(1)
            });
        }
    }

    /// Zeroes a unit's in-flight count. Called by the supervisor when it
    /// replaces a shard worker: whatever sat in the dead generation's
    /// queue is gone, and the rewound client will re-send it through
    /// fresh reservations.
    pub fn reset_queue(&self, unit: usize) {
        if let Some(counter) = self.inflight.get(unit) {
            counter.store(0, Ordering::Release);
        }
    }

    /// Counts one rejected tick.
    pub fn record_reject(&self, unit: usize, backpressure: bool) {
        self.with_unit(unit, |u| {
            if backpressure {
                u.rejected_backpressure += 1;
            } else {
                u.rejected_order += 1;
            }
        });
    }

    /// Counts one ingested tick and its detector wall clock.
    pub fn record_tick(&self, unit: usize, nanos: u128) {
        self.with_unit(unit, |u| {
            u.ticks += 1;
            u.detector_nanos += nanos;
        });
    }

    /// Counts one tick processed by a shard worker and its wall clock.
    /// Complements [`Self::record_tick`]: the per-unit figure answers
    /// "how expensive is this unit", this one answers "how loaded is the
    /// shard thread" at the batched granularity the worker runs at.
    pub fn record_shard_tick(&self, shard: usize, nanos: u128) {
        {
            let mut status = self.shard_status.lock_clean();
            if let Some(s) = status.get_mut(shard) {
                s.ticks += 1;
            } else {
                return;
            }
        }
        let mut nanos_acc = self.shard_nanos.lock_clean();
        if let Some(acc) = nanos_acc.get_mut(shard) {
            *acc += nanos;
        }
    }

    /// Counts verdicts by level.
    pub fn record_verdicts(&self, unit: usize, healthy: u64, abnormal: u64) {
        self.with_unit(unit, |u| {
            u.verdicts_healthy += healthy;
            u.verdicts_abnormal += abnormal;
        });
    }

    /// Updates the unit's demoted-database list.
    pub fn record_demoted(&self, unit: usize, demoted: Vec<usize>) {
        self.with_unit(unit, |u| u.demoted_dbs = demoted);
    }

    /// Marks the unit hard-degraded and records the error.
    pub fn record_degraded(&self, unit: usize, error: String) {
        self.with_unit(unit, |u| {
            u.degraded = true;
            u.probation = false;
            u.last_error = Some(error);
        });
    }

    /// Counts one failed-frame strike: the unit enters (or stays on)
    /// probation.
    pub fn record_strike(&self, unit: usize, strikes: u32, error: String) {
        self.with_unit(unit, |u| {
            u.probation = true;
            u.strikes = strikes;
            u.last_error = Some(error);
        });
    }

    /// The unit completed its probation clean streak and is healthy again.
    pub fn record_readmitted(&self, unit: usize) {
        self.with_unit(unit, |u| {
            u.probation = false;
            u.strikes = 0;
            u.readmissions += 1;
        });
    }

    /// An operator `ResetUnit` cleared a hard degradation; the unit
    /// restarts its lifecycle on probation.
    pub fn record_reset(&self, unit: usize) {
        self.with_unit(unit, |u| {
            u.degraded = false;
            u.probation = true;
            u.strikes = 0;
        });
    }

    /// Counts one WAL append failure (detection continues, durability of
    /// that tick is lost).
    pub fn record_wal_error(&self, unit: usize, error: String) {
        self.with_unit(unit, |u| {
            u.wal_errors += 1;
            u.last_error = Some(error);
        });
    }

    /// Counts one supervisor restart of a shard worker.
    pub fn record_shard_restart(&self, shard: usize, wedge: bool, reason: String) {
        let mut status = self.shard_status.lock_clean();
        if let Some(s) = status.get_mut(shard) {
            s.restarts += 1;
            if wedge {
                s.wedges += 1;
            }
            s.last_panic = Some(reason);
        }
    }

    /// Marks a shard permanently failed (restart limit exhausted).
    pub fn record_shard_failed(&self, shard: usize, reason: String) {
        let mut status = self.shard_status.lock_clean();
        if let Some(s) = status.get_mut(shard) {
            s.failed = true;
            s.last_panic = Some(reason);
        }
    }

    /// Attaches a diagnostic note to a shard (WAL recovery problems,
    /// disabled durability) without counting a restart.
    pub fn record_shard_note(&self, shard: usize, note: String) {
        let mut status = self.shard_status.lock_clean();
        if let Some(s) = status.get_mut(shard) {
            s.last_panic = Some(note);
        }
    }

    /// Total supervisor restarts across all shards.
    pub fn total_shard_restarts(&self) -> u64 {
        let status = self.shard_status.lock_clean();
        status.iter().map(|s| s.restarts).sum()
    }

    /// Counts one snapshot persistence failure.
    pub fn record_snapshot_error(&self, unit: usize, error: String) {
        self.with_unit(unit, |u| {
            u.snapshot_errors += 1;
            u.last_error = Some(error);
        });
    }

    /// Records a non-fatal unit-scoped error without degrading the unit.
    pub fn record_error(&self, unit: usize, error: String) {
        self.with_unit(unit, |u| u.last_error = Some(error));
    }

    /// Renders the full snapshot.
    pub fn snapshot(&self, subscribers: usize) -> MetricsSnapshot {
        let map = self.units.lock_clean();
        let mut units = Vec::with_capacity(map.len());
        let (mut ticks, mut rejects, mut verdicts) = (0u64, 0u64, 0u64);
        for (&unit, c) in map.iter() {
            ticks += c.ticks;
            rejects += c.rejected_backpressure + c.rejected_order;
            verdicts += c.verdicts_healthy + c.verdicts_abnormal;
            units.push(UnitMetrics {
                unit,
                shard: c.shard,
                ticks: c.ticks,
                rejected_backpressure: c.rejected_backpressure,
                rejected_order: c.rejected_order,
                verdicts_healthy: c.verdicts_healthy,
                verdicts_abnormal: c.verdicts_abnormal,
                queue_depth: self.queue_depth(unit),
                demoted_dbs: c.demoted_dbs.clone(),
                degraded: c.degraded,
                probation: c.probation,
                strikes: c.strikes,
                readmissions: c.readmissions,
                wal_errors: c.wal_errors,
                ns_per_tick: if c.ticks == 0 {
                    0
                } else {
                    (c.detector_nanos / u128::from(c.ticks)) as u64
                },
                snapshot_errors: c.snapshot_errors,
                last_error: c.last_error.clone(),
            });
        }
        let hierarchy = self.hierarchy.lock_clean();
        let mut shard_status = self.shard_status.lock_clean().clone();
        {
            let nanos = self.shard_nanos.lock_clean();
            for s in shard_status.iter_mut() {
                s.ns_per_tick = match nanos.get(s.shard) {
                    Some(&acc) if s.ticks > 0 => (acc / u128::from(s.ticks)) as u64,
                    _ => 0,
                };
            }
        }
        MetricsSnapshot {
            units,
            shards: self.shards,
            shard_status,
            subscribers,
            total_ticks: ticks,
            total_rejects: rejects,
            total_verdicts: verdicts,
            hierarchy_enabled: hierarchy.enabled,
            scope_verdicts: hierarchy.scope_verdicts,
            scope_alarms_active: hierarchy.alarms_active,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_reservation_enforces_cap() {
        let m = ServerMetrics::new(2, 1);
        assert!(m.try_reserve_slot(0, 2));
        assert!(m.try_reserve_slot(0, 2));
        assert!(!m.try_reserve_slot(0, 2), "third reservation must fail");
        assert_eq!(m.queue_depth(0), 2);
        m.release_slot(0);
        assert!(m.try_reserve_slot(0, 2));
        // out-of-range units never reserve
        assert!(!m.try_reserve_slot(7, 2));
    }

    #[test]
    fn snapshot_aggregates_counters() {
        let m = ServerMetrics::new(4, 2);
        m.register_unit(1, 1);
        m.record_tick(1, 500);
        m.record_tick(1, 1500);
        m.record_verdicts(1, 3, 1);
        m.record_reject(1, true);
        m.record_reject(1, false);
        m.record_demoted(1, vec![2]);
        m.record_snapshot_error(1, "disk full".into());
        let snap = m.snapshot(3);
        assert_eq!(snap.subscribers, 3);
        assert_eq!(snap.shards, 2);
        assert_eq!(snap.total_ticks, 2);
        assert_eq!(snap.total_rejects, 2);
        assert_eq!(snap.total_verdicts, 4);
        let u = &snap.units[0];
        assert_eq!(u.unit, 1);
        assert_eq!(u.shard, 1);
        assert_eq!(u.ns_per_tick, 1000);
        assert_eq!(u.demoted_dbs, vec![2]);
        assert_eq!(u.snapshot_errors, 1);
        assert_eq!(u.last_error.as_deref(), Some("disk full"));
        assert!(!u.degraded);
    }

    #[test]
    fn probation_lifecycle_counters() {
        let m = ServerMetrics::new(1, 1);
        m.record_strike(0, 1, "bad frame".into());
        let snap = m.snapshot(0);
        assert!(snap.units[0].probation && !snap.units[0].degraded);
        assert_eq!(snap.units[0].strikes, 1);
        m.record_readmitted(0);
        let snap = m.snapshot(0);
        assert!(!snap.units[0].probation);
        assert_eq!(snap.units[0].readmissions, 1);
        assert_eq!(snap.units[0].strikes, 0);
        m.record_degraded(0, "third strike".into());
        m.record_reset(0);
        let snap = m.snapshot(0);
        assert!(!snap.units[0].degraded && snap.units[0].probation);
    }

    #[test]
    fn shard_status_tracks_restarts_and_failure() {
        let m = ServerMetrics::new(1, 2);
        m.record_shard_restart(1, false, "panicked: boom".into());
        m.record_shard_restart(1, true, "wedged past heartbeat deadline".into());
        m.record_shard_failed(0, "restart limit exhausted".into());
        assert_eq!(m.total_shard_restarts(), 2);
        let snap = m.snapshot(0);
        assert_eq!(snap.shard_status.len(), 2);
        assert_eq!(snap.shard_status[1].restarts, 2);
        assert_eq!(snap.shard_status[1].wedges, 1);
        assert!(snap.shard_status[0].failed);
        assert!(!snap.shard_status[1].failed);
    }

    #[test]
    fn shard_ticks_average_at_batch_granularity() {
        let m = ServerMetrics::new(4, 2);
        // Shard 1 serves two units; its ns/tick must average over every
        // tick the worker processed, not per unit.
        m.record_shard_tick(1, 1000);
        m.record_shard_tick(1, 2000);
        m.record_shard_tick(1, 3000);
        let snap = m.snapshot(0);
        assert_eq!(snap.shard_status[1].ticks, 3);
        assert_eq!(snap.shard_status[1].ns_per_tick, 2000);
        assert_eq!(snap.shard_status[0].ticks, 0);
        assert_eq!(snap.shard_status[0].ns_per_tick, 0);
        // Out-of-range shards are ignored, not panicked on.
        m.record_shard_tick(9, 500);
        assert_eq!(m.snapshot(0).shard_status.len(), 2);
    }

    #[test]
    fn release_saturates_after_queue_reset() {
        let m = ServerMetrics::new(1, 1);
        assert!(m.try_reserve_slot(0, 4));
        m.reset_queue(0);
        m.release_slot(0);
        assert_eq!(
            m.queue_depth(0),
            0,
            "release after reset must not underflow"
        );
        assert!(m.try_reserve_slot(0, 1), "counter still functional");
    }

    #[test]
    fn hierarchy_counters_roll_up() {
        let m = ServerMetrics::new(1, 1);
        let snap = m.snapshot(0);
        assert!(!snap.hierarchy_enabled);
        m.record_hierarchy_enabled();
        m.record_scope_verdicts(3, 2);
        m.record_scope_verdicts(1, 1);
        let snap = m.snapshot(0);
        assert!(snap.hierarchy_enabled);
        assert_eq!(snap.scope_verdicts, 4);
        assert_eq!(snap.scope_alarms_active, 1);
    }

    #[test]
    fn snapshot_serde_round_trips() {
        let m = ServerMetrics::new(2, 1);
        m.record_tick(0, 42);
        m.record_degraded(0, "bad frame".into());
        let snap = m.snapshot(0);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
