//! The matrix-method (MM) ablation family (paper §IV-D1/2, Table X).
//!
//! Table X slots different correlation measures into DBCatcher's
//! correlation-matrix machinery:
//!
//! * **MM-Pearson** / **MM-DTW** / **MM-KCD** — fixed windows, measure
//!   swapped;
//! * **AMM-KCD** — MM-KCD plus the flexible time-window observation
//!   mechanism (i.e. full DBCatcher).
//!
//! [`MatrixMethod`] reuses the core crate's level quantisation and state
//! determination verbatim, so the only variables are the measure and the
//! window flexibility — exactly the paper's ablation.

use crate::correlation::{dtw_score, pearson_score, spearman_score};
use dbcatcher_core::config::DbCatcherConfig;
use dbcatcher_core::kcd::kcd;
use dbcatcher_core::levels::{aggregate_scores, level_row};
use dbcatcher_core::state::{determine_state, DbState};
use dbcatcher_signal::normalize::min_max;
use serde::{Deserialize, Serialize};

/// Pluggable correlation measures for the MM framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorrelationMeasure {
    /// Lag-zero Pearson correlation.
    Pearson,
    /// Dynamic-time-warping similarity.
    Dtw,
    /// Spearman rank correlation (related work, §VI — monotone
    /// association only; an extension row in our Table X).
    Spearman,
    /// The paper's Key Correlation Distance.
    Kcd,
}

impl CorrelationMeasure {
    /// Display name as in Table X's row labels.
    pub fn name(self) -> &'static str {
        match self {
            CorrelationMeasure::Pearson => "Pearson",
            CorrelationMeasure::Dtw => "DTW",
            CorrelationMeasure::Spearman => "Spearman",
            CorrelationMeasure::Kcd => "KCD",
        }
    }

    /// Scores two raw windows in `[−1, 1]`.
    pub fn score(self, x: &[f64], y: &[f64], max_delay: usize) -> f64 {
        match self {
            CorrelationMeasure::Pearson => {
                let xn = min_max(x);
                let yn = min_max(y);
                if xn.iter().all(|&v| v == 0.0) && yn.iter().all(|&v| v == 0.0) {
                    1.0
                } else {
                    pearson_score(&xn, &yn)
                }
            }
            CorrelationMeasure::Dtw => dtw_score(x, y, max_delay.max(1)),
            CorrelationMeasure::Spearman => {
                if x.is_empty() {
                    0.0
                } else {
                    spearman_score(x, y)
                }
            }
            CorrelationMeasure::Kcd => kcd(x, y, max_delay),
        }
    }
}

/// A correlation-matrix detector with a pluggable measure and optional
/// window flexibility.
#[derive(Debug, Clone)]
pub struct MatrixMethod {
    /// The correlation measure in use.
    pub measure: CorrelationMeasure,
    /// Threshold/window configuration (shared with DBCatcher).
    pub config: DbCatcherConfig,
    /// `true` = AMM (flexible windows); `false` = MM (fixed windows).
    pub flexible: bool,
}

impl MatrixMethod {
    /// Creates an MM/AMM detector.
    pub fn new(measure: CorrelationMeasure, config: DbCatcherConfig, flexible: bool) -> Self {
        Self {
            measure,
            config,
            flexible,
        }
    }

    /// Table X row label, e.g. `"MM-Pearson"` or `"AMM-KCD"`.
    pub fn label(&self) -> String {
        format!(
            "{}-{}",
            if self.flexible { "AMM" } else { "MM" },
            self.measure.name()
        )
    }

    /// Detects over one unit recording (`series[db][kpi][tick]`),
    /// returning per-database per-tick predictions.
    pub fn detect(
        &self,
        series: &[Vec<Vec<f64>>],
        participation: Option<&[Vec<bool>]>,
    ) -> Vec<Vec<bool>> {
        let num_dbs = series.len();
        let ticks = series
            .first()
            .and_then(|db| db.first())
            .map(|s| s.len())
            .unwrap_or(0);
        let mut predictions = vec![vec![false; ticks]; num_dbs];
        let w0 = self.config.initial_window;
        let step = self.config.expansion_step();
        for db in 0..num_dbs {
            let mut start = 0usize;
            let mut size = w0;
            while start + size <= ticks {
                let scores = self.window_scores(series, participation, db, start, size);
                let row = level_row(&scores, &self.config.alphas, self.config.theta);
                let state = determine_state(&row, self.config.max_tolerance);
                let resolved = match state {
                    DbState::Observable if self.flexible => {
                        if size + step <= self.config.max_window && start + size + step <= ticks {
                            size += step;
                            continue;
                        }
                        match self.config.resolve_at_max {
                            dbcatcher_core::config::ResolvePolicy::Abnormal => DbState::Abnormal,
                            dbcatcher_core::config::ResolvePolicy::Healthy => DbState::Healthy,
                        }
                    }
                    // fixed-window MM treats observable as abnormal (it has
                    // no way to gather more evidence)
                    DbState::Observable => DbState::Abnormal,
                    s => s,
                };
                if resolved == DbState::Abnormal {
                    for p in predictions[db][start..start + size].iter_mut() {
                        *p = true;
                    }
                }
                start += size;
                size = w0;
            }
        }
        predictions
    }

    /// Aggregated per-KPI scores of `db` over `[start, start+size)`.
    fn window_scores(
        &self,
        series: &[Vec<Vec<f64>>],
        participation: Option<&[Vec<bool>]>,
        db: usize,
        start: usize,
        size: usize,
    ) -> Vec<f64> {
        let num_dbs = series.len();
        let max_delay = self.config.delay_scan.max_lag(size);
        (0..self.config.num_kpis)
            .map(|kpi| {
                let participates = |d: usize| participation.map(|m| m[kpi][d]).unwrap_or(true);
                if !participates(db) {
                    return f64::NAN;
                }
                let own = &series[db][kpi][start..start + size];
                let mut pair_scores = Vec::with_capacity(num_dbs - 1);
                for peer in 0..num_dbs {
                    if peer == db || !participates(peer) {
                        continue;
                    }
                    let other = &series[peer][kpi][start..start + size];
                    pair_scores.push(self.measure.score(own, other, max_delay));
                }
                aggregate_scores(&pair_scores, self.config.aggregation).unwrap_or(f64::NAN)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcatcher_core::config::DelayScan;

    fn unit(
        dbs: usize,
        kpis: usize,
        ticks: usize,
        distort: Option<(usize, std::ops::Range<usize>)>,
    ) -> Vec<Vec<Vec<f64>>> {
        (0..dbs)
            .map(|db| {
                (0..kpis)
                    .map(|kpi| {
                        (0..ticks)
                            .map(|t| {
                                let trend =
                                    ((t as f64) * std::f64::consts::TAU / 25.0 + kpi as f64).sin();
                                let mut v = 50.0 + 20.0 * trend * (1.0 + 0.05 * db as f64);
                                if let Some((target, range)) = &distort {
                                    if db == *target && range.contains(&t) {
                                        v = 50.0 - 30.0 * trend;
                                    }
                                }
                                v
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    fn config(kpis: usize) -> DbCatcherConfig {
        DbCatcherConfig {
            initial_window: 10,
            max_window: 30,
            delay_scan: DelayScan::Fixed(3),
            ..DbCatcherConfig::with_kpis(kpis)
        }
    }

    #[test]
    fn labels_match_table_x() {
        let c = config(2);
        assert_eq!(
            MatrixMethod::new(CorrelationMeasure::Pearson, c.clone(), false).label(),
            "MM-Pearson"
        );
        assert_eq!(
            MatrixMethod::new(CorrelationMeasure::Dtw, c.clone(), false).label(),
            "MM-DTW"
        );
        assert_eq!(
            MatrixMethod::new(CorrelationMeasure::Kcd, c.clone(), false).label(),
            "MM-KCD"
        );
        assert_eq!(
            MatrixMethod::new(CorrelationMeasure::Kcd, c, true).label(),
            "AMM-KCD"
        );
    }

    #[test]
    fn all_measures_detect_strong_distortion() {
        let series = unit(5, 3, 100, Some((2, 40..70)));
        for measure in [
            CorrelationMeasure::Pearson,
            CorrelationMeasure::Dtw,
            CorrelationMeasure::Spearman,
            CorrelationMeasure::Kcd,
        ] {
            let mm = MatrixMethod::new(measure, config(3), false);
            let preds = mm.detect(&series, None);
            assert!(
                preds[2][40..70].iter().any(|&p| p),
                "{} missed the anomaly",
                mm.label()
            );
            assert!(
                preds[0].iter().all(|&p| !p),
                "{} falsely flagged db 0",
                mm.label()
            );
        }
    }

    #[test]
    fn healthy_unit_clean_for_all() {
        let series = unit(5, 3, 100, None);
        for measure in [
            CorrelationMeasure::Pearson,
            CorrelationMeasure::Dtw,
            CorrelationMeasure::Spearman,
            CorrelationMeasure::Kcd,
        ] {
            let mm = MatrixMethod::new(measure, config(3), false);
            let preds = mm.detect(&series, None);
            assert!(preds.iter().flatten().all(|&p| !p), "{}", mm.label());
        }
    }

    #[test]
    fn kcd_beats_pearson_under_delay() {
        // delay db 1's series by 3 ticks: healthy but phase-shifted
        let base = unit(5, 2, 120, None);
        let mut series = base.clone();
        for kpi in 0..2 {
            let orig = base[1][kpi].clone();
            for t in 0..120 {
                series[1][kpi][t] = orig[t.saturating_sub(3)];
            }
        }
        let pearson = MatrixMethod::new(CorrelationMeasure::Pearson, config(2), false);
        let kcd = MatrixMethod::new(CorrelationMeasure::Kcd, config(2), false);
        let p_fp: usize = pearson.detect(&series, None)[1]
            .iter()
            .filter(|&&p| p)
            .count();
        let k_fp: usize = kcd.detect(&series, None)[1].iter().filter(|&&p| p).count();
        assert!(k_fp <= p_fp, "kcd {k_fp} vs pearson {p_fp} false positives");
        assert_eq!(k_fp, 0, "kcd must tolerate the delay entirely");
    }

    #[test]
    fn participation_mask_respected() {
        let mut series = unit(5, 2, 60, None);
        // distort db 0 on kpi 0 only
        for t in 10..40 {
            series[0][0][t] = 500.0 - series[0][0][t];
        }
        let mask = vec![vec![false, true, true, true, true], vec![true; 5]];
        let mm = MatrixMethod::new(CorrelationMeasure::Kcd, config(2), false);
        let preds = mm.detect(&series, Some(&mask));
        assert!(preds[0].iter().all(|&p| !p));
    }

    #[test]
    fn flexible_windows_never_exceed_max() {
        let series = unit(5, 2, 200, Some((1, 50..90)));
        let amm = MatrixMethod::new(CorrelationMeasure::Kcd, config(2), true);
        // smoke: runs and detects
        let preds = amm.detect(&series, None);
        assert!(preds[1][50..90].iter().any(|&p| p));
    }
}
