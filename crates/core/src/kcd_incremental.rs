//! Incremental correlation engine (the fast path of [`crate::pipeline`]).
//!
//! The naive backend treats every KCD evaluation as independent: copy both
//! windows out of the queues, min–max normalise each, then run the lag
//! scan with two passes per lag. On a unit of D databases judging aligned
//! windows that costs D·(D−1)/2 normalisations per KPI per tick and
//! re-derives every segment mean from scratch.
//!
//! This module keeps per-`(db, kpi)` state across ticks and exploits three
//! structural facts of the pipeline:
//!
//! 1. **Windows are suffixes.** The window state machine judges a window
//!    exactly when its end reaches the newest tick, so every min/max query
//!    is over a suffix of the ingested history — answered in O(log k) from
//!    a pair of monotonic deques instead of an O(k) scan.
//! 2. **Normalisation is shared, and expansions extend it.** The
//!    normalised window of `(db, kpi)` is cached with the `(start, lo,
//!    hi)` that produced it; every peer pair reuses it, and an expanded
//!    window whose min/max did not change appends only the new points
//!    instead of renormalising (the cache invalidates only when the
//!    min/max actually moves or the window advances).
//! 3. **Lag-scan moments come from prefix sums.** Prefix sums of the
//!    normalised window and its squares give every lag segment's mean and
//!    energy in O(1), collapsing each lag to a single fused dot-product
//!    pass — versus two passes per lag per direction in the naive path.
//!
//! Numerical contract: scores are algebraically identical to
//! [`crate::kcd::kcd_normalized`] but may differ in the last few ulps
//! because moments are derived from prefix sums. Whole-window constants
//! take the exact convention branches (detected from the deques), and
//! near-constant *segments* fall back to the exact two-pass formulation,
//! so the degenerate conventions (constant-vs-constant = 1,
//! constant-vs-varying = 0) are preserved bit-for-bit. The differential
//! suite (`tests/differential.rs`) pins the backends to verdict-for-
//! verdict equality.

use crate::queues::KpiQueues;
use std::collections::VecDeque;

/// A segment's energy below `EPS_PER_POINT · len` is treated as
/// potentially degenerate and re-evaluated with the exact two-pass
/// formula. Normalised values live in [0, 1], so this is a relative
/// threshold on the variance scale.
const EPS_PER_POINT: f64 = 1e-12;

/// Cached min–max-normalised window of one series, with prefix sums.
#[derive(Debug, Clone, Default)]
struct NormCache {
    valid: bool,
    start: u64,
    lo: f64,
    hi: f64,
    /// Normalised points; `norm.len()` is the cached window length.
    norm: Vec<f64>,
    /// `psum[i]` = sum of `norm[..i]` (length `norm.len() + 1`).
    psum: Vec<f64>,
    /// `psumsq[i]` = sum of squares of `norm[..i]`.
    psumsq: Vec<f64>,
}

impl NormCache {
    fn reset(&mut self) {
        self.valid = false;
        self.norm.clear();
        self.psum.clear();
        self.psumsq.clear();
    }

    /// Appends normalised points for `raw` under the cached `(lo, hi)`.
    fn extend(&mut self, raw: &[f64]) {
        if self.psum.is_empty() {
            self.psum.push(0.0);
            self.psumsq.push(0.0);
        }
        let range = self.hi - self.lo;
        let mut sum = *self.psum.last().expect("prefix seeded");
        let mut sumsq = *self.psumsq.last().expect("prefix seeded");
        if range == 0.0 {
            // Constant window: min_max maps it to all zeros.
            for _ in raw {
                self.norm.push(0.0);
                self.psum.push(sum);
                self.psumsq.push(sumsq);
            }
        } else {
            let inv = 1.0 / range;
            for &x in raw {
                let v = (x - self.lo) * inv;
                self.norm.push(v);
                sum += v;
                sumsq += v * v;
                self.psum.push(sum);
                self.psumsq.push(sumsq);
            }
        }
    }
}

/// Rolling state of one `(db, kpi)` series.
#[derive(Debug, Clone, Default)]
struct SeriesState {
    /// Contiguous retained samples; `data[0]` holds absolute tick `base`.
    data: Vec<f64>,
    base: u64,
    /// `(tick, value)` candidates, ticks ascending, values ascending —
    /// front is the minimum of the whole retained suffix.
    min_deque: VecDeque<(u64, f64)>,
    /// Same, values descending — front is the maximum.
    max_deque: VecDeque<(u64, f64)>,
    cache: NormCache,
}

impl SeriesState {
    fn push(&mut self, tick: u64, value: f64, capacity: usize) {
        self.data.push(value);
        // Compact lazily at 2× capacity so slices stay contiguous and the
        // amortised cost per push is O(1).
        if self.data.len() > capacity * 2 {
            let drop = self.data.len() - capacity;
            self.data.drain(..drop);
            self.base += drop as u64;
        }
        while self
            .min_deque
            .back()
            .is_some_and(|&(_, v)| v >= value)
        {
            self.min_deque.pop_back();
        }
        self.min_deque.push_back((tick, value));
        while self
            .max_deque
            .back()
            .is_some_and(|&(_, v)| v <= value)
        {
            self.max_deque.pop_back();
        }
        self.max_deque.push_back((tick, value));
        // Evict candidates that no valid window can reach any more.
        let horizon = (tick + 1).saturating_sub(capacity as u64);
        while self.min_deque.front().is_some_and(|&(t, _)| t < horizon) {
            self.min_deque.pop_front();
        }
        while self.max_deque.front().is_some_and(|&(t, _)| t < horizon) {
            self.max_deque.pop_front();
        }
    }

    /// Minimum and maximum over the suffix window starting at `start`
    /// and ending at the newest retained tick.
    fn suffix_min_max(&self, start: u64) -> (f64, f64) {
        (
            Self::suffix_query(&self.min_deque, start),
            Self::suffix_query(&self.max_deque, start),
        )
    }

    fn suffix_query(deque: &VecDeque<(u64, f64)>, start: u64) -> f64 {
        // Ticks ascend, so the first candidate at or after `start` is the
        // extremum of the suffix.
        let idx = deque.partition_point(|&(t, _)| t < start);
        deque[idx].1
    }

    /// Ensures the normalised-window cache covers `[start, start + len)`,
    /// extending incrementally when only the window length grew.
    fn ensure_normalized(&mut self, start: u64, len: usize) {
        let (lo, hi) = self.suffix_min_max(start);
        let reusable = self.cache.valid
            && self.cache.start == start
            && self.cache.lo == lo
            && self.cache.hi == hi
            && self.cache.norm.len() <= len;
        if !reusable {
            self.cache.reset();
            self.cache.start = start;
            self.cache.lo = lo;
            self.cache.hi = hi;
            self.cache.valid = true;
        }
        let cached = self.cache.norm.len();
        if cached < len {
            let offset = (start - self.base) as usize;
            let fresh = self.data[offset + cached..offset + len].to_vec();
            self.cache.extend(&fresh);
        }
    }
}

/// Incremental pairwise KCD engine over a unit's KPI streams.
///
/// Feed it the same frames as [`KpiQueues`] and ask for pair scores over
/// suffix windows; see the module docs for the caching contract.
#[derive(Debug, Clone)]
pub struct IncrementalCorrelator {
    num_dbs: usize,
    num_kpis: usize,
    capacity: usize,
    /// `states[db * num_kpis + kpi]`.
    states: Vec<SeriesState>,
    /// Total ticks ingested (== next absolute tick).
    len: u64,
}

impl IncrementalCorrelator {
    /// Creates an engine retaining the last `capacity` ticks per series.
    ///
    /// # Panics
    /// Panics when any dimension is zero.
    pub fn new(num_dbs: usize, num_kpis: usize, capacity: usize) -> Self {
        assert!(
            num_dbs > 0 && num_kpis > 0 && capacity > 0,
            "dimensions must be positive"
        );
        Self {
            num_dbs,
            num_kpis,
            capacity,
            states: vec![SeriesState::default(); num_dbs * num_kpis],
            len: 0,
        }
    }

    /// Rebuilds the engine from a queue snapshot by replaying its retained
    /// samples (snapshot restore support).
    pub fn from_queues(queues: &KpiQueues) -> Self {
        let mut engine = Self::new(queues.num_dbs(), queues.num_kpis(), queues.capacity());
        let base = queues.base_tick();
        let retained = (queues.next_tick() - base) as usize;
        for db in 0..engine.num_dbs {
            for kpi in 0..engine.num_kpis {
                let series = queues
                    .window(db, kpi, base, retained)
                    .expect("retained range readable");
                let state = &mut engine.states[db * engine.num_kpis + kpi];
                state.base = base;
                for (i, &v) in series.iter().enumerate() {
                    state.push(base + i as u64, v, engine.capacity);
                }
            }
        }
        engine.len = queues.next_tick();
        engine
    }

    /// Next absolute tick to be ingested.
    pub fn next_tick(&self) -> u64 {
        self.len
    }

    /// Ingests one frame (`frame[db][kpi]`), mirroring
    /// [`KpiQueues::push`].
    ///
    /// # Panics
    /// Panics when the frame shape mismatches the engine dimensions.
    pub fn push(&mut self, frame: &[Vec<f64>]) {
        assert_eq!(frame.len(), self.num_dbs, "frame database arity mismatch");
        let tick = self.len;
        for (db, kpis) in frame.iter().enumerate() {
            assert_eq!(kpis.len(), self.num_kpis, "frame KPI arity mismatch");
            for (k, &v) in kpis.iter().enumerate() {
                self.states[db * self.num_kpis + k].push(tick, v, self.capacity);
            }
        }
        self.len += 1;
    }

    /// KCD score of databases `a` and `b` on `kpi` over the suffix window
    /// `[start, start + len)`, scanning lags up to `max_delay`.
    ///
    /// # Panics
    /// Panics when the window is not the current suffix (its end must be
    /// the newest ingested tick), has been evicted, or indices are out of
    /// range.
    pub fn pair_score(
        &mut self,
        a: usize,
        b: usize,
        kpi: usize,
        start: u64,
        len: usize,
        max_delay: usize,
    ) -> f64 {
        assert!(a < self.num_dbs && b < self.num_dbs && kpi < self.num_kpis, "index out of range");
        assert!(len > 0, "empty window");
        assert_eq!(
            start + len as u64,
            self.len,
            "incremental engine judges suffix windows only"
        );
        assert!(
            self.len - start <= self.capacity as u64,
            "window reaches into evicted history"
        );

        let ia = a * self.num_kpis + kpi;
        let ib = b * self.num_kpis + kpi;
        self.states[ia].ensure_normalized(start, len);
        self.states[ib].ensure_normalized(start, len);

        let sa = &self.states[ia];
        let sb = &self.states[ib];
        let a_const = sa.cache.hi == sa.cache.lo;
        let b_const = sb.cache.hi == sb.cache.lo;
        // min_max maps constants to all-zero windows; the conventions of
        // `centered_correlation` then collapse the whole lag scan.
        match (a_const, b_const) {
            (true, true) => return 1.0,
            (true, false) | (false, true) => return 0.0,
            (false, false) => {}
        }

        let max_s = max_delay.min(len.saturating_sub(2));
        let mut best = f64::NEG_INFINITY;
        for s in 0..=max_s {
            let seg = len - s;
            // a delayed by s (a's sample i matches b's sample i−s)
            let c1 = lag_correlation(&sa.cache, &sb.cache, s, 0, seg);
            // b delayed by s; identical to c1 at s = 0
            let c2 = if s == 0 {
                c1
            } else {
                lag_correlation(&sa.cache, &sb.cache, 0, s, seg)
            };
            best = best.max(c1).max(c2);
            if best >= 1.0 {
                break;
            }
        }
        best
    }
}

/// Correlation of `x.norm[x_off..x_off + len]` against
/// `y.norm[y_off..y_off + len]`, moments from prefix sums, one fused dot
/// pass. Falls back to the exact two-pass formula on degenerate segments.
fn lag_correlation(x: &NormCache, y: &NormCache, x_off: usize, y_off: usize, len: usize) -> f64 {
    let n = len as f64;
    let xs = &x.norm[x_off..x_off + len];
    let ys = &y.norm[y_off..y_off + len];
    let sx = x.psum[x_off + len] - x.psum[x_off];
    let sy = y.psum[y_off + len] - y.psum[y_off];
    let mx = sx / n;
    let my = sy / n;
    let nx = (x.psumsq[x_off + len] - x.psumsq[x_off] - n * mx * mx).max(0.0);
    let ny = (y.psumsq[y_off + len] - y.psumsq[y_off] - n * my * my).max(0.0);
    let eps = EPS_PER_POINT * n;
    if nx <= eps || ny <= eps {
        // A (near-)constant segment: the convention branches depend on
        // *exact* zero energy, which prefix-sum cancellation cannot
        // witness — defer to the naive formulation.
        return crate::kcd::centered_correlation(xs, ys);
    }
    let mut dot = 0.0;
    for (&xv, &yv) in xs.iter().zip(ys) {
        dot += xv * yv;
    }
    let centered = dot - n * mx * my;
    (centered / (nx.sqrt() * ny.sqrt())).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcd::kcd_normalized;
    use dbcatcher_signal::normalize::min_max;

    /// Deterministic pseudo-random stream.
    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        }
    }

    fn feed(engine: &mut IncrementalCorrelator, series: &[Vec<f64>], upto: usize) {
        let start = engine.next_tick() as usize;
        for t in start..upto {
            let frame: Vec<Vec<f64>> = series.iter().map(|kpis| vec![kpis[t]]).collect();
            engine.push(&frame);
        }
    }

    /// Reference score via the naive path over the same window.
    fn naive(series: &[Vec<f64>], a: usize, b: usize, start: usize, len: usize, m: usize) -> f64 {
        let x = min_max(&series[a][start..start + len]);
        let y = min_max(&series[b][start..start + len]);
        kcd_normalized(&x, &y, m)
    }

    #[test]
    fn matches_naive_on_random_windows() {
        let mut next = lcg(42);
        let series: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..200).map(|_| next() * 50.0).collect())
            .collect();
        let mut engine = IncrementalCorrelator::new(3, 1, 140);
        for (start, len) in [(0usize, 20usize), (20, 30), (50, 25), (75, 60)] {
            feed(&mut engine, &series, start + len);
            for (a, b) in [(0, 1), (0, 2), (1, 2)] {
                for m in [0usize, 3, 5] {
                    let fast = engine.pair_score(a, b, 0, start as u64, len, m);
                    let slow = naive(&series, a, b, start, len, m);
                    assert!(
                        (fast - slow).abs() < 1e-9,
                        "({a},{b}) window ({start},{len}) m={m}: {fast} vs {slow}"
                    );
                }
            }
        }
    }

    #[test]
    fn expansion_extends_cache_and_matches_naive() {
        let mut next = lcg(7);
        let series: Vec<Vec<f64>> = (0..2)
            .map(|_| (0..100).map(|_| next() * 10.0 - 5.0).collect())
            .collect();
        let mut engine = IncrementalCorrelator::new(2, 1, 140);
        // same start, growing window — the expansion path
        for len in [10usize, 20, 30, 40, 60] {
            feed(&mut engine, &series, len);
            let fast = engine.pair_score(0, 1, 0, 0, len, 3);
            let slow = naive(&series, 0, 1, 0, len, 3);
            assert!((fast - slow).abs() < 1e-9, "len {len}: {fast} vs {slow}");
        }
    }

    #[test]
    fn constant_conventions_are_exact() {
        let flat = vec![5.0; 60];
        let flat2 = vec![-3.0; 60];
        let varying: Vec<f64> = (0..60).map(|i| (i as f64 * 0.3).sin()).collect();
        let series = vec![flat, flat2, varying];
        let mut engine = IncrementalCorrelator::new(3, 1, 140);
        feed(&mut engine, &series, 40);
        assert_eq!(engine.pair_score(0, 1, 0, 10, 30, 5), 1.0);
        assert_eq!(engine.pair_score(0, 2, 0, 10, 30, 5), 0.0);
        assert_eq!(engine.pair_score(2, 1, 0, 10, 30, 5), 0.0);
    }

    #[test]
    fn flat_segment_inside_varying_window_matches_naive() {
        // A window whose interior contains an exactly constant stretch —
        // the degenerate-segment fallback must reproduce the naive
        // convention for lags that align onto the flat part.
        let mut a = vec![1.0; 30];
        a[0] = 0.0; // varies overall, flat on [1..30)
        let b: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let series = vec![a, b];
        let mut engine = IncrementalCorrelator::new(2, 1, 140);
        feed(&mut engine, &series, 30);
        for m in [0usize, 5, 14] {
            let fast = engine.pair_score(0, 1, 0, 0, 30, m);
            let slow = naive(&series, 0, 1, 0, 30, m);
            assert!((fast - slow).abs() < 1e-9, "m={m}: {fast} vs {slow}");
        }
    }

    #[test]
    fn symmetric_in_arguments() {
        let mut next = lcg(99);
        let series: Vec<Vec<f64>> = (0..2)
            .map(|_| (0..50).map(|_| next()).collect())
            .collect();
        let mut engine = IncrementalCorrelator::new(2, 1, 140);
        feed(&mut engine, &series, 50);
        let ab = engine.pair_score(0, 1, 0, 20, 30, 4);
        let ba = engine.pair_score(1, 0, 0, 20, 30, 4);
        assert!((ab - ba).abs() < 1e-12, "{ab} vs {ba}");
    }

    #[test]
    fn long_run_with_eviction_matches_naive() {
        let mut next = lcg(1234);
        let cap = 50usize;
        let series: Vec<Vec<f64>> = (0..2)
            .map(|_| (0..400).map(|_| next() * 100.0).collect())
            .collect();
        let mut engine = IncrementalCorrelator::new(2, 1, cap);
        let mut start = 0usize;
        let len = 20usize;
        while start + len <= 400 {
            feed(&mut engine, &series, start + len);
            let fast = engine.pair_score(0, 1, 0, start as u64, len, 3);
            let slow = naive(&series, 0, 1, start, len, 3);
            assert!((fast - slow).abs() < 1e-9, "start {start}: {fast} vs {slow}");
            start += len;
        }
    }

    #[test]
    fn from_queues_replays_state() {
        let mut next = lcg(5);
        let series: Vec<Vec<f64>> = (0..2)
            .map(|_| (0..80).map(|_| next() * 9.0).collect())
            .collect();
        let mut queues = KpiQueues::new(2, 1, 60);
        let mut live = IncrementalCorrelator::new(2, 1, 60);
        for t in 0..80 {
            let frame: Vec<Vec<f64>> = series.iter().map(|kpis| vec![kpis[t]]).collect();
            queues.push(&frame);
            live.push(&frame);
        }
        let mut restored = IncrementalCorrelator::from_queues(&queues);
        assert_eq!(restored.next_tick(), live.next_tick());
        let a = live.pair_score(0, 1, 0, 60, 20, 3);
        let b = restored.pair_score(0, 1, 0, 60, 20, 3);
        assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
    }

    #[test]
    #[should_panic(expected = "suffix windows only")]
    fn non_suffix_window_panics() {
        let mut engine = IncrementalCorrelator::new(2, 1, 40);
        for t in 0..30 {
            engine.push(&[vec![t as f64], vec![t as f64 * 2.0]]);
        }
        let _ = engine.pair_score(0, 1, 0, 0, 20, 3);
    }
}
