//! Error type shared by the signal-processing primitives.

use std::fmt;

/// Errors produced by the signal-processing substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignalError {
    /// The input slice was empty where a non-empty series is required.
    EmptyInput,
    /// Two inputs that must have equal length did not.
    LengthMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for SignalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalError::EmptyInput => write!(f, "input series is empty"),
            SignalError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            SignalError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SignalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_empty_input() {
        assert_eq!(SignalError::EmptyInput.to_string(), "input series is empty");
    }

    #[test]
    fn display_length_mismatch() {
        let e = SignalError::LengthMismatch { left: 3, right: 5 };
        assert_eq!(e.to_string(), "length mismatch: 3 vs 5");
    }

    #[test]
    fn display_invalid_parameter() {
        let e = SignalError::InvalidParameter {
            name: "lag",
            reason: "must be < n".into(),
        };
        assert_eq!(e.to_string(), "invalid parameter `lag`: must be < n");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&SignalError::EmptyInput);
    }
}
