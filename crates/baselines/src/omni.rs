//! OmniAnomaly-style detector (paper §IV-A4, after Su et al., KDD'19).
//!
//! OmniAnomaly models the *normal* variation pattern of a multivariate
//! KPI stream with a stochastic recurrent network: a GRU captures the
//! temporal dependence, a VAE bottleneck captures stochasticity, and a
//! point is scored by its reconstruction (negative log-) likelihood —
//! low likelihood means the point does not look like anything the model
//! learned.
//!
//! Per the paper's protocol (§IV-B) the same-KPI series of different
//! databases are concatenated, i.e. every database contributes its
//! KPI-vector stream as training data for one shared model, and each
//! database is scored with that model; the unit score is the maximum
//! across databases.
//!
//! The defining behaviours DBCatcher is compared against are preserved:
//! the method needs a long window of history, a real training phase, and
//! degrades when the workload pattern it memorised drifts.

use crate::detector::{max_across, Detector, UnitSeries};
use dbcatcher_nn::activation::Activation;
use dbcatcher_nn::dense::Dense;
use dbcatcher_nn::gru::GruCell;
use dbcatcher_nn::loss::{gaussian_nll, kl_standard_normal};
use dbcatcher_nn::matrix::Matrix;
use dbcatcher_nn::vae::{mean_sample, reparameterize, reparameterize_backward};
use dbcatcher_nn::XorShiftRng;
use dbcatcher_signal::stats::{mean, std_dev};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the OmniAnomaly-style detector.
#[derive(Debug, Clone)]
pub struct OmniConfig {
    /// Input window length (history the GRU consumes per score).
    pub window: usize,
    /// GRU hidden width.
    pub hidden: usize,
    /// Latent dimensionality.
    pub latent: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam-free plain SGD learning rate.
    pub lr: f64,
    /// KL weight β.
    pub beta: f64,
    /// Maximum training windows drawn per fit.
    pub max_train_windows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OmniConfig {
    fn default() -> Self {
        Self {
            window: 20,
            hidden: 12,
            latent: 4,
            epochs: 3,
            lr: 0.01,
            beta: 0.1,
            max_train_windows: 300,
            seed: 0x0A41,
        }
    }
}

/// The GRU-VAE detector.
#[derive(Debug, Clone)]
pub struct OmniAnomaly {
    config: OmniConfig,
    num_kpis: usize,
    gru: GruCell,
    mu_layer: Dense,
    logvar_layer: Dense,
    dec_hidden: Dense,
    dec_mu: Dense,
    dec_logvar: Dense,
    /// Per-KPI (mean, std) computed on the training split.
    norm: Vec<(f64, f64)>,
    trained: bool,
    nn_rng: XorShiftRng,
}

impl OmniAnomaly {
    /// Creates an untrained model for `num_kpis`-dimensional streams.
    pub fn new(config: OmniConfig, num_kpis: usize) -> Self {
        let mut rng = XorShiftRng::new(config.seed);
        Self {
            num_kpis,
            gru: GruCell::new(num_kpis, config.hidden, &mut rng),
            mu_layer: Dense::new(config.hidden, config.latent, Activation::Linear, &mut rng),
            logvar_layer: Dense::new(config.hidden, config.latent, Activation::Linear, &mut rng),
            dec_hidden: Dense::new(config.latent, config.hidden, Activation::Tanh, &mut rng),
            dec_mu: Dense::new(config.hidden, num_kpis, Activation::Linear, &mut rng),
            dec_logvar: Dense::new(config.hidden, num_kpis, Activation::Linear, &mut rng),
            norm: vec![(0.0, 1.0); num_kpis],
            trained: false,
            nn_rng: rng,
            config,
        }
    }

    /// Whether [`Detector::fit`] has run.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Z-score-normalised window for one database: `window[t] = 1 × kpis`.
    fn normalized_window(&self, db: &[Vec<f64>], end: usize) -> Vec<Matrix> {
        let w = self.config.window;
        (end + 1 - w..=end)
            .map(|t| {
                let row: Vec<f64> = (0..self.num_kpis)
                    .map(|k| {
                        let (m, s) = self.norm[k];
                        (db[k][t] - m) / s
                    })
                    .collect();
                Matrix::row_vector(&row)
            })
            .collect()
    }

    /// One training step over a window; returns `nll + β·kl`.
    fn train_step(&mut self, xs: &[Matrix]) -> f64 {
        let target = xs.last().expect("non-empty window").clone();
        let h0 = self.gru.zero_state(1);
        let caches = self.gru.forward_seq(xs, &h0);
        let h_last = caches.last().expect("window non-empty").h.clone();
        let mu_cache = self.mu_layer.forward(&h_last);
        let lv_cache = self.logvar_layer.forward(&h_last);
        let sample = reparameterize(mu_cache.output(), lv_cache.output(), &mut self.nn_rng);
        let dec_h = self.dec_hidden.forward(&sample.z);
        let out_mu = self.dec_mu.forward(dec_h.output());
        let out_lv = self.dec_logvar.forward(dec_h.output());

        let (nll, d_out_mu, d_out_lv) = gaussian_nll(&target, out_mu.output(), out_lv.output());
        let (kl, mut d_mu_lat, mut d_lv_lat) =
            kl_standard_normal(mu_cache.output(), lv_cache.output());
        d_mu_lat = d_mu_lat.scale(self.config.beta);
        d_lv_lat = d_lv_lat.scale(self.config.beta);

        // decoder backward
        let g_dech = self
            .dec_mu
            .backward(&out_mu, &d_out_mu)
            .add(&self.dec_logvar.backward(&out_lv, &d_out_lv));
        let dz = self.dec_hidden.backward(&dec_h, &g_dech);
        // through the reparameterisation
        let (dmu_z, dlv_z) = reparameterize_backward(&sample, lv_cache.output(), &dz);
        let dmu_total = dmu_z.add(&d_mu_lat);
        let dlv_total = dlv_z.add(&d_lv_lat);
        // encoder backward
        let dh = self
            .mu_layer
            .backward(&mu_cache, &dmu_total)
            .add(&self.logvar_layer.backward(&lv_cache, &dlv_total));
        self.gru.backward_seq(&caches, &dh);

        // parameter updates
        let lr = self.config.lr;
        self.dec_mu.sgd_step(lr);
        self.dec_logvar.sgd_step(lr);
        self.dec_hidden.sgd_step(lr);
        self.mu_layer.sgd_step(lr);
        self.logvar_layer.sgd_step(lr);
        self.gru.sgd_step(lr, 5.0);

        nll + self.config.beta * kl
    }

    /// Reconstruction NLL of the last point of a window (deterministic:
    /// the posterior mean replaces sampling at inference).
    fn window_nll(&self, xs: &[Matrix]) -> f64 {
        let target = xs.last().expect("non-empty window");
        let h0 = self.gru.zero_state(1);
        let caches = self.gru.forward_seq(xs, &h0);
        let h_last = &caches.last().expect("window non-empty").h;
        let mu = self.mu_layer.forward(h_last);
        let z = mean_sample(mu.output());
        let dec_h = self.dec_hidden.forward(&z);
        let out_mu = self.dec_mu.forward(dec_h.output());
        let out_lv = self.dec_logvar.forward(dec_h.output());
        let (nll, _, _) = gaussian_nll(target, out_mu.output(), out_lv.output());
        nll
    }

    /// Per-tick scores for one database's KPI matrix (`db[kpi][tick]`).
    pub fn score_database(&self, db: &[Vec<f64>]) -> Vec<f64> {
        let ticks = db.first().map(|s| s.len()).unwrap_or(0);
        let w = self.config.window;
        if ticks == 0 {
            return Vec::new();
        }
        let mut scores = vec![0.0; ticks];
        if ticks < w {
            return scores;
        }
        for end in (w - 1)..ticks {
            let xs = self.normalized_window(db, end);
            scores[end] = self.window_nll(&xs);
        }
        // warm-up ticks inherit the first computed score
        let first = scores[w - 1];
        for s in scores.iter_mut().take(w - 1) {
            *s = first;
        }
        scores
    }
}

impl Detector for OmniAnomaly {
    fn name(&self) -> &'static str {
        "OmniAnomaly"
    }

    fn fit(&mut self, units: &[&UnitSeries]) {
        // normalisation statistics over all training data
        for k in 0..self.num_kpis {
            let mut all = Vec::new();
            for unit in units {
                for db in unit.iter() {
                    all.extend_from_slice(&db[k]);
                }
            }
            let m = mean(&all);
            let s = std_dev(&all).max(1e-9);
            self.norm[k] = (m, s);
        }
        // draw training windows round-robin across units and databases
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut windows = Vec::new();
        let w = self.config.window;
        for unit in units {
            for db in unit.iter() {
                let ticks = db.first().map(|s| s.len()).unwrap_or(0);
                if ticks < w {
                    continue;
                }
                for _ in 0..4 {
                    let end = rng.gen_range(w - 1..ticks);
                    windows.push(self.normalized_window(db, end));
                }
            }
        }
        while windows.len() < self.config.max_train_windows {
            // re-sample until the budget is met (small training sets)
            let extra: Vec<_> = {
                let mut v = Vec::new();
                for unit in units {
                    for db in unit.iter() {
                        let ticks = db.first().map(|s| s.len()).unwrap_or(0);
                        if ticks < w {
                            continue;
                        }
                        let end = rng.gen_range(w - 1..ticks);
                        v.push(self.normalized_window(db, end));
                    }
                }
                v
            };
            if extra.is_empty() {
                break;
            }
            windows.extend(extra);
        }
        windows.truncate(self.config.max_train_windows);
        for _ in 0..self.config.epochs {
            for xs in &windows {
                self.train_step(xs);
            }
        }
        self.trained = true;
    }

    fn score(&self, unit: &UnitSeries) -> Vec<f64> {
        let per_db: Vec<Vec<f64>> = unit.iter().map(|db| self.score_database(db)).collect();
        max_across(&per_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-KPI stream with a stable sinusoid pattern.
    fn healthy_db(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed;
        let mut noise = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        let a: Vec<f64> = (0..n)
            .map(|i| 10.0 + 3.0 * (std::f64::consts::TAU * i as f64 / 24.0).sin() + 0.3 * noise())
            .collect();
        let b: Vec<f64> = (0..n)
            .map(|i| 5.0 + 2.0 * (std::f64::consts::TAU * i as f64 / 24.0).cos() + 0.2 * noise())
            .collect();
        vec![a, b]
    }

    fn quick() -> OmniConfig {
        OmniConfig {
            epochs: 4,
            max_train_windows: 150,
            ..OmniConfig::default()
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut model = OmniAnomaly::new(quick(), 2);
        let unit: UnitSeries = vec![healthy_db(200, 1)];
        model.norm = vec![(10.0, 3.0), (5.0, 2.0)];
        let xs = model.normalized_window(&unit[0], 100);
        let first = model.train_step(&xs);
        let mut last = first;
        for _ in 0..60 {
            last = model.train_step(&xs);
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn anomalous_point_scores_higher_than_normal() {
        let mut model = OmniAnomaly::new(quick(), 2);
        let train: UnitSeries = vec![healthy_db(300, 1), healthy_db(300, 2)];
        model.fit(&[&train]);
        assert!(model.is_trained());
        let mut test_db = healthy_db(120, 9);
        // level shift on both KPIs from tick 80
        for kpi in test_db.iter_mut() {
            for v in kpi.iter_mut().skip(80) {
                *v += 15.0;
            }
        }
        let scores = model.score_database(&test_db);
        let normal: f64 = scores[30..70].iter().sum::<f64>() / 40.0;
        let abnormal: f64 = scores[82..110].iter().sum::<f64>() / 28.0;
        assert!(
            abnormal > normal + 0.5,
            "abnormal {abnormal} vs normal {normal}"
        );
    }

    #[test]
    fn score_shapes() {
        let model = OmniAnomaly::new(quick(), 2);
        let unit: UnitSeries = vec![healthy_db(60, 3), healthy_db(60, 4)];
        let scores = model.score(&unit);
        assert_eq!(scores.len(), 60);
        // series shorter than the window score zero
        let short = model.score_database(&[vec![1.0; 5], vec![1.0; 5]]);
        assert!(short.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn fit_on_empty_is_safe() {
        let mut model = OmniAnomaly::new(quick(), 2);
        model.fit(&[]);
        assert!(model.is_trained());
    }

    #[test]
    fn deterministic_scoring() {
        let model = OmniAnomaly::new(quick(), 2);
        let db = healthy_db(60, 5);
        assert_eq!(model.score_database(&db), model.score_database(&db));
    }
}
