//! Workload drift (paper §IV-C3): thresholds tuned on one workload are
//! carried to a different one; the adaptive learner re-fits them from
//! fresh judgment records orders of magnitude faster than retraining a
//! learned model.
//!
//! ```bash
//! cargo run --release --example workload_drift
//! ```

use dbcatcher::eval::experiments::collect_judgment_records;
use dbcatcher::eval::methods::{retrain_seconds, train_dbcatcher, MethodKind};
use dbcatcher::eval::protocol::ProtocolConfig;
use dbcatcher::workload::dataset::DatasetSpec;

fn main() {
    let scale = 0.04;
    let tencent = DatasetSpec::paper_tencent(11).scaled(scale).build();
    let sysbench = DatasetSpec::paper_sysbench(13).scaled(scale).build();
    let cfg = ProtocolConfig::default();

    // Train on the Tencent-like workload.
    let (tencent_train, _) = tencent.split(0.5);
    let (config, f1) = train_dbcatcher(&tencent_train, &cfg);
    println!("trained on Tencent: F-Measure on its own records {f1:.2}");

    // The workload drifts to Sysbench: how do the old thresholds fare on
    // the new workload's judgment records?
    let (sys_train, _) = sysbench.split(0.5);
    let records = collect_judgment_records(&sys_train);
    let genes = dbcatcher::core::ga::Genes {
        alphas: config.alphas.clone(),
        theta: config.theta,
        max_tolerance: config.max_tolerance,
    };
    let drifted_f1 = dbcatcher::core::feedback::f_measure_on_records(&genes, &records);
    println!("after drift to Sysbench: F-Measure with the old thresholds {drifted_f1:.2}");

    // Retraining cost comparison (paper Table IX): DBCatcher only re-runs
    // the GA over fresh records; a learned model retrains end to end.
    for method in [
        MethodKind::DbCatcher,
        MethodKind::SrCnn,
        MethodKind::OmniAnomaly,
    ] {
        let secs = retrain_seconds(method, &sys_train, &cfg);
        println!(
            "retraining {:<12} on the new workload: {:.3}s",
            method.name(),
            secs
        );
    }

    // After re-learning, the new thresholds restore performance.
    let (reconfig, new_f1) = train_dbcatcher(&sys_train, &cfg);
    println!(
        "re-learned thresholds: F-Measure {new_f1:.2} (theta {:.2}, tolerance {})",
        reconfig.theta, reconfig.max_tolerance
    );
}
