//! FFT-based anomaly detector (paper §IV-A4, after Van Loan).
//!
//! "FFT decomposes the single time series into separate components at
//! several frequencies and then measures the degree of difference between
//! time series points and surrounding points." — per (database, KPI)
//! series we keep the low-frequency components as the *expected* shape,
//! and score each point by its robust-z residual against it. The k-of-M
//! voting rule lifts the univariate verdicts to the unit level.

use crate::detector::{vote_fraction, Detector, UnitSeries};
use dbcatcher_signal::fft::{irfft_truncated, rfft_padded, Complex};
use dbcatcher_signal::stats::robust_z_scores;

/// Configuration of the FFT detector.
#[derive(Debug, Clone)]
pub struct FftConfig {
    /// Number of low-frequency bins kept as the expected shape.
    pub keep_bins: usize,
    /// Robust-z threshold a point must exceed to vote "abnormal".
    pub vote_z: f64,
}

impl Default for FftConfig {
    fn default() -> Self {
        Self {
            keep_bins: 6,
            vote_z: 3.0,
        }
    }
}

/// The FFT baseline. Stateless after construction — the "training" the
/// paper times for this method is its (cheap) hyper-parameter search,
/// which the evaluation harness performs.
#[derive(Debug, Clone, Default)]
pub struct FftDetector {
    config: FftConfig,
}

impl FftDetector {
    /// Creates the detector.
    pub fn new(config: FftConfig) -> Self {
        Self { config }
    }

    /// Low-pass reconstruction of a series: keep `keep_bins` bins on each
    /// spectrum edge (DC + lowest frequencies and their conjugates).
    pub fn low_pass(&self, xs: &[f64]) -> Vec<f64> {
        if xs.len() < 4 {
            return xs.to_vec();
        }
        // Mirror-pad to the next power of two: zero padding would fabricate
        // a cliff at the series end that the residual scorer mistakes for
        // an anomaly.
        let n2 = dbcatcher_signal::fft::next_pow2(xs.len());
        let mut padded = xs.to_vec();
        while padded.len() < n2 {
            let idx = xs.len().saturating_sub(2 + (padded.len() - xs.len())) % xs.len();
            padded.push(xs[idx]);
        }
        let mut spectrum = rfft_padded(&padded).expect("non-empty series");
        let n = spectrum.len();
        let keep = self.config.keep_bins.min(n / 2);
        for (i, c) in spectrum.iter_mut().enumerate() {
            let low = i <= keep || i >= n - keep;
            if !low {
                *c = Complex::zero();
            }
        }
        irfft_truncated(&spectrum, xs.len()).expect("inverse fits")
    }

    /// Per-point residual scores of one series.
    pub fn point_scores(&self, xs: &[f64]) -> Vec<f64> {
        let smooth = self.low_pass(xs);
        let residual: Vec<f64> = xs.iter().zip(&smooth).map(|(x, s)| x - s).collect();
        robust_z_scores(&residual).iter().map(|z| z.abs()).collect()
    }
}

impl Detector for FftDetector {
    fn name(&self) -> &'static str {
        "FFT"
    }

    fn fit(&mut self, _units: &[&UnitSeries]) {
        // Statistical method: nothing to learn from data.
    }

    fn score(&self, unit: &UnitSeries) -> Vec<f64> {
        let mut per_series = Vec::new();
        for db in unit {
            for kpi in db {
                per_series.push(self.point_scores(kpi));
            }
        }
        vote_fraction(&per_series, self.config.vote_z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // period 32 divides 128 exactly, so the tone sits on an FFT bin and the
    // low-pass reconstruction has no leakage artefacts at the edges
    fn smooth_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 100.0 + 20.0 * (std::f64::consts::TAU * i as f64 / 32.0).sin())
            .collect()
    }

    #[test]
    fn low_pass_preserves_smooth_signal() {
        let d = FftDetector::default();
        let xs = smooth_series(128);
        let lp = d.low_pass(&xs);
        for (a, b) in xs.iter().zip(&lp) {
            assert!((a - b).abs() < 2.0, "{a} vs {b}");
        }
    }

    #[test]
    fn spike_scores_high() {
        let d = FftDetector::default();
        let mut xs = smooth_series(128);
        xs[64] += 200.0;
        let scores = d.point_scores(&xs);
        let spike = scores[64];
        let background: f64 = scores
            .iter()
            .enumerate()
            .filter(|(i, _)| (*i as i64 - 64).abs() > 4)
            .map(|(_, &s)| s)
            .sum::<f64>()
            / (scores.len() - 9) as f64;
        assert!(
            spike > background * 5.0,
            "spike {spike} background {background}"
        );
    }

    #[test]
    fn constant_series_scores_zero() {
        let d = FftDetector::default();
        let scores = d.point_scores(&vec![5.0; 64]);
        assert!(scores.iter().all(|&s| s.abs() < 1e-9));
    }

    #[test]
    fn unit_scores_spike_visible() {
        let d = FftDetector::default();
        // 2 dbs x 2 kpis with distinct phases (identical series would vote
        // in unison on shared numerical artefacts); db0/kpi0 spikes at t=50
        let mut unit: UnitSeries = (0..2)
            .map(|db| {
                (0..2)
                    .map(|kpi| {
                        (0..100)
                            .map(|i| {
                                100.0
                                    + 20.0
                                        * (std::f64::consts::TAU
                                            * (i as f64 + (db * 7 + kpi * 3) as f64)
                                            / 32.0)
                                            .sin()
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        unit[0][0][50] += 500.0;
        let scores = d.score(&unit);
        assert_eq!(scores.len(), 100);
        // the spike's neighbourhood carries the interior maximum (low-pass
        // ringing smears the vote over nearby ticks — part of why the
        // paper rates FFT's precision low)
        let interior_max = scores[5..95].iter().cloned().fold(0.0f64, f64::max);
        assert!(scores[50] >= 0.25, "spike vote {}", scores[50]); // 1 of 4 series voted
        assert_eq!(scores[50], interior_max);
        // ticks far from the spike are quiet
        assert!(scores[10..40].iter().all(|&s| s == 0.0));
    }

    #[test]
    fn short_series_handled() {
        let d = FftDetector::default();
        assert_eq!(d.low_pass(&[1.0, 2.0]), vec![1.0, 2.0]);
        let s = d.point_scores(&[1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn name_and_fit_noop() {
        let mut d = FftDetector::default();
        assert_eq!(d.name(), "FFT");
        d.fit(&[]); // must not panic
    }
}
