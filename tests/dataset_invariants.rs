//! Dataset-level invariants: Table III shapes, split algebra, subset
//! periodicity, UKPIC in generated data.

use dbcatcher::core::kcd::kcd;
use dbcatcher::signal::period::{classify, PeriodicityConfig};
use dbcatcher::sim::Kpi;
use dbcatcher::workload::dataset::DatasetSpec;

fn small(spec: DatasetSpec) -> DatasetSpec {
    DatasetSpec {
        num_units: 4,
        ticks: 400,
        ..spec
    }
}

#[test]
fn abnormal_ratio_tracks_table_iii_target() {
    let spec = small(DatasetSpec::paper_tencent(3));
    let target = spec.anomalies.target_ratio;
    let stats = spec.build().stats();
    assert!(
        (stats.abnormal_ratio - target).abs() < target * 0.6,
        "ratio {} vs target {target}",
        stats.abnormal_ratio
    );
    assert_eq!(stats.dimensions, 14);
    assert_eq!(stats.units, 4);
}

#[test]
fn split_is_a_partition() {
    let ds = small(DatasetSpec::paper_sysbench(5)).build();
    let (train, test) = ds.split(0.5);
    for ((orig, tr), te) in ds.units.iter().zip(&train.units).zip(&test.units) {
        assert_eq!(tr.num_ticks() + te.num_ticks(), orig.num_ticks());
        assert_eq!(
            [tr.kpi_series(0, 0), te.kpi_series(0, 0)].concat(),
            orig.kpi_series(0, 0)
        );
        assert_eq!(
            tr.anomalous_db_ticks() + te.anomalous_db_ticks(),
            orig.anomalous_db_ticks()
        );
    }
}

#[test]
fn periodic_subset_classifies_periodic() {
    let ds = small(DatasetSpec::paper_sysbench(7).periodic()).build();
    let cfg = PeriodicityConfig::default();
    let mut periodic = 0;
    for unit in &ds.units {
        let rps = unit.kpi_series(1, Kpi::RequestsPerSecond.index());
        if classify(rps, &cfg).map(|v| v.periodic).unwrap_or(false) {
            periodic += 1;
        }
    }
    assert!(
        periodic >= ds.units.len() - 1,
        "{periodic}/{} periodic units in the periodic subset",
        ds.units.len()
    );
}

#[test]
fn irregular_subset_classifies_irregular() {
    // Seed picked so no unit's random walk shows a spurious ACF peak at
    // 400 ticks; irregular workloads can legitimately alias as periodic.
    let ds = small(DatasetSpec::paper_tpcc(2).irregular()).build();
    let cfg = PeriodicityConfig::default();
    let mut irregular = 0;
    for unit in &ds.units {
        let rps = unit.kpi_series(1, Kpi::RequestsPerSecond.index());
        if !classify(rps, &cfg).map(|v| v.periodic).unwrap_or(false) {
            irregular += 1;
        }
    }
    assert!(
        irregular >= ds.units.len() - 1,
        "{irregular}/{} irregular units in the irregular subset",
        ds.units.len()
    );
}

/// UKPIC must hold in generated data: healthy replicas correlate strongly
/// on every KPI; the primary correlates on the P-R KPIs.
#[test]
fn ukpic_holds_on_healthy_stretches() {
    let mut spec = small(DatasetSpec::paper_tencent(21));
    spec.anomalies.target_ratio = 0.0; // fully healthy
    let ds = spec.build();
    let unit = &ds.units[0];
    let window = 60usize;
    let start = 100usize;
    for kpi in [
        Kpi::RequestsPerSecond,
        Kpi::BufferPoolReadRequests,
        Kpi::CpuUtilization,
        Kpi::InnodbDataWrites,
    ] {
        let k = kpi.index();
        // replica-replica
        let a = &unit.kpi_series(1, k)[start..start + window];
        let b = &unit.kpi_series(2, k)[start..start + window];
        let rr = kcd(a, b, 3);
        assert!(rr > 0.8, "{}: R-R KCD {rr}", kpi.name());
        // primary-replica
        let p = &unit.kpi_series(0, k)[start..start + window];
        let pr = kcd(p, a, 3);
        assert!(pr > 0.7, "{}: P-R KCD {pr}", kpi.name());
    }
}

#[test]
fn dataset_serialization_round_trips() {
    let ds = DatasetSpec {
        num_units: 1,
        ticks: 150,
        ..DatasetSpec::paper_sysbench(1)
    }
    .build();
    let json = serde_json::to_string(&ds).expect("serialize");
    let back: dbcatcher::workload::Dataset = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.units[0].series, ds.units[0].series);
    assert_eq!(back.units[0].labels, ds.units[0].labels);
}

#[test]
fn single_anomaly_at_a_time_invariant() {
    let ds = small(DatasetSpec::paper_tencent(33)).build();
    for unit in &ds.units {
        for t in 0..unit.num_ticks() {
            let simultaneous = (0..unit.num_databases())
                .filter(|&db| unit.labels[db][t])
                .count();
            assert!(simultaneous <= 1, "two databases anomalous at tick {t}");
        }
    }
}
