//! Fig. 5: temporal fluctuations distort short-window correlation scores;
//! expanding the window recovers them — the motivation for the flexible
//! time-window observation mechanism.

use dbcatcher_eval::experiments::{fig5_window_sweep, Scale};
use dbcatcher_eval::report::render_table;

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 5 — fluctuation impact vs window size");
    let windows = [8usize, 12, 16, 20, 30, 40, 60];
    let points = fig5_window_sweep(scale.seed, &windows);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.window.to_string(),
                format!("{:.3}", p.kcd_clean),
                format!("{:.3}", p.kcd_with_fluctuation),
                format!("{:.3}", p.kcd_clean - p.kcd_with_fluctuation),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "KCD of a clean pair vs a pair with a 3-tick fluctuation",
            &["Window", "KCD clean", "KCD fluctuating", "Score drop"],
            &rows,
        )
    );
    println!("(the same fluctuation costs a short window far more correlation than a long one)");
}
