//! # dbcatcher-analysis — `dbclint`
//!
//! A self-contained static analyzer for the DBCatcher workspace. It
//! machine-checks the invariants the rest of the test suite can only
//! probe dynamically:
//!
//! * **hot-path purity** — the per-tick detection modules never
//!   allocate (the counting-allocator test proves steady state; the lint
//!   rejects the code shape at review time);
//! * **panic-freedom** — library crates on the serving path use typed
//!   errors, not `unwrap()`/`panic!`;
//! * **determinism** — seed-driven modules never read wall clocks or
//!   sleep;
//! * **no `unsafe`** — anywhere, except the bench counting allocator.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p dbcatcher-analysis --bin dbclint -- --deny
//! ```
//!
//! Scoping lives in the checked-in `dbclint.toml`; violations are
//! waivable only by an inline
//! `// dbclint: allow(<rule>) — <justification>` comment, and every
//! waiver is inventoried in `results/LINT_report.json`.

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod selftest;
pub mod walk;

pub use config::{parse_config, Config};
pub use engine::{analyze, Analysis, SourceFile, Violation, WaiverRecord};
pub use rules::{RuleKind, Severity};
