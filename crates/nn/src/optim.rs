//! Optimizers.
//!
//! The layers accumulate gradients internally and expose `sgd_step`; for the
//! trainers that want adaptive learning rates, [`Adam`] keeps per-parameter
//! first/second-moment state and is applied to `(param, grad)` slices.

/// Adam optimizer state for one flat parameter vector.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates Adam state for `dim` parameters with the usual defaults
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(dim: usize, lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
        }
    }

    /// Applies one Adam update: `params -= lr * m̂ / (sqrt(v̂) + ε)`.
    ///
    /// # Panics
    /// Panics when slice lengths disagree with the state dimension.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "param dim mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad dim mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Current step counter.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimises_quadratic() {
        // f(x) = (x - 3)^2, gradient 2(x - 3)
        let mut adam = Adam::new(1, 0.1);
        let mut x = vec![0.0];
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn adam_handles_ill_scaled_dims() {
        // f(x, y) = 1000 x^2 + 0.001 y^2 — plain SGD would need very
        // different rates per dimension; Adam normalises.
        let mut adam = Adam::new(2, 0.05);
        let mut p = vec![1.0, 1000.0];
        for _ in 0..3000 {
            let g = vec![2000.0 * p[0], 0.002 * p[1]];
            adam.step(&mut p, &g);
        }
        assert!(p[0].abs() < 1e-2, "x = {}", p[0]);
        assert!(p[1].abs() < 950.0, "y = {}", p[1]); // slow dim still moving
    }

    #[test]
    fn step_counter_advances() {
        let mut adam = Adam::new(1, 0.1);
        assert_eq!(adam.steps(), 0);
        adam.step(&mut [0.0], &[1.0]);
        adam.step(&mut [0.0], &[1.0]);
        assert_eq!(adam.steps(), 2);
    }

    #[test]
    #[should_panic(expected = "param dim mismatch")]
    fn dim_mismatch_panics() {
        let mut adam = Adam::new(2, 0.1);
        adam.step(&mut [0.0], &[1.0]);
    }

    #[test]
    fn zero_gradient_is_noop_direction() {
        let mut adam = Adam::new(1, 0.1);
        let mut x = vec![5.0];
        adam.step(&mut x, &[0.0]);
        assert!((x[0] - 5.0).abs() < 1e-9);
    }
}
