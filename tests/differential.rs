//! Differential suite: the naive and incremental correlation backends
//! must be verdict-for-verdict equivalent on every scenario class —
//! healthy streams, window expansions, injected anomalies, degenerate
//! (unused/constant) databases and full simulated workloads.

use dbcatcher::core::config::{DbCatcherConfig, DelayScan};
use dbcatcher::eval::differential::run_differential;
use dbcatcher::workload::scenario::UnitScenario;

/// A synthetic unit sharing one sinusoid trend, optionally distorting one
/// database over a tick range (mirrors the pipeline unit tests).
fn unit_series(
    dbs: usize,
    kpis: usize,
    ticks: usize,
    distort_db: Option<(usize, std::ops::Range<usize>)>,
) -> Vec<Vec<Vec<f64>>> {
    (0..dbs)
        .map(|db| {
            (0..kpis)
                .map(|kpi| {
                    (0..ticks)
                        .map(|t| {
                            let trend =
                                ((t as f64) * std::f64::consts::TAU / 30.0 + kpi as f64).sin();
                            let mut v =
                                100.0 + 40.0 * trend * (1.0 + 0.1 * db as f64) + 10.0 * db as f64;
                            if let Some((target, range)) = &distort_db {
                                if db == *target && range.contains(&t) {
                                    v = 100.0 - 60.0 * trend + 10.0 * db as f64;
                                }
                            }
                            v
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn small_config(kpis: usize) -> DbCatcherConfig {
    DbCatcherConfig {
        initial_window: 10,
        max_window: 30,
        delay_scan: DelayScan::Fixed(3),
        ..DbCatcherConfig::with_kpis(kpis)
    }
}

#[test]
fn healthy_unit_backends_agree() {
    let series = unit_series(4, 4, 150, None);
    let outcome = run_differential(&small_config(4), &series, None).expect("backends agree");
    assert!(outcome.verdicts >= 4 * 10, "{outcome:?}");
    assert_eq!(outcome.abnormal, 0, "{outcome:?}");
}

#[test]
fn expanding_windows_backends_agree() {
    // Borderline thresholds keep the unit observable so windows expand —
    // the expansion path is exactly where the incremental cache extends
    // instead of rebuilding.
    let mut config = small_config(4);
    config.alphas = vec![0.95; 4];
    config.theta = 0.5;
    config.max_tolerance = 10;
    let series = unit_series(3, 4, 200, Some((2, 30..45)));
    let outcome = run_differential(&config, &series, None).expect("backends agree");
    assert!(outcome.expansions > 0, "scenario never expanded: {outcome:?}");
}

#[test]
fn injected_anomaly_backends_agree() {
    let series = unit_series(5, 4, 150, Some((1, 40..90)));
    let outcome = run_differential(&small_config(4), &series, None).expect("backends agree");
    assert!(outcome.abnormal > 0, "anomaly not flagged: {outcome:?}");
}

#[test]
fn unused_database_backends_agree() {
    // One all-zero database and one exactly-constant database exercise
    // the degenerate conventions (unused exclusion, constant windows).
    let mut series = unit_series(4, 3, 120, None);
    for kpi in series[2].iter_mut() {
        kpi.iter_mut().for_each(|v| *v = 0.0);
    }
    for kpi in series[3].iter_mut() {
        kpi.iter_mut().for_each(|v| *v = 7.5);
    }
    let outcome = run_differential(&small_config(3), &series, None).expect("backends agree");
    assert!(outcome.verdicts > 0, "{outcome:?}");
}

#[test]
fn simulated_workload_backends_agree() {
    // Full simulator output: point-in-time delays, temporal fluctuations,
    // an injected anomaly window and the Table II participation mask.
    let data = UnitScenario::quickstart(42).generate();
    let outcome = run_differential(
        &DbCatcherConfig::with_kpis(data.num_kpis()),
        &data.series,
        Some(data.participation.clone()),
    )
    .expect("backends agree");
    assert!(outcome.verdicts > 0, "{outcome:?}");
}
