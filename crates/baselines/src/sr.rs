//! Spectral Residual (SR) anomaly detector (paper §IV-A4, after Hou &
//! Zhang and the SR-CNN paper).
//!
//! SR computes a *saliency map* of a series: the log-amplitude spectrum
//! minus its local average is the "spectral residual"; transforming it
//! back to the time domain highlights the salient (sudden-change) points.
//! Points whose saliency deviates strongly vote the tick abnormal.

use crate::detector::{vote_fraction, Detector, UnitSeries};
use dbcatcher_signal::fft::{fft_in_place, ifft_in_place, rfft_padded, Complex};
use dbcatcher_signal::stats::robust_z_scores;

/// Configuration of the SR detector.
#[derive(Debug, Clone)]
pub struct SrConfig {
    /// Spectrum-smoothing window for the average log amplitude.
    pub avg_window: usize,
    /// Robust-z threshold on the saliency map for a point to vote.
    pub vote_z: f64,
}

impl Default for SrConfig {
    fn default() -> Self {
        Self {
            avg_window: 3,
            vote_z: 3.0,
        }
    }
}

/// The Spectral Residual baseline.
#[derive(Debug, Clone, Default)]
pub struct SrDetector {
    config: SrConfig,
}

impl SrDetector {
    /// Creates the detector.
    pub fn new(config: SrConfig) -> Self {
        Self { config }
    }

    /// The SR saliency map of a series (same length as the input).
    pub fn saliency(&self, xs: &[f64]) -> Vec<f64> {
        if xs.len() < 4 {
            return vec![0.0; xs.len()];
        }
        let spectrum = rfft_padded(xs).expect("non-empty");
        let eps = 1e-12;
        let log_amp: Vec<f64> = spectrum.iter().map(|c| (c.abs() + eps).ln()).collect();
        // moving average of the log amplitude over the spectrum
        let w = self.config.avg_window.max(1);
        let avg = dbcatcher_signal::filters::moving_average(&log_amp, w).expect("w >= 1");
        // residual spectrum, re-attached to the original phase
        let mut residual_spec: Vec<Complex> = spectrum
            .iter()
            .zip(log_amp.iter().zip(&avg))
            .map(|(c, (&la, &av))| {
                let amp = (la - av).exp();
                let mag = c.abs();
                if mag < eps {
                    Complex::zero()
                } else {
                    c.scale(amp / mag)
                }
            })
            .collect();
        ifft_in_place(&mut residual_spec).expect("power-of-two");
        // one more forward/backward is not needed: saliency = |ifft|
        let _ = fft_in_place; // (kept for symmetry with the published recipe)
        residual_spec
            .iter()
            .take(xs.len())
            .map(|c| c.abs())
            .collect()
    }

    /// Per-point scores: robust z of the saliency map. A saliency map
    /// whose dynamic range is numerical dust (constant input) scores zero
    /// instead of being inflated by normalisation.
    pub fn point_scores(&self, xs: &[f64]) -> Vec<f64> {
        let sal = self.saliency(xs);
        let max = sal.iter().cloned().fold(f64::MIN, f64::max);
        let min = sal.iter().cloned().fold(f64::MAX, f64::min);
        if sal.is_empty() || max - min <= 1e-9 * (max.abs() + 1.0) {
            return vec![0.0; sal.len()];
        }
        robust_z_scores(&sal).iter().map(|z| z.abs()).collect()
    }
}

impl Detector for SrDetector {
    fn name(&self) -> &'static str {
        "SR"
    }

    fn fit(&mut self, _units: &[&UnitSeries]) {
        // Statistical method: nothing to learn.
    }

    fn score(&self, unit: &UnitSeries) -> Vec<f64> {
        let mut per_series = Vec::new();
        for db in unit {
            for kpi in db {
                per_series.push(self.point_scores(kpi));
            }
        }
        vote_fraction(&per_series, self.config.vote_z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 50.0 + 10.0 * (std::f64::consts::TAU * i as f64 / 32.0).sin())
            .collect()
    }

    #[test]
    fn saliency_length_matches_input() {
        let d = SrDetector::default();
        assert_eq!(d.saliency(&smooth_series(100)).len(), 100);
        assert_eq!(d.saliency(&[1.0, 2.0]).len(), 2);
    }

    #[test]
    fn spike_is_salient() {
        let d = SrDetector::default();
        let mut xs = smooth_series(128);
        xs[70] += 120.0;
        let scores = d.point_scores(&xs);
        // the spike (or its immediate neighbourhood) dominates
        let (argmax, _) = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert!((argmax as i64 - 70).abs() <= 2, "argmax {argmax}");
        assert!(scores[70] > 3.0, "score {}", scores[70]);
    }

    #[test]
    fn level_shift_edge_salient() {
        let d = SrDetector::default();
        let mut xs = smooth_series(128);
        for v in xs.iter_mut().skip(80) {
            *v += 60.0;
        }
        let scores = d.point_scores(&xs);
        let edge = scores[78..83].iter().cloned().fold(f64::MIN, f64::max);
        let mid = scores[20..60].iter().sum::<f64>() / 40.0;
        assert!(edge > mid * 2.0 + 1.0, "edge {edge} vs mid {mid}");
    }

    #[test]
    fn constant_series_not_salient() {
        let d = SrDetector::default();
        let scores = d.point_scores(&vec![9.0; 64]);
        assert!(scores.iter().all(|&s| s < 1e-6));
    }

    #[test]
    fn unit_level_voting() {
        let d = SrDetector::default();
        let mut unit: UnitSeries = vec![vec![smooth_series(128); 2]; 3];
        // all databases burst simultaneously: SR votes on every series —
        // exactly the false-positive mode the paper criticises
        for db in unit.iter_mut() {
            for kpi in db.iter_mut() {
                kpi[90] += 150.0;
            }
        }
        let scores = d.score(&unit);
        assert!(scores[90] > 0.8, "vote fraction {}", scores[90]);
    }

    #[test]
    fn name_is_sr() {
        assert_eq!(SrDetector::default().name(), "SR");
    }
}
