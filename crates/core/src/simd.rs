//! Explicit f64×4 SIMD dot-product kernels with runtime dispatch.
//!
//! The KCD lag scan ([`crate::kcd_incremental`]) reduces every lag to one
//! or two mean-centred dot products over normalised window slices. This
//! module owns those inner loops: a portable four-lane accumulation
//! scheme with `#[cfg]`-gated `x86_64` SSE2/AVX2 intrinsic back-ends and
//! a scalar fallback, selected once at detector construction
//! ([`SimdTier::detect`]) and overridable via the `DBCATCHER_SIMD`
//! environment variable (`scalar` | `sse2` | `avx2`) for differential
//! testing.
//!
//! # Bit-identity contract
//!
//! All three tiers compute **bit-identical** results by construction, so
//! golden verdict streams stay byte-unchanged no matter which tier the
//! host dispatches to. The shared algorithm for a dot product of length
//! `n` is:
//!
//! 1. Split into `blocks = n / 4` full blocks. Virtual lane `j` (0..4)
//!    accumulates `x[4b + j] * y[4b + j]` for `b` in `0..blocks`, each
//!    lane as an independent sequential sum.
//! 2. Reduce lanes in the fixed order `(l0 + l1) + (l2 + l3)`.
//! 3. Add the tail elements `4 * blocks..n` sequentially onto the
//!    reduced sum.
//!
//! The scalar tier emulates the four lanes with an `[f64; 4]`; SSE2 uses
//! two `__m128d` accumulators (lanes 0–1 and 2–3); AVX2 uses one
//! `__m256d`. No tier uses FMA — a fused multiply-add rounds once where
//! the contract rounds twice, which would break cross-tier equality.
//! Unit tests below pin `to_bits` equality across every supported tier.
//!
//! Relative to the PR 4 sequential kernels this reassociates the
//! accumulation (four partial sums instead of one running sum), which
//! moves raw correlations by a few ULP; `score_to_level`'s 1e-12
//! quantisation grid absorbs the difference (see DESIGN.md §13).

// The intrinsic back-ends are the only unsafe code in library crates;
// the crate root downgrades `forbid(unsafe_code)` to `deny` solely so
// this module can scope the allowance, and dbclint's `no-unsafe` rule
// still inventories every site below via audited waivers.
#![allow(unsafe_code)]

/// Instruction-set tier a detector's kernels dispatch to.
///
/// Resolved once per detector construction by [`SimdTier::detect`]; all
/// tiers produce bit-identical results (see the module docs), so the
/// choice is purely a throughput knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdTier {
    /// Portable four-lane emulation over `[f64; 4]`. Always available.
    Scalar,
    /// Two 128-bit `__m128d` accumulators. Baseline on `x86_64`.
    Sse2,
    /// One 256-bit `__m256d` accumulator. Requires AVX2.
    Avx2,
}

impl SimdTier {
    /// Picks the dispatch tier for a new detector.
    ///
    /// Honours `DBCATCHER_SIMD=scalar|sse2|avx2` when set (unknown
    /// values fall through to auto-detection, and a forced tier the
    /// host cannot execute degrades to the best supported one rather
    /// than faulting); otherwise selects the widest tier the host
    /// supports. Non-`x86_64` targets always resolve to `Scalar`.
    pub fn detect() -> Self {
        let requested = match std::env::var("DBCATCHER_SIMD") {
            Ok(v) => match v.as_str() {
                "scalar" => Some(SimdTier::Scalar),
                "sse2" => Some(SimdTier::Sse2),
                "avx2" => Some(SimdTier::Avx2),
                _ => None,
            },
            Err(_) => None,
        };
        let best = Self::best_available();
        match requested {
            Some(tier) if tier.is_supported() => tier,
            Some(_) | None => best,
        }
    }

    /// Widest tier the current host can execute.
    pub fn best_available() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                SimdTier::Avx2
            } else {
                // SSE2 is part of the x86_64 baseline.
                SimdTier::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        SimdTier::Scalar
    }

    /// Whether the current host can execute this tier.
    pub fn is_supported(self) -> bool {
        match self {
            SimdTier::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdTier::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            SimdTier::Sse2 | SimdTier::Avx2 => false,
        }
    }

    /// Every tier the current host can execute, narrowest first.
    pub fn supported() -> &'static [SimdTier] {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                &[SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2]
            } else {
                &[SimdTier::Scalar, SimdTier::Sse2]
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        &[SimdTier::Scalar]
    }

    /// Lower-case name, mirroring the `DBCATCHER_SIMD` values.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
        }
    }
}

/// Dot product of two equal-length slices under the tier's lane scheme.
///
/// Bit-identical across tiers; see the module docs for the contract.
#[inline]
pub fn dot(tier: SimdTier, xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    match tier {
        SimdTier::Scalar => dot_scalar(xs, ys),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `is_supported` gates construction (`SimdTier::detect`
        // never yields an unsupported tier) and SSE2 is part of the
        // x86_64 baseline, so the target-feature contract holds.
        SimdTier::Sse2 => unsafe { dot_sse2(xs, ys) }, // dbclint: allow(no-unsafe) — audited intrinsic dispatch; SSE2 is the x86_64 baseline
        #[cfg(target_arch = "x86_64")]
        // SAFETY: reaching this arm requires an `Avx2` tier, which
        // `SimdTier::detect` only yields after `is_x86_feature_detected!`
        // confirms AVX2 at runtime.
        SimdTier::Avx2 => unsafe { dot_avx2(xs, ys) }, // dbclint: allow(no-unsafe) — audited intrinsic dispatch; tier gated on runtime AVX2 detection
        #[cfg(not(target_arch = "x86_64"))]
        SimdTier::Sse2 | SimdTier::Avx2 => dot_scalar(xs, ys),
    }
}

/// Two fused dot products over equal-length chains, one memory sweep.
///
/// Equivalent to `(dot(tier, x1, y1), dot(tier, x2, y2))` bit-for-bit —
/// each chain follows the same lane scheme as [`dot`] — but walks the
/// four slices together, which is how the lag scan pairs the `+s`/`-s`
/// shifted windows.
#[inline]
pub fn dot2(tier: SimdTier, x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64]) -> (f64, f64) {
    debug_assert_eq!(x1.len(), y1.len());
    debug_assert_eq!(x1.len(), x2.len());
    debug_assert_eq!(x2.len(), y2.len());
    match tier {
        SimdTier::Scalar => dot2_scalar(x1, y1, x2, y2),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `dot` — SSE2 is the x86_64 baseline.
        SimdTier::Sse2 => unsafe { dot2_sse2(x1, y1, x2, y2) }, // dbclint: allow(no-unsafe) — audited intrinsic dispatch; SSE2 is the x86_64 baseline
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `dot` — tier construction is gated on runtime
        // AVX2 detection.
        SimdTier::Avx2 => unsafe { dot2_avx2(x1, y1, x2, y2) }, // dbclint: allow(no-unsafe) — audited intrinsic dispatch; tier gated on runtime AVX2 detection
        #[cfg(not(target_arch = "x86_64"))]
        SimdTier::Sse2 | SimdTier::Avx2 => dot2_scalar(x1, y1, x2, y2),
    }
}

/// Scalar tier: the reference four-lane emulation.
fn dot_scalar(xs: &[f64], ys: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let x4 = xs.chunks_exact(4);
    let y4 = ys.chunks_exact(4);
    let xt = x4.remainder();
    let yt = y4.remainder();
    for (x, y) in x4.zip(y4) {
        lanes[0] += x[0] * y[0];
        lanes[1] += x[1] * y[1];
        lanes[2] += x[2] * y[2];
        lanes[3] += x[3] * y[3];
    }
    let mut sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for (&x, &y) in xt.iter().zip(yt.iter()) {
        sum += x * y;
    }
    sum
}

fn dot2_scalar(x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64]) -> (f64, f64) {
    let mut a = [0.0f64; 4];
    let mut b = [0.0f64; 4];
    let x14 = x1.chunks_exact(4);
    let y14 = y1.chunks_exact(4);
    let x24 = x2.chunks_exact(4);
    let y24 = y2.chunks_exact(4);
    let (x1t, y1t) = (x14.remainder(), y14.remainder());
    let (x2t, y2t) = (x24.remainder(), y24.remainder());
    for (((x1c, y1c), x2c), y2c) in x14.zip(y14).zip(x24).zip(y24) {
        a[0] += x1c[0] * y1c[0];
        a[1] += x1c[1] * y1c[1];
        a[2] += x1c[2] * y1c[2];
        a[3] += x1c[3] * y1c[3];
        b[0] += x2c[0] * y2c[0];
        b[1] += x2c[1] * y2c[1];
        b[2] += x2c[2] * y2c[2];
        b[3] += x2c[3] * y2c[3];
    }
    let mut s1 = (a[0] + a[1]) + (a[2] + a[3]);
    let mut s2 = (b[0] + b[1]) + (b[2] + b[3]);
    for (&x, &y) in x1t.iter().zip(y1t.iter()) {
        s1 += x * y;
    }
    for (&x, &y) in x2t.iter().zip(y2t.iter()) {
        s2 += x * y;
    }
    (s1, s2)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
// dbclint: allow(no-unsafe) — SSE2 back-end; SAFETY audited per load below, caller dispatch gated on baseline SSE2
unsafe fn dot_sse2(xs: &[f64], ys: &[f64]) -> f64 {
    use std::arch::x86_64::{
        _mm_add_pd, _mm_cvtsd_f64, _mm_loadu_pd, _mm_mul_pd, _mm_setzero_pd, _mm_unpackhi_pd,
    };
    let n = xs.len().min(ys.len());
    let blocks = n / 4;
    let mut lo = _mm_setzero_pd();
    let mut hi = _mm_setzero_pd();
    let xp = xs.as_ptr();
    let yp = ys.as_ptr();
    for b in 0..blocks {
        // SAFETY: i + 3 < 4 * blocks <= n <= xs.len(), ys.len(), so every
        // unaligned 2-wide load stays inside both slices.
        let i = 4 * b;
        let xa = _mm_loadu_pd(xp.add(i));
        let ya = _mm_loadu_pd(yp.add(i));
        let xb = _mm_loadu_pd(xp.add(i + 2));
        let yb = _mm_loadu_pd(yp.add(i + 2));
        lo = _mm_add_pd(lo, _mm_mul_pd(xa, ya));
        hi = _mm_add_pd(hi, _mm_mul_pd(xb, yb));
    }
    let l0 = _mm_cvtsd_f64(lo);
    let l1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
    let l2 = _mm_cvtsd_f64(hi);
    let l3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
    let mut sum = (l0 + l1) + (l2 + l3);
    for (&x, &y) in xs[4 * blocks..n].iter().zip(ys[4 * blocks..n].iter()) {
        sum += x * y;
    }
    sum
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
// dbclint: allow(no-unsafe) — SSE2 back-end; SAFETY audited per load below, caller dispatch gated on baseline SSE2
unsafe fn dot2_sse2(x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64]) -> (f64, f64) {
    use std::arch::x86_64::{
        _mm_add_pd, _mm_cvtsd_f64, _mm_loadu_pd, _mm_mul_pd, _mm_setzero_pd, _mm_unpackhi_pd,
    };
    let n = x1.len().min(y1.len()).min(x2.len()).min(y2.len());
    let blocks = n / 4;
    let mut a_lo = _mm_setzero_pd();
    let mut a_hi = _mm_setzero_pd();
    let mut b_lo = _mm_setzero_pd();
    let mut b_hi = _mm_setzero_pd();
    let (x1p, y1p) = (x1.as_ptr(), y1.as_ptr());
    let (x2p, y2p) = (x2.as_ptr(), y2.as_ptr());
    for b in 0..blocks {
        // SAFETY: i + 3 < 4 * blocks <= n, the minimum of all four slice
        // lengths, so every unaligned 2-wide load is in bounds.
        let i = 4 * b;
        a_lo = _mm_add_pd(
            a_lo,
            _mm_mul_pd(_mm_loadu_pd(x1p.add(i)), _mm_loadu_pd(y1p.add(i))),
        );
        a_hi = _mm_add_pd(
            a_hi,
            _mm_mul_pd(_mm_loadu_pd(x1p.add(i + 2)), _mm_loadu_pd(y1p.add(i + 2))),
        );
        b_lo = _mm_add_pd(
            b_lo,
            _mm_mul_pd(_mm_loadu_pd(x2p.add(i)), _mm_loadu_pd(y2p.add(i))),
        );
        b_hi = _mm_add_pd(
            b_hi,
            _mm_mul_pd(_mm_loadu_pd(x2p.add(i + 2)), _mm_loadu_pd(y2p.add(i + 2))),
        );
    }
    let mut s1 = (_mm_cvtsd_f64(a_lo) + _mm_cvtsd_f64(_mm_unpackhi_pd(a_lo, a_lo)))
        + (_mm_cvtsd_f64(a_hi) + _mm_cvtsd_f64(_mm_unpackhi_pd(a_hi, a_hi)));
    let mut s2 = (_mm_cvtsd_f64(b_lo) + _mm_cvtsd_f64(_mm_unpackhi_pd(b_lo, b_lo)))
        + (_mm_cvtsd_f64(b_hi) + _mm_cvtsd_f64(_mm_unpackhi_pd(b_hi, b_hi)));
    for (&x, &y) in x1[4 * blocks..n].iter().zip(y1[4 * blocks..n].iter()) {
        s1 += x * y;
    }
    for (&x, &y) in x2[4 * blocks..n].iter().zip(y2[4 * blocks..n].iter()) {
        s2 += x * y;
    }
    (s1, s2)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// dbclint: allow(no-unsafe) — AVX2 back-end; SAFETY audited per load below, caller dispatch gated on runtime AVX2 detection
unsafe fn dot_avx2(xs: &[f64], ys: &[f64]) -> f64 {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_castpd256_pd128, _mm256_extractf128_pd, _mm256_loadu_pd,
        _mm256_mul_pd, _mm256_setzero_pd, _mm_cvtsd_f64, _mm_unpackhi_pd,
    };
    let n = xs.len().min(ys.len());
    let blocks = n / 4;
    let mut acc = _mm256_setzero_pd();
    let xp = xs.as_ptr();
    let yp = ys.as_ptr();
    for b in 0..blocks {
        // SAFETY: i + 3 < 4 * blocks <= n <= xs.len(), ys.len(), so each
        // unaligned 4-wide load stays inside both slices.
        let i = 4 * b;
        acc = _mm256_add_pd(
            acc,
            _mm256_mul_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i))),
        );
    }
    let lo = _mm256_castpd256_pd128(acc);
    let hi = _mm256_extractf128_pd::<1>(acc);
    let l0 = _mm_cvtsd_f64(lo);
    let l1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
    let l2 = _mm_cvtsd_f64(hi);
    let l3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
    let mut sum = (l0 + l1) + (l2 + l3);
    for (&x, &y) in xs[4 * blocks..n].iter().zip(ys[4 * blocks..n].iter()) {
        sum += x * y;
    }
    sum
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// dbclint: allow(no-unsafe) — AVX2 back-end; SAFETY audited per load below, caller dispatch gated on runtime AVX2 detection
unsafe fn dot2_avx2(x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64]) -> (f64, f64) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_castpd256_pd128, _mm256_extractf128_pd, _mm256_loadu_pd,
        _mm256_mul_pd, _mm256_setzero_pd, _mm_cvtsd_f64, _mm_unpackhi_pd,
    };
    let n = x1.len().min(y1.len()).min(x2.len()).min(y2.len());
    let blocks = n / 4;
    let mut acc1 = _mm256_setzero_pd();
    let mut acc2 = _mm256_setzero_pd();
    let (x1p, y1p) = (x1.as_ptr(), y1.as_ptr());
    let (x2p, y2p) = (x2.as_ptr(), y2.as_ptr());
    for b in 0..blocks {
        // SAFETY: i + 3 < 4 * blocks <= n, the minimum of all four slice
        // lengths, so each unaligned 4-wide load is in bounds.
        let i = 4 * b;
        acc1 = _mm256_add_pd(
            acc1,
            _mm256_mul_pd(_mm256_loadu_pd(x1p.add(i)), _mm256_loadu_pd(y1p.add(i))),
        );
        acc2 = _mm256_add_pd(
            acc2,
            _mm256_mul_pd(_mm256_loadu_pd(x2p.add(i)), _mm256_loadu_pd(y2p.add(i))),
        );
    }
    let (lo1, hi1) = (
        _mm256_castpd256_pd128(acc1),
        _mm256_extractf128_pd::<1>(acc1),
    );
    let (lo2, hi2) = (
        _mm256_castpd256_pd128(acc2),
        _mm256_extractf128_pd::<1>(acc2),
    );
    let mut s1 = (_mm_cvtsd_f64(lo1) + _mm_cvtsd_f64(_mm_unpackhi_pd(lo1, lo1)))
        + (_mm_cvtsd_f64(hi1) + _mm_cvtsd_f64(_mm_unpackhi_pd(hi1, hi1)));
    let mut s2 = (_mm_cvtsd_f64(lo2) + _mm_cvtsd_f64(_mm_unpackhi_pd(lo2, lo2)))
        + (_mm_cvtsd_f64(hi2) + _mm_cvtsd_f64(_mm_unpackhi_pd(hi2, hi2)));
    for (&x, &y) in x1[4 * blocks..n].iter().zip(y1[4 * blocks..n].iter()) {
        s1 += x * y;
    }
    for (&x, &y) in x2[4 * blocks..n].iter().zip(y2[4 * blocks..n].iter()) {
        s2 += x * y;
    }
    (s1, s2)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random series (xorshift-mixed LCG).
    fn series(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let bits = (state >> 11) as f64 / (1u64 << 53) as f64;
                (bits - 0.5) * 200.0
            })
            .collect()
    }

    /// The documented lane scheme, written as plainly as possible.
    fn dot_reference(xs: &[f64], ys: &[f64]) -> f64 {
        let blocks = xs.len() / 4;
        let mut lanes = [0.0f64; 4];
        for b in 0..blocks {
            for j in 0..4 {
                lanes[j] += xs[4 * b + j] * ys[4 * b + j];
            }
        }
        let mut sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        for i in 4 * blocks..xs.len() {
            sum += xs[i] * ys[i];
        }
        sum
    }

    /// Every supported tier reproduces the reference lane scheme
    /// bit-for-bit, across block counts and all four tail lengths.
    #[test]
    fn dot_is_bit_identical_across_tiers() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 11, 16, 29, 64, 301] {
            let xs = series(n, 7);
            let ys = series(n, 1234);
            let want = dot_reference(&xs, &ys);
            for &tier in SimdTier::supported() {
                let got = dot(tier, &xs, &ys);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "tier {tier:?} diverged at n={n}: {got} vs {want}"
                );
            }
        }
    }

    /// `dot2` is bit-identical to two independent `dot` calls on every
    /// supported tier — the fusion is a pure memory-traffic optimisation.
    #[test]
    fn dot2_matches_two_dots_bitwise() {
        for n in [0usize, 1, 3, 4, 6, 8, 13, 32, 57, 300] {
            let x1 = series(n, 11);
            let y1 = series(n, 22);
            let x2 = series(n, 33);
            let y2 = series(n, 44);
            for &tier in SimdTier::supported() {
                let (s1, s2) = dot2(tier, &x1, &y1, &x2, &y2);
                assert_eq!(
                    s1.to_bits(),
                    dot(tier, &x1, &y1).to_bits(),
                    "{tier:?} n={n}"
                );
                assert_eq!(
                    s2.to_bits(),
                    dot(tier, &x2, &y2).to_bits(),
                    "{tier:?} n={n}"
                );
            }
        }
    }

    /// Tier metadata is coherent: detect() is supported, names round-trip.
    #[test]
    fn tier_metadata_is_coherent() {
        let tier = SimdTier::detect();
        assert!(tier.is_supported());
        assert!(SimdTier::supported().contains(&SimdTier::best_available()));
        for &t in SimdTier::supported() {
            assert!(t.is_supported());
            assert!(["scalar", "sse2", "avx2"].contains(&t.name()));
        }
    }
}
