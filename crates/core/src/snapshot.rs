//! Detector state snapshot / restore.
//!
//! A monitoring sidecar restarts, fails over, or migrates between hosts;
//! the detector must resume exactly where it left off — including the
//! ring-buffer history that pending (possibly expanded) windows will read,
//! the window trackers, and the learned thresholds. [`DetectorSnapshot`]
//! captures all of it as plain serde data.

use crate::config::DbCatcherConfig;
use crate::ingest::TelemetryHealth;
use crate::pipeline::DbCatcher;
use crate::queues::KpiQueues;
use crate::window::WindowTracker;
use serde::{Deserialize, Serialize};

/// The complete persistent state of a [`DbCatcher`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorSnapshot {
    /// Configuration, including learned thresholds.
    pub config: DbCatcherConfig,
    /// Number of databases monitored.
    pub num_dbs: usize,
    /// The data-processing queues (bounded KPI history).
    pub queues: KpiQueues,
    /// Per-database flexible-window trackers.
    pub trackers: Vec<WindowTracker>,
    /// Telemetry health ledger, including non-voting demotion state.
    pub health: TelemetryHealth,
    /// Verdict-count / window-size accumulators for the efficiency metric.
    pub window_size_sum: u64,
    /// Total verdicts emitted so far.
    pub verdict_count: u64,
}

/// A cheap, human-readable digest of a snapshot file — what an operator
/// (or a chaos harness) needs to know about persisted resume state
/// without rebuilding the detector: where the stream picks back up, how
/// much it has seen, and which databases are currently demoted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotSummary {
    /// Databases monitored.
    pub num_dbs: usize,
    /// KPIs per database.
    pub num_kpis: usize,
    /// Next absolute tick the restored detector will accept.
    pub next_tick: u64,
    /// Verdicts emitted before the snapshot was taken.
    pub verdict_count: u64,
    /// Databases demoted to non-voting by telemetry health.
    pub non_voting: Vec<usize>,
}

impl DetectorSnapshot {
    /// Next absolute tick a detector restored from this snapshot accepts.
    pub fn next_tick(&self) -> u64 {
        self.queues.next_tick()
    }

    /// Builds the introspection digest.
    pub fn summary(&self) -> SnapshotSummary {
        SnapshotSummary {
            num_dbs: self.num_dbs,
            num_kpis: self.config.num_kpis,
            next_tick: self.next_tick(),
            verdict_count: self.verdict_count,
            non_voting: self.health.non_voting(),
        }
    }

    /// Checks the internal consistency [`DbCatcher::restore`] would
    /// otherwise assert on, as a recoverable error: a caller holding an
    /// untrusted snapshot file (a warm-restarting daemon, the chaos
    /// harness inspecting state between boots) can reject it instead of
    /// panicking.
    ///
    /// # Errors
    /// Describes the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.trackers.len() != self.num_dbs {
            return Err(format!(
                "{} window trackers for {} databases",
                self.trackers.len(),
                self.num_dbs
            ));
        }
        if self.queues.num_kpis() != self.config.num_kpis {
            return Err(format!(
                "queues carry {} KPIs but the configuration declares {}",
                self.queues.num_kpis(),
                self.config.num_kpis
            ));
        }
        self.config
            .validate()
            .map_err(|e| format!("invalid configuration: {e}"))
    }

    /// Serialises to JSON.
    ///
    /// # Errors
    /// Propagates `serde_json` errors (effectively unreachable for this
    /// data model).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Restores a snapshot from JSON.
    ///
    /// # Errors
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl DbCatcher {
    /// Captures the detector's full persistent state.
    pub fn snapshot(&self) -> DetectorSnapshot {
        DetectorSnapshot {
            config: self.config().clone(),
            num_dbs: self.num_databases(),
            queues: self.queues_ref().clone(),
            trackers: self.trackers_ref().to_vec(),
            health: self.health().clone(),
            window_size_sum: self.window_size_sum_raw(),
            verdict_count: self.verdict_count(),
        }
    }

    /// Rebuilds a detector from a snapshot; subsequent `ingest_tick` calls
    /// continue bit-identically to the original instance.
    ///
    /// # Panics
    /// Panics when the snapshot is internally inconsistent (tracker count
    /// mismatching the database count, invalid configuration).
    pub fn restore(snapshot: DetectorSnapshot) -> DbCatcher {
        // dbclint: allow(panic-free) — documented panicking wrapper; try_restore is the fallible form used by the daemon.
        Self::try_restore(snapshot).expect("snapshot is internally consistent")
    }

    /// Non-panicking [`Self::restore`]: validates the snapshot first and
    /// returns the [`DetectorSnapshot::validate`] diagnostic instead of
    /// asserting, so long-running services (the serve daemon's warm
    /// restart and WAL replay) can degrade a unit on a bad snapshot
    /// rather than abort a worker thread.
    ///
    /// # Errors
    /// Returns the validation diagnostic for an inconsistent snapshot.
    pub fn try_restore(snapshot: DetectorSnapshot) -> Result<DbCatcher, String> {
        snapshot.validate()?;
        Ok(DbCatcher::from_parts(
            snapshot.config,
            snapshot.num_dbs,
            snapshot.queues,
            snapshot.trackers,
            snapshot.health,
            snapshot.window_size_sum,
            snapshot.verdict_count,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DelayScan;

    fn frames(ticks: usize, dbs: usize, kpis: usize) -> Vec<Vec<Vec<f64>>> {
        (0..ticks)
            .map(|t| {
                (0..dbs)
                    .map(|db| {
                        (0..kpis)
                            .map(|k| {
                                let tf = t as f64;
                                100.0 * (1.0 + 0.1 * db as f64)
                                    + 30.0 * (std::f64::consts::TAU * (tf + k as f64) / 30.0).sin()
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    fn config(kpis: usize) -> DbCatcherConfig {
        DbCatcherConfig {
            initial_window: 10,
            max_window: 30,
            delay_scan: DelayScan::Fixed(3),
            ..DbCatcherConfig::with_kpis(kpis)
        }
    }

    /// The crucial contract: detect(A ++ B) == detect(A), snapshot,
    /// restore, detect(B).
    #[test]
    fn restore_continues_bit_identically() {
        let all = frames(75, 3, 4);
        // reference: uninterrupted run
        let mut reference = DbCatcher::new(config(4), 3);
        let mut ref_verdicts = Vec::new();
        for f in &all {
            ref_verdicts.extend(reference.ingest_tick(f));
        }
        // interrupted run: snapshot mid-window (tick 35 is inside a window)
        let mut first = DbCatcher::new(config(4), 3);
        let mut verdicts = Vec::new();
        for f in &all[..35] {
            verdicts.extend(first.ingest_tick(f));
        }
        let json = first.snapshot().to_json().unwrap();
        let snapshot = DetectorSnapshot::from_json(&json).unwrap();
        let mut second = DbCatcher::restore(snapshot);
        for f in &all[35..] {
            verdicts.extend(second.ingest_tick(f));
        }
        assert_eq!(ref_verdicts.len(), verdicts.len());
        for (a, b) in ref_verdicts.iter().zip(&verdicts) {
            assert_eq!(a, b);
        }
        assert_eq!(
            reference.average_window_size(),
            second.average_window_size()
        );
    }

    #[test]
    fn snapshot_preserves_learned_thresholds() {
        let mut catcher = DbCatcher::new(config(2), 3);
        catcher.set_genes(&crate::ga::Genes {
            alphas: vec![0.63, 0.77],
            theta: 0.14,
            max_tolerance: 1,
        });
        let restored = DbCatcher::restore(catcher.snapshot());
        assert_eq!(restored.config().alphas, vec![0.63, 0.77]);
        assert_eq!(restored.config().theta, 0.14);
        assert_eq!(restored.config().max_tolerance, 1);
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(DetectorSnapshot::from_json("{not json").is_err());
    }

    #[test]
    fn summary_reports_resume_point_and_health() {
        let all = frames(40, 3, 4);
        let mut catcher = DbCatcher::new(config(4), 3);
        for f in &all {
            let _ = catcher.ingest_tick(f);
        }
        let snap = catcher.snapshot();
        let summary = snap.summary();
        assert_eq!(summary.num_dbs, 3);
        assert_eq!(summary.num_kpis, 4);
        assert_eq!(summary.next_tick, 40);
        assert_eq!(summary.next_tick, snap.next_tick());
        assert_eq!(summary.verdict_count, snap.verdict_count);
        assert!(summary.non_voting.is_empty());
        // The digest itself round-trips through serde.
        let json = serde_json::to_string(&summary).unwrap();
        let back: SnapshotSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(summary, back);
    }

    #[test]
    fn validate_catches_what_restore_asserts() {
        let catcher = DbCatcher::new(config(2), 3);
        let good = catcher.snapshot();
        assert!(good.validate().is_ok());
        let mut bad = good.clone();
        bad.trackers.pop();
        let err = bad.validate().unwrap_err();
        assert!(err.contains("window trackers"), "{err}");
        let mut bad = good;
        bad.config.num_kpis = 7;
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "window trackers")]
    fn inconsistent_snapshot_panics() {
        let catcher = DbCatcher::new(config(2), 3);
        let mut snap = catcher.snapshot();
        snap.trackers.pop();
        let _ = DbCatcher::restore(snap);
    }
}
