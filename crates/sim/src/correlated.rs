//! Correlated multi-unit anomaly scenarios — the failures the paper's
//! per-unit detector cannot attribute and the fleet-scope hierarchy
//! layer exists to catch.
//!
//! Three patterns, each deterministic from a seed:
//!
//! * **Noisy neighbour** — a co-tenant burst: a resource-hungry tenant
//!   on the epicenter unit drags every co-located unit's CPU and
//!   rows-read up simultaneously (the Fig. 13 signature, fleet-wide).
//! * **Shared-storage stall** — the backing store freezes the write
//!   path on every unit of the group at once; the epicenter (closest to
//!   the faulty volume) also loses its row-churn KPIs.
//! * **Rolling regression** — storage fragmentation creeps across the
//!   group with staggered onsets (a bad compaction config rolling out),
//!   the slow-regression class for the CUSUM analyzer.
//!
//! A scenario only *schedules* [`Modifier`]s; the workload layer applies
//! them per unit, so these compose with any load profile. The expected
//! DBA-facing hypothesis for each pattern comes from the same
//! [`interpret_cause`] table the single-unit diagnosis uses.

use crate::causes::{interpret_cause, CauseHint};
use crate::kpi::Kpi;
use crate::modifier::{AnomalyEffect, Modifier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// The correlated-failure taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorrelatedKind {
    /// Co-tenant resource burst dragging the whole group (sudden).
    NoisyNeighbour,
    /// Shared storage freezing the group's write path (sudden).
    SharedStorageStall,
    /// Fragmentation rolling across the group with staggered onsets
    /// (slow regression).
    RollingRegression,
}

impl CorrelatedKind {
    /// Stable CLI / config name.
    pub fn name(self) -> &'static str {
        match self {
            CorrelatedKind::NoisyNeighbour => "noisy-neighbour",
            CorrelatedKind::SharedStorageStall => "shared-storage",
            CorrelatedKind::RollingRegression => "rolling-regression",
        }
    }

    /// Parses a CLI / config name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "noisy-neighbour" => Some(CorrelatedKind::NoisyNeighbour),
            "shared-storage" => Some(CorrelatedKind::SharedStorageStall),
            "rolling-regression" => Some(CorrelatedKind::RollingRegression),
            _ => None,
        }
    }

    /// Whether the pattern presents as a sudden incident (as opposed to
    /// a slow regression) to a change-point analyzer.
    pub fn is_sudden(self) -> bool {
        !matches!(self, CorrelatedKind::RollingRegression)
    }
}

/// A scheduled correlated failure across a group of units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelatedScenario {
    /// Failure pattern.
    pub kind: CorrelatedKind,
    /// Unit ids in the blast radius.
    pub group: Vec<usize>,
    /// The unit carrying the heaviest deviation (ground truth for the
    /// hierarchy layer's blame).
    pub epicenter: usize,
    /// First affected tick (of the epicenter, for rolling patterns).
    pub onset: u64,
    /// Affected ticks per unit.
    pub duration: u64,
    /// Ticks between successive unit onsets (rolling patterns only).
    pub stagger: u64,
    /// Seed the schedule was drawn from.
    pub seed: u64,
}

impl CorrelatedScenario {
    /// Draws a deterministic schedule for `kind` over `group` within a
    /// recording of `ticks` ticks. The epicenter, onset and duration all
    /// come from the seed; the same arguments always produce the same
    /// scenario.
    pub fn generate(seed: u64, kind: CorrelatedKind, group: Vec<usize>, ticks: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0E1_A7ED_F1EE_7001);
        let members = group.len().max(1);
        let epicenter = group.get(rng.gen_range(0..members)).copied().unwrap_or(0);
        let stagger = match kind {
            CorrelatedKind::RollingRegression => rng.gen_range(24..=40u64),
            _ => 0,
        };
        let duration = match kind {
            CorrelatedKind::NoisyNeighbour => rng.gen_range(60..=100u64),
            CorrelatedKind::SharedStorageStall => rng.gen_range(50..=90u64),
            CorrelatedKind::RollingRegression => rng.gen_range(90..=140u64),
        };
        // Leave room for every staggered onset plus the full duration.
        let span = stagger * members.saturating_sub(1) as u64;
        let latest_onset = ticks.saturating_sub(span + duration + 20).max(40);
        let onset = rng.gen_range(40..=latest_onset);
        CorrelatedScenario {
            kind,
            group,
            epicenter,
            onset,
            duration,
            stagger,
            seed,
        }
    }

    /// The affected tick range of one unit, if it is in the group.
    /// Rolling patterns stagger onsets in group order starting from the
    /// epicenter's position.
    pub fn unit_ticks(&self, unit: usize) -> Option<Range<u64>> {
        let position = self.group.iter().position(|&u| u == unit)?;
        let epicenter_position = self
            .group
            .iter()
            .position(|&u| u == self.epicenter)
            .unwrap_or(0);
        // Distance from the epicenter in group order (wrapping), so the
        // epicenter leads the roll-out.
        let distance = (position + self.group.len() - epicenter_position) % self.group.len().max(1);
        let start = self.onset + self.stagger * distance as u64;
        Some(start..start + self.duration)
    }

    /// The modifiers this scenario schedules on one unit (empty when the
    /// unit is outside the blast radius). `num_databases` bounds the
    /// targeted database indices.
    pub fn unit_modifiers(&self, unit: usize, num_databases: usize) -> Vec<Modifier> {
        let Some(ticks) = self.unit_ticks(unit) else {
            return Vec::new();
        };
        if num_databases == 0 {
            return Vec::new();
        }
        let is_epicenter = unit == self.epicenter;
        // Deterministic per-unit target database.
        let db = unit % num_databases;
        let second_db = (db + 1) % num_databases;
        match self.kind {
            CorrelatedKind::NoisyNeighbour => {
                let mut mods = vec![Modifier {
                    db,
                    ticks: ticks.clone(),
                    effect: AnomalyEffect::ResourceHog {
                        cpu_factor: if is_epicenter { 3.0 } else { 2.2 },
                        rows_read_factor: if is_epicenter { 3.5 } else { 2.6 },
                    },
                }];
                if is_epicenter && num_databases > 1 {
                    // The tenant actually lives here: a second database
                    // burns too, making the epicenter the heaviest
                    // shortfall carrier.
                    mods.push(Modifier {
                        db: second_db,
                        ticks,
                        effect: AnomalyEffect::ResourceHog {
                            cpu_factor: 2.8,
                            rows_read_factor: 3.2,
                        },
                    });
                }
                mods
            }
            CorrelatedKind::SharedStorageStall => {
                let mut mods = vec![Modifier {
                    db,
                    ticks: ticks.clone(),
                    effect: AnomalyEffect::Stall {
                        kpis: vec![
                            Kpi::InnodbDataWrites,
                            Kpi::InnodbDataWritten,
                            Kpi::ComInsert,
                            Kpi::ComUpdate,
                        ],
                    },
                }];
                if is_epicenter && num_databases > 1 {
                    mods.push(Modifier {
                        db: second_db,
                        ticks,
                        effect: AnomalyEffect::Stall {
                            kpis: vec![
                                Kpi::InnodbDataWrites,
                                Kpi::InnodbDataWritten,
                                Kpi::InnodbRowsInserted,
                                Kpi::InnodbRowsUpdated,
                            ],
                        },
                    });
                }
                mods
            }
            CorrelatedKind::RollingRegression => {
                let growth = if is_epicenter { 0.02 } else { 0.015 };
                vec![Modifier {
                    db,
                    ticks,
                    effect: AnomalyEffect::Fragmentation {
                        growth_per_tick: growth,
                    },
                }]
            }
        }
    }

    /// The DBA-facing hypothesis a correct diagnosis should reach,
    /// derived through the same [`interpret_cause`] table single-unit
    /// diagnosis uses.
    pub fn expected_cause(&self) -> CauseHint {
        match self.kind {
            CorrelatedKind::NoisyNeighbour => {
                interpret_cause(&[Kpi::CpuUtilization, Kpi::InnodbRowsRead])
            }
            CorrelatedKind::SharedStorageStall => {
                interpret_cause(&[Kpi::InnodbDataWrites, Kpi::ComInsert])
            }
            CorrelatedKind::RollingRegression => interpret_cause(&[Kpi::RealCapacity]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(kind: CorrelatedKind) -> CorrelatedScenario {
        CorrelatedScenario::generate(7, kind, vec![0, 1, 2], 480)
    }

    #[test]
    fn generation_is_deterministic() {
        for kind in [
            CorrelatedKind::NoisyNeighbour,
            CorrelatedKind::SharedStorageStall,
            CorrelatedKind::RollingRegression,
        ] {
            let a = CorrelatedScenario::generate(11, kind, vec![0, 1, 2], 480);
            let b = CorrelatedScenario::generate(11, kind, vec![0, 1, 2], 480);
            assert_eq!(a, b);
            assert!(a.group.contains(&a.epicenter));
        }
    }

    #[test]
    fn blast_radius_covers_exactly_the_group() {
        let s = scenario(CorrelatedKind::NoisyNeighbour);
        for unit in 0..3 {
            assert!(!s.unit_modifiers(unit, 5).is_empty(), "unit {unit}");
        }
        assert!(s.unit_modifiers(3, 5).is_empty());
        assert!(s.unit_ticks(3).is_none());
    }

    #[test]
    fn epicenter_carries_extra_weight() {
        for kind in [
            CorrelatedKind::NoisyNeighbour,
            CorrelatedKind::SharedStorageStall,
        ] {
            let s = scenario(kind);
            let epicenter_mods = s.unit_modifiers(s.epicenter, 5);
            for &unit in s.group.iter().filter(|&&u| u != s.epicenter) {
                assert!(epicenter_mods.len() > s.unit_modifiers(unit, 5).len());
            }
        }
    }

    #[test]
    fn rolling_staggers_onsets_from_epicenter() {
        let s = scenario(CorrelatedKind::RollingRegression);
        assert!(s.stagger >= 24);
        let epicenter_start = s.unit_ticks(s.epicenter).unwrap().start;
        assert_eq!(epicenter_start, s.onset);
        let mut starts: Vec<u64> = s
            .group
            .iter()
            .map(|&u| s.unit_ticks(u).unwrap().start)
            .collect();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), 3, "each unit gets its own onset");
        // Non-rolling patterns hit everyone at once.
        let sudden = scenario(CorrelatedKind::SharedStorageStall);
        for &u in &sudden.group {
            assert_eq!(sudden.unit_ticks(u).unwrap().start, sudden.onset);
        }
    }

    #[test]
    fn schedules_fit_in_the_recording() {
        for kind in [
            CorrelatedKind::NoisyNeighbour,
            CorrelatedKind::SharedStorageStall,
            CorrelatedKind::RollingRegression,
        ] {
            for seed in 0..20 {
                let s = CorrelatedScenario::generate(seed, kind, vec![0, 1, 2, 3], 480);
                for &u in &s.group {
                    let ticks = s.unit_ticks(u).unwrap();
                    assert!(ticks.start >= 40);
                    assert!(ticks.end <= 480, "{kind:?} seed {seed} end {}", ticks.end);
                }
            }
        }
    }

    #[test]
    fn expected_causes_match_the_taxonomy() {
        assert_eq!(
            scenario(CorrelatedKind::NoisyNeighbour).expected_cause(),
            CauseHint::ResourceContention
        );
        assert_eq!(
            scenario(CorrelatedKind::SharedStorageStall).expected_cause(),
            CauseHint::WriteAnomaly
        );
        assert_eq!(
            scenario(CorrelatedKind::RollingRegression).expected_cause(),
            CauseHint::CapacityAnomaly
        );
        assert!(CorrelatedKind::NoisyNeighbour.is_sudden());
        assert!(!CorrelatedKind::RollingRegression.is_sudden());
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            CorrelatedKind::NoisyNeighbour,
            CorrelatedKind::SharedStorageStall,
            CorrelatedKind::RollingRegression,
        ] {
            assert_eq!(CorrelatedKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(CorrelatedKind::parse("bogus"), None);
    }
}
