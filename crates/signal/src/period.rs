//! Periodic-vs-irregular classification (RobustPeriod substitute).
//!
//! Paper §IV-A2 uses RobustPeriod to split each dataset into a *periodic*
//! subset (Tencent/Sysbench/TPCC II) and an *irregular* subset (… I) based
//! on the "Requests Per Second" KPI. We reproduce the decision with the
//! same two-stage recipe RobustPeriod popularised:
//!
//! 1. detrend the series and compute its periodogram; take dominant peaks
//!    as *candidate* periods;
//! 2. validate each candidate against the autocorrelation function — a real
//!    period must also produce an ACF local maximum near the same lag.
//!
//! A series is **periodic** when a validated period explains a sufficient
//! fraction of spectral power.

use crate::acf::acf;
use crate::error::SignalError;
use crate::filters::detrend_linear;
use crate::periodogram::{peak_power_ratio, top_peaks};
use serde::{Deserialize, Serialize};

/// Tuning knobs for the classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeriodicityConfig {
    /// Number of periodogram peaks to consider as candidates.
    pub candidates: usize,
    /// ACF value required at (or adjacent to) the candidate lag.
    pub acf_threshold: f64,
    /// Minimum fraction of spectral power in the dominant peak.
    pub min_peak_power_ratio: f64,
    /// Candidate periods shorter than this are treated as noise.
    pub min_period: usize,
    /// Relative tolerance when matching an ACF peak to a candidate period.
    pub lag_tolerance: f64,
}

impl Default for PeriodicityConfig {
    fn default() -> Self {
        Self {
            candidates: 5,
            acf_threshold: 0.3,
            min_peak_power_ratio: 0.08,
            min_period: 4,
            lag_tolerance: 0.2,
        }
    }
}

/// Outcome of the periodicity analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodicityVerdict {
    /// Whether the series is classified periodic.
    pub periodic: bool,
    /// The validated dominant period (samples), if any.
    pub period: Option<f64>,
    /// Fraction of spectral power in the strongest peak.
    pub peak_power_ratio: f64,
    /// ACF value at the validated period lag (0 when none validated).
    pub acf_at_period: f64,
}

/// Classifies a series as periodic or irregular.
///
/// # Errors
/// [`SignalError::EmptyInput`] when the series is empty, and
/// [`SignalError::InvalidParameter`] when it is too short to analyse
/// (fewer than `4 * min_period` samples).
pub fn classify(
    series: &[f64],
    cfg: &PeriodicityConfig,
) -> Result<PeriodicityVerdict, SignalError> {
    if series.is_empty() {
        return Err(SignalError::EmptyInput);
    }
    if series.len() < cfg.min_period * 4 {
        return Err(SignalError::InvalidParameter {
            name: "series",
            reason: format!(
                "need at least {} samples, got {}",
                cfg.min_period * 4,
                series.len()
            ),
        });
    }
    let detrended = detrend_linear(series);
    let ratio = peak_power_ratio(&detrended)?;
    let peaks = top_peaks(&detrended, cfg.candidates)?;
    // ACF over at most half the series (longer lags are unreliable).
    let max_lag = series.len() / 2;
    let acf_curve = acf(&detrended, max_lag)?;

    let mut best: Option<(f64, f64)> = None; // (period, acf value)
    for peak in &peaks {
        if peak.period < cfg.min_period as f64 || peak.period > max_lag as f64 {
            continue;
        }
        let lag = peak.period.round() as usize;
        let slack = ((peak.period * cfg.lag_tolerance).ceil() as usize).max(1);
        let lo = lag.saturating_sub(slack).max(1);
        let hi = (lag + slack).min(acf_curve.len().saturating_sub(1));
        if lo > hi {
            continue;
        }
        let local_max = acf_curve[lo..=hi].iter().cloned().fold(f64::MIN, f64::max);
        if local_max >= cfg.acf_threshold {
            match best {
                Some((_, v)) if v >= local_max => {}
                _ => best = Some((peak.period, local_max)),
            }
        }
    }

    let periodic = best.is_some() && ratio >= cfg.min_peak_power_ratio;
    Ok(PeriodicityVerdict {
        periodic,
        period: best.map(|(p, _)| p).filter(|_| periodic),
        peak_power_ratio: ratio,
        acf_at_period: if periodic {
            best.map(|(_, v)| v).unwrap_or(0.0)
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_noise(n: usize, seed: u64, amp: f64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                amp * ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5)
            })
            .collect()
    }

    #[test]
    fn clean_sine_is_periodic() {
        let period = 24.0;
        let xs: Vec<f64> = (0..480)
            .map(|i| (std::f64::consts::TAU * i as f64 / period).sin())
            .collect();
        let v = classify(&xs, &PeriodicityConfig::default()).unwrap();
        assert!(v.periodic);
        let p = v.period.unwrap();
        assert!((p - period).abs() / period < 0.2, "period {p}");
    }

    #[test]
    fn noisy_sine_is_periodic() {
        let period = 20.0;
        let noise = lcg_noise(600, 7, 0.4);
        let xs: Vec<f64> = (0..600)
            .map(|i| (std::f64::consts::TAU * i as f64 / period).sin() + noise[i])
            .collect();
        let v = classify(&xs, &PeriodicityConfig::default()).unwrap();
        assert!(v.periodic, "verdict: {v:?}");
    }

    #[test]
    fn white_noise_is_irregular() {
        let xs = lcg_noise(600, 42, 1.0);
        let v = classify(&xs, &PeriodicityConfig::default()).unwrap();
        assert!(!v.periodic, "verdict: {v:?}");
        assert!(v.period.is_none());
    }

    #[test]
    fn random_walk_is_irregular() {
        let steps = lcg_noise(600, 5, 1.0);
        let mut acc = 0.0;
        let xs: Vec<f64> = steps
            .iter()
            .map(|s| {
                acc += s;
                acc
            })
            .collect();
        let v = classify(&xs, &PeriodicityConfig::default()).unwrap();
        assert!(!v.periodic, "verdict: {v:?}");
    }

    #[test]
    fn trend_plus_sine_still_periodic() {
        let period = 30.0;
        let xs: Vec<f64> = (0..600)
            .map(|i| 0.05 * i as f64 + 2.0 * (std::f64::consts::TAU * i as f64 / period).sin())
            .collect();
        let v = classify(&xs, &PeriodicityConfig::default()).unwrap();
        assert!(v.periodic, "verdict: {v:?}");
    }

    #[test]
    fn too_short_errors() {
        assert!(classify(&[1.0; 8], &PeriodicityConfig::default()).is_err());
        assert!(classify(&[], &PeriodicityConfig::default()).is_err());
    }

    #[test]
    fn constant_is_irregular() {
        let v = classify(&[3.0; 200], &PeriodicityConfig::default()).unwrap();
        assert!(!v.periodic);
        assert_eq!(v.peak_power_ratio, 0.0);
    }
}
