//! Fig. 1: a legitimate burst in "Requests Per Second" drags
//! "CPU Utilization" with it — on every database of the unit at once.
//! Healthy behaviour that single-series detectors misread as anomalous.

use dbcatcher_eval::experiments::Scale;
use dbcatcher_eval::report::sparkline;
use dbcatcher_signal::normalize::min_max;
use dbcatcher_sim::Kpi;
use dbcatcher_workload::scenario::UnitScenario;

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 1 — burst in RPS drives CPU (normalized trends, database 1)");
    let data = UnitScenario::burst_demo(scale.seed).generate();
    let rps = min_max(data.kpi_series(1, Kpi::RequestsPerSecond.index()));
    let cpu = min_max(data.kpi_series(1, Kpi::CpuUtilization.index()));
    println!("Requests Per Second  {}", sparkline(&rps, 100));
    println!("CPU Utilization      {}", sparkline(&cpu, 100));
    let corr = dbcatcher_core::kcd::kcd(&rps, &cpu, 3);
    println!(
        "KCD(RPS, CPU) on database 1: {corr:.3}  (the burst is shared, so trends stay correlated)"
    );
    println!(
        "ground-truth anomalous ticks in this recording: {}",
        data.anomalous_db_ticks()
    );
}
