//! Criterion bench: the KCD correlation measurement (the 70 % component
//! of §IV-D4) against Pearson and DTW, plus the lag-scan ablation.
//!
//! Besides wall clock, the binary audits the heap: a counting global
//! allocator tallies allocations per steady-state tick for each backend
//! and, when `DBCATCHER_BENCH_ALLOCS=<path>` is set, writes them as JSON
//! for `bench_report` to merge into `BENCH_kcd.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbcatcher_baselines::correlation::{dtw_score, pearson_score};
use dbcatcher_core::kcd::kcd;
use dbcatcher_core::kcd_incremental::IncrementalCorrelator;
use dbcatcher_core::queues::KpiQueues;
use dbcatcher_core::scratch::TickScratch;
use dbcatcher_core::simd::{self, SimdTier};
use dbcatcher_core::{score_batch, DbCatcher, DbCatcherConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY AUDIT — one of the workspace's two sanctioned `unsafe` surfaces
// (this file and its twin `tests/zero_alloc.rs` are excluded from
// dbclint's `no-unsafe` rule; the other surface, the SIMD intrinsics in
// `crates/core/src/simd.rs`, stays in scope with per-site waivers).
//
// `GlobalAlloc` is an unsafe trait because the allocator must uphold the
// contract rustc's codegen relies on: returned pointers are valid for
// `layout`, dealloc/realloc are only reached with pointers this allocator
// handed out, and no unwinding crosses the allocator boundary. This impl
// delegates every operation verbatim to `std::alloc::System` — the same
// allocator the program would use anyway — and only increments a relaxed
// atomic counter on the side. The counter cannot unwind, allocate, or
// touch the pointer, so the entire safety obligation is inherited from
// `System`, which upholds it by definition.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// (window k, lag scan m, databases d) spanning the deployment ranges;
/// (300, 5, 16) is the speedup acceptance point.
const CONFIGS: &[(usize, usize, usize)] = &[
    (30, 0, 4),
    (30, 3, 4),
    (60, 3, 8),
    (120, 5, 8),
    (120, 0, 8),
    (300, 5, 16),
];

fn series(n: usize, phase: f64) -> Vec<f64> {
    // deterministic noise keeps any lag from reaching exactly 1.0, so the
    // half-window scan cannot take KCD's perfect-score early exit
    let mut state = 0x5EED_u64.wrapping_add(phase as u64);
    (0..n)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let noise = (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5;
            100.0 + 30.0 * (std::f64::consts::TAU * (i as f64 + phase) / 24.0).sin() + 2.0 * noise
        })
        .collect()
}

fn bench_kcd(c: &mut Criterion) {
    let mut group = c.benchmark_group("correlation_measures");
    for &n in &[20usize, 40, 60] {
        let x = series(n, 0.0);
        let y = series(n, 2.0);
        group.bench_with_input(BenchmarkId::new("kcd_lag3", n), &n, |b, _| {
            b.iter(|| kcd(black_box(&x), black_box(&y), 3))
        });
        group.bench_with_input(BenchmarkId::new("kcd_halfwindow", n), &n, |b, _| {
            b.iter(|| kcd(black_box(&x), black_box(&y), n / 2))
        });
        group.bench_with_input(BenchmarkId::new("pearson", n), &n, |b, _| {
            b.iter(|| pearson_score(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("dtw", n), &n, |b, _| {
            b.iter(|| dtw_score(black_box(&x), black_box(&y), 3))
        });
    }
    group.finish();
}

/// One steady-state detector tick per iteration: ingest a frame, then
/// score every database pair over the trailing window of `k` ticks —
/// exactly the per-KPI work `aggregated_scores` does at judgement time.
fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("kcd_backends");
    for &(k, m, d) in CONFIGS {
        let data: Vec<Vec<f64>> = (0..d).map(|db| series(4 * k, db as f64 * 1.7)).collect();
        let frame_at =
            |t: usize| -> Vec<Vec<f64>> { data.iter().map(|s| vec![s[t % s.len()]]).collect() };
        let label = format!("k{k}_m{m}_d{d}");

        let mut queues = KpiQueues::new(d, 1, 2 * k);
        let mut tick = 0usize;
        while tick < k {
            queues.push(&frame_at(tick));
            tick += 1;
        }
        group.bench_with_input(BenchmarkId::new("naive", &label), &k, |b, _| {
            b.iter(|| {
                queues.push(&frame_at(tick));
                tick += 1;
                let start = queues.next_tick() - k as u64;
                let mut acc = 0.0;
                for i in 0..d {
                    for j in (i + 1)..d {
                        let x = queues.window_slice(i, 0, start, k).expect("window");
                        let y = queues.window_slice(j, 0, start, k).expect("window");
                        acc += kcd(black_box(x), black_box(y), m);
                    }
                }
                black_box(acc)
            })
        });

        let mut engine = IncrementalCorrelator::new(d, 1, 2 * k);
        let mut tick = 0usize;
        while tick < k {
            engine.push(&frame_at(tick));
            tick += 1;
        }
        group.bench_with_input(BenchmarkId::new("incremental", &label), &k, |b, _| {
            b.iter(|| {
                engine.push(&frame_at(tick));
                tick += 1;
                let start = engine.next_tick() - k as u64;
                let mut acc = 0.0;
                for i in 0..d {
                    for j in (i + 1)..d {
                        acc += engine.pair_score(i, j, 0, black_box(start), k, m);
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

/// Per-tier kernel sweeps: the raw lane dot product (the lag scan's
/// inner loop) and a full pair-score lag scan, once per dispatch tier
/// the host supports — scalar vs SSE2 vs AVX2 per-sweep nanoseconds.
fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kcd_kernels");
    for &tier in SimdTier::supported() {
        for &n in &[64usize, 300] {
            let x = series(n, 0.0);
            let y = series(n, 2.0);
            group.bench_with_input(
                BenchmarkId::new(format!("dot_{}", tier.name()), n),
                &n,
                |b, _| b.iter(|| simd::dot(tier, black_box(&x), black_box(&y))),
            );
        }
        // One full lag scan at the acceptance config (k=300, m=5): the
        // whole prepared sweep, not just the inner dot.
        let (k, m, d) = (300usize, 5usize, 2usize);
        let data: Vec<Vec<f64>> = (0..d).map(|db| series(4 * k, db as f64 * 1.7)).collect();
        let mut engine = IncrementalCorrelator::new(d, 1, 2 * k).with_tier(tier);
        let mut tick = 0usize;
        while tick < 2 * k {
            engine.push(
                &data
                    .iter()
                    .map(|s| vec![s[tick % s.len()]])
                    .collect::<Vec<_>>(),
            );
            tick += 1;
        }
        let start = engine.next_tick() - k as u64;
        group.bench_with_input(
            BenchmarkId::new(format!("pair_scan_{}", tier.name()), k),
            &k,
            |b, _| b.iter(|| engine.pair_score(0, 1, 0, black_box(start), k, m)),
        );
    }
    group.finish();
}

/// Fleet-batched vs per-unit scoring at 1/8/64 units: the same detector
/// ticks driven through `try_ingest_tick` (each unit re-warming its own
/// arena) versus `score_batch` (one shared arena amortising the pooled
/// batch matrices and staging buffers across the batch).
fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("kcd_batch");
    const DBS: usize = 4;
    const KPIS: usize = 2;
    let config = DbCatcherConfig::with_kpis(KPIS);
    let warmup = 2 * config.max_window;
    let total = 4 * config.max_window;
    for &units in &[1usize, 8, 64] {
        // frames[t][unit] — prebuilt so only ingest + scoring is timed.
        let sers: Vec<Vec<f64>> = (0..units * DBS)
            .map(|i| series(total, i as f64 * 1.7))
            .collect();
        let frames: Vec<Vec<Vec<Vec<f64>>>> = (0..total)
            .map(|t| {
                (0..units)
                    .map(|u| {
                        (0..DBS)
                            .map(|db| vec![sers[u * DBS + db][t]; KPIS])
                            .collect()
                    })
                    .collect()
            })
            .collect();

        let fresh_fleet = || -> Vec<DbCatcher> {
            let mut fleet: Vec<DbCatcher> = (0..units)
                .map(|_| DbCatcher::new(config.clone(), DBS))
                .collect();
            for frame in frames.iter().take(warmup) {
                for (u, catcher) in fleet.iter_mut().enumerate() {
                    catcher.ingest_tick(&frame[u]);
                }
            }
            fleet
        };

        let mut fleet = fresh_fleet();
        let mut tick = warmup;
        group.bench_with_input(BenchmarkId::new("per_unit", units), &units, |b, _| {
            b.iter(|| {
                let t = tick % total;
                tick += 1;
                let mut verdicts = 0usize;
                for (u, catcher) in fleet.iter_mut().enumerate() {
                    verdicts += catcher.ingest_tick(black_box(&frames[t][u])).len();
                }
                black_box(verdicts)
            })
        });

        let mut fleet = fresh_fleet();
        let mut scratch = TickScratch::new();
        let mut tick = warmup;
        group.bench_with_input(BenchmarkId::new("batched", units), &units, |b, _| {
            b.iter(|| {
                let t = tick % total;
                tick += 1;
                let verdicts = score_batch(fleet.iter_mut(), black_box(&frames[t]), &mut scratch)
                    .expect("well-shaped frames")
                    .len();
                black_box(verdicts)
            })
        });
    }
    group.finish();
}

/// Heap audit: allocations per steady-state tick for both backends, one
/// row per config, written to `DBCATCHER_BENCH_ALLOCS`. Frames are built
/// ahead of the measured span so only push + scoring are counted —
/// mirroring the timing loops above exactly.
fn audit_allocs(_c: &mut Criterion) {
    let Ok(path) = std::env::var("DBCATCHER_BENCH_ALLOCS") else {
        return;
    };
    const MEASURE: usize = 64;
    let mut rows: Vec<serde::Value> = Vec::new();
    for &(k, m, d) in CONFIGS {
        let data: Vec<Vec<f64>> = (0..d).map(|db| series(4 * k, db as f64 * 1.7)).collect();
        let total = 3 * k + MEASURE;
        let frames: Vec<Vec<Vec<f64>>> = (0..total)
            .map(|t| data.iter().map(|s| vec![s[t % s.len()]]).collect())
            .collect();
        let label = format!("k{k}_m{m}_d{d}");

        let naive_tick = |queues: &mut KpiQueues, frame: &[Vec<f64>]| -> f64 {
            queues.push(frame);
            let start = queues.next_tick() - k as u64;
            let mut acc = 0.0;
            for i in 0..d {
                for j in (i + 1)..d {
                    let x = queues.window_slice(i, 0, start, k).expect("window");
                    let y = queues.window_slice(j, 0, start, k).expect("window");
                    acc += kcd(black_box(x), black_box(y), m);
                }
            }
            acc
        };
        let mut queues = KpiQueues::new(d, 1, 2 * k);
        for frame in &frames[..k] {
            queues.push(frame);
        }
        for frame in &frames[k..3 * k] {
            black_box(naive_tick(&mut queues, frame));
        }
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for frame in &frames[3 * k..] {
            black_box(naive_tick(&mut queues, frame));
        }
        let naive_allocs = (ALLOCATIONS.load(Ordering::Relaxed) - before) as f64 / MEASURE as f64;

        let incremental_tick = |engine: &mut IncrementalCorrelator, frame: &[Vec<f64>]| -> f64 {
            engine.push(frame);
            let start = engine.next_tick() - k as u64;
            let mut acc = 0.0;
            for i in 0..d {
                for j in (i + 1)..d {
                    acc += engine.pair_score(i, j, 0, black_box(start), k, m);
                }
            }
            acc
        };
        let mut engine = IncrementalCorrelator::new(d, 1, 2 * k);
        for frame in &frames[..k] {
            engine.push(frame);
        }
        for frame in &frames[k..3 * k] {
            black_box(incremental_tick(&mut engine, frame));
        }
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for frame in &frames[3 * k..] {
            black_box(incremental_tick(&mut engine, frame));
        }
        let incremental_allocs =
            (ALLOCATIONS.load(Ordering::Relaxed) - before) as f64 / MEASURE as f64;

        rows.push(serde_json::json!({
            "config": label,
            "naive_allocs_per_tick": naive_allocs,
            "incremental_allocs_per_tick": incremental_allocs,
        }));
        println!(
            "allocs/tick {label}: naive {naive_allocs:.1}, incremental {incremental_allocs:.1}"
        );
    }
    let report = serde_json::json!({ "allocs": rows });
    let json = serde_json::to_string(&report).expect("render alloc report");
    std::fs::write(&path, format!("{json}\n")).expect("write alloc report");
}

criterion_group!(
    benches,
    bench_kcd,
    bench_backends,
    bench_kernels,
    bench_batch,
    audit_allocs
);
criterion_main!(benches);
