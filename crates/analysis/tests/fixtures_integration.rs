//! Integration tests driving the full engine over the known-bad fixture
//! files in `tests/fixtures/`, asserting exact (rule, line) hits — the
//! end-to-end proof that scoping, test exemption, waivers, and the lexer
//! compose the way `dbclint.toml` relies on.

use dbcatcher_analysis::{analyze, parse_config, SourceFile};

/// Scoping used by every fixture test: hot-path rules on `hot_alloc.rs`
/// and the torture file, panic rules on the panic/waiver fixtures, and
/// the unsafe/determinism rules wherever relevant. The torture fixture
/// is deliberately placed in EVERY scope: it must stay hit-free.
const FIXTURE_CONFIG: &str = r#"
version = 1

[files]
roots = ["fixtures"]

[rules.hot-path-alloc]
severity = "deny"
include = ["fixtures/hot_alloc.rs", "fixtures/torture.rs"]

[rules.panic-free]
severity = "deny"
include = ["fixtures/panics.rs", "fixtures/bad_waiver.rs", "fixtures/torture.rs"]

[rules.slice-index]
severity = "warn"
include = ["fixtures"]

[rules.determinism]
severity = "deny"
include = ["fixtures/nondet.rs", "fixtures/torture.rs"]

[rules.no-unsafe]
severity = "deny"
include = ["fixtures"]
"#;

fn fixture(name: &str, content: &'static str) -> SourceFile {
    SourceFile {
        path: format!("fixtures/{name}"),
        content: content.to_string(),
    }
}

fn run(files: Vec<SourceFile>) -> dbcatcher_analysis::Analysis {
    let cfg = parse_config(FIXTURE_CONFIG).expect("fixture config parses");
    analyze(&cfg, &files)
}

/// `(rule, line)` pairs of every violation in `file`, sorted.
fn hits(a: &dbcatcher_analysis::Analysis, file: &str) -> Vec<(String, u32)> {
    a.violations
        .iter()
        .filter(|v| v.file == file)
        .map(|v| (v.rule.clone(), v.line))
        .collect()
}

#[test]
fn hot_alloc_fixture_exact_hits() {
    let a = run(vec![fixture(
        "hot_alloc.rs",
        include_str!("fixtures/hot_alloc.rs"),
    )]);
    assert_eq!(
        hits(&a, "fixtures/hot_alloc.rs"),
        vec![
            ("hot-path-alloc".to_string(), 3), // Vec::new
            ("hot-path-alloc".to_string(), 5), // .to_vec()
        ],
        "raw-string mention and #[cfg(test)] allocations must not fire"
    );
}

#[test]
fn panics_fixture_exact_hits_and_waiver() {
    let a = run(vec![fixture(
        "panics.rs",
        include_str!("fixtures/panics.rs"),
    )]);
    assert_eq!(
        hits(&a, "fixtures/panics.rs"),
        vec![
            ("panic-free".to_string(), 5),  // unwrap()
            ("panic-free".to_string(), 14), // panic!
        ],
        "doc-comment mention must not fire; waived expect must not fire"
    );
    assert_eq!(a.waivers.len(), 1);
    assert_eq!(a.waivers[0].line, 10, "waiver targets the expect line");
    assert_eq!(a.waivers[0].rule, "panic-free");
    assert!(a.waivers[0].justification.contains("fixture waiver"));
}

#[test]
fn nondet_fixture_exact_hits() {
    let a = run(vec![fixture(
        "nondet.rs",
        include_str!("fixtures/nondet.rs"),
    )]);
    assert_eq!(
        hits(&a, "fixtures/nondet.rs"),
        vec![
            ("determinism".to_string(), 4), // Instant::now
            ("determinism".to_string(), 5), // thread::sleep
        ]
    );
}

#[test]
fn unsafe_fires_even_in_test_code() {
    let a = run(vec![fixture(
        "unsafe_in_test.rs",
        include_str!("fixtures/unsafe_in_test.rs"),
    )]);
    assert_eq!(
        hits(&a, "fixtures/unsafe_in_test.rs"),
        vec![("no-unsafe".to_string(), 8)],
        "no-unsafe must not honour the #[cfg(test)] exemption"
    );
}

#[test]
fn waiver_pathologies_are_deny_violations() {
    let a = run(vec![fixture(
        "bad_waiver.rs",
        include_str!("fixtures/bad_waiver.rs"),
    )]);
    assert_eq!(
        hits(&a, "fixtures/bad_waiver.rs"),
        vec![
            ("waiver-syntax".to_string(), 3),  // no justification
            ("waiver-unused".to_string(), 8),  // nothing on target line
            ("waiver-syntax".to_string(), 13), // unknown rule name
            ("panic-free".to_string(), 14),    // unknown rule cannot waive
        ]
    );
}

#[test]
fn torture_fixture_is_hit_free_under_every_rule() {
    let a = run(vec![fixture(
        "torture.rs",
        include_str!("fixtures/torture.rs"),
    )]);
    assert_eq!(
        hits(&a, "fixtures/torture.rs"),
        Vec::<(String, u32)>::new(),
        "raw strings, nested comments, char literals, escapes, and raw \
         idents must all be invisible to every rule"
    );
}

#[test]
fn whole_fixture_set_summary() {
    let a = run(vec![
        fixture("hot_alloc.rs", include_str!("fixtures/hot_alloc.rs")),
        fixture("panics.rs", include_str!("fixtures/panics.rs")),
        fixture("nondet.rs", include_str!("fixtures/nondet.rs")),
        fixture(
            "unsafe_in_test.rs",
            include_str!("fixtures/unsafe_in_test.rs"),
        ),
        fixture("bad_waiver.rs", include_str!("fixtures/bad_waiver.rs")),
        fixture("torture.rs", include_str!("fixtures/torture.rs")),
    ]);
    assert_eq!(a.files_scanned, 6);
    assert_eq!(
        a.deny_count(),
        11,
        "2 alloc + 2 panic + 2 nondet + 1 unsafe + 4 waiver pathology"
    );
    // The justification-less waiver suppresses its target line (so the
    // underlying hit is not double-reported) but is itself a deny-level
    // `waiver-syntax` violation — the gate still fails, and the malformed
    // waiver shows up in the inventory with an empty justification.
    assert_eq!(a.waivers.len(), 2);
    assert_eq!(
        a.waivers
            .iter()
            .filter(|w| !w.justification.is_empty())
            .count(),
        1
    );
}
