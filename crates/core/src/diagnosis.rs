//! Root-cause hinting (the paper's stated future work, §V: "how can root
//! cause analysis be performed using database KPI time series?").
//!
//! A verdict already carries the aggregated per-KPI correlation scores of
//! the judged window; [`diagnose`] ranks the KPIs by how far each fell
//! below its threshold, producing the evidence a DBA (or a downstream
//! classifier — see `dbcatcher-sim`'s cause interpretation) starts from.

use crate::config::DbCatcherConfig;
use crate::levels::{score_to_level, Level};
use crate::pipeline::Verdict;
use serde::{Deserialize, Serialize};

/// One KPI's contribution to an abnormal verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KpiDeviation {
    /// KPI index.
    pub kpi: usize,
    /// The aggregated correlation score of the judged window.
    pub score: f64,
    /// How far below the KPI's threshold α_i the score fell (positive =
    /// deviating; the ranking key).
    pub shortfall: f64,
    /// The quantised level.
    pub level: Level,
}

/// A ranked explanation of one verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// The judged database.
    pub db: usize,
    /// Window bounds of the verdict.
    pub start_tick: u64,
    /// One past the last judged tick.
    pub end_tick: u64,
    /// Deviating KPIs, most severe first (level-3 KPIs are omitted).
    pub deviations: Vec<KpiDeviation>,
}

impl Diagnosis {
    /// The single most deviating KPI, if any.
    pub fn primary_suspect(&self) -> Option<&KpiDeviation> {
        self.deviations.first()
    }

    /// Whether any KPI reached level-1 (extreme deviation).
    pub fn has_extreme_deviation(&self) -> bool {
        self.deviations
            .iter()
            .any(|d| d.level == Level::ExtremeDeviation)
    }
}

/// Ranks a verdict's deviating KPIs against the configuration's
/// thresholds.
///
/// # Panics
/// Panics when the verdict's score arity mismatches the configuration.
pub fn diagnose(verdict: &Verdict, config: &DbCatcherConfig) -> Diagnosis {
    assert_eq!(
        verdict.scores.len(),
        config.num_kpis,
        "verdict score arity mismatches configuration"
    );
    let mut deviations: Vec<KpiDeviation> = verdict
        .scores
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_nan())
        .filter_map(|(kpi, &score)| {
            let alpha = config.alphas[kpi];
            let level = score_to_level(score, alpha, config.theta);
            if level == Level::Correlated {
                return None;
            }
            Some(KpiDeviation {
                kpi,
                score,
                shortfall: alpha - score,
                level,
            })
        })
        .collect();
    deviations.sort_by(|a, b| b.shortfall.total_cmp(&a.shortfall));
    Diagnosis {
        db: verdict.db,
        start_tick: verdict.start_tick,
        end_tick: verdict.end_tick,
        deviations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::DbState;

    fn verdict(scores: Vec<f64>) -> Verdict {
        Verdict {
            db: 2,
            start_tick: 40,
            end_tick: 60,
            state: DbState::Abnormal,
            window_size: 20,
            expansions: 0,
            scores,
        }
    }

    fn config(kpis: usize) -> DbCatcherConfig {
        DbCatcherConfig::with_kpis(kpis)
    }

    #[test]
    fn ranks_by_shortfall() {
        // alphas 0.7, theta 0.2
        let d = diagnose(&verdict(vec![0.9, 0.2, 0.55, 0.65]), &config(4));
        let kpis: Vec<usize> = d.deviations.iter().map(|x| x.kpi).collect();
        assert_eq!(kpis, vec![1, 2, 3]);
        assert_eq!(d.primary_suspect().unwrap().kpi, 1);
        assert!(d.has_extreme_deviation());
        assert_eq!(d.deviations[0].level, Level::ExtremeDeviation);
        assert_eq!(d.deviations[1].level, Level::SlightDeviation);
    }

    #[test]
    fn healthy_verdict_has_no_deviations() {
        let d = diagnose(&verdict(vec![0.9, 0.95, 0.99]), &config(3));
        assert!(d.deviations.is_empty());
        assert!(d.primary_suspect().is_none());
        assert!(!d.has_extreme_deviation());
    }

    #[test]
    fn non_participating_kpis_ignored() {
        let d = diagnose(&verdict(vec![f64::NAN, 0.1, f64::NAN]), &config(3));
        assert_eq!(d.deviations.len(), 1);
        assert_eq!(d.deviations[0].kpi, 1);
    }

    #[test]
    fn window_metadata_carried() {
        let d = diagnose(&verdict(vec![0.1]), &config(1));
        assert_eq!(d.db, 2);
        assert_eq!((d.start_tick, d.end_tick), (40, 60));
    }

    #[test]
    #[should_panic(expected = "arity mismatches")]
    fn arity_mismatch_panics() {
        let _ = diagnose(&verdict(vec![0.1, 0.2]), &config(3));
    }
}
