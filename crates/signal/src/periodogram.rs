//! Periodogram (power spectral density estimate).
//!
//! The periodogram proposes candidate periods for the RobustPeriod-like
//! classifier in [`crate::period`]; the FFT baseline detector also uses it
//! to find dominant frequencies.

use crate::error::SignalError;
use crate::fft::rfft_padded;
use crate::normalize::center_in_place;

/// One spectral peak: FFT bin, implied period in samples, and power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralPeak {
    /// FFT bin index (1-based bins carry frequency `bin / n_padded`).
    pub bin: usize,
    /// Period implied by the bin, in samples of the original series.
    pub period: f64,
    /// Power at the bin.
    pub power: f64,
}

/// Computes the one-sided periodogram of a (mean-centred) series.
///
/// The series is centred, zero-padded to a power of two and transformed; the
/// returned vector holds `n_padded / 2` power values (bin 0 = DC is zeroed
/// because the mean was removed).
///
/// # Errors
/// [`SignalError::EmptyInput`] for empty input.
pub fn periodogram(series: &[f64]) -> Result<Vec<f64>, SignalError> {
    if series.is_empty() {
        return Err(SignalError::EmptyInput);
    }
    let mut centered = series.to_vec();
    center_in_place(&mut centered);
    let spectrum = rfft_padded(&centered)?;
    let n = spectrum.len();
    let scale = 1.0 / (n as f64 * series.len() as f64);
    Ok(spectrum
        .iter()
        .take(n / 2)
        .map(|c| c.norm_sqr() * scale)
        .collect())
}

/// Extracts up to `k` dominant spectral peaks (local maxima, sorted by
/// descending power), reporting periods in units of the *original* series
/// length.
///
/// # Errors
/// Propagates [`periodogram`] errors.
pub fn top_peaks(series: &[f64], k: usize) -> Result<Vec<SpectralPeak>, SignalError> {
    let pg = periodogram(series)?;
    let n_padded = crate::fft::next_pow2(series.len());
    let mut peaks: Vec<SpectralPeak> = Vec::new();
    for bin in 1..pg.len() {
        let left = if bin > 0 { pg[bin - 1] } else { 0.0 };
        let right = if bin + 1 < pg.len() { pg[bin + 1] } else { 0.0 };
        if pg[bin] >= left && pg[bin] >= right && pg[bin] > 0.0 {
            peaks.push(SpectralPeak {
                bin,
                period: n_padded as f64 / bin as f64,
                power: pg[bin],
            });
        }
    }
    peaks.sort_by(|a, b| b.power.total_cmp(&a.power));
    peaks.truncate(k);
    Ok(peaks)
}

/// Fraction of total spectral power captured by the strongest peak — a
/// simple "how periodic is this" score in `[0, 1]`.
///
/// # Errors
/// Propagates [`periodogram`] errors.
pub fn peak_power_ratio(series: &[f64]) -> Result<f64, SignalError> {
    let pg = periodogram(series)?;
    let total: f64 = pg.iter().sum();
    if total == 0.0 {
        return Ok(0.0);
    }
    let max = pg.iter().cloned().fold(0.0_f64, f64::max);
    Ok(max / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sine_peak_at_right_period() {
        let period = 16usize;
        let xs: Vec<f64> = (0..256)
            .map(|i| (std::f64::consts::TAU * i as f64 / period as f64).sin())
            .collect();
        let peaks = top_peaks(&xs, 1).unwrap();
        assert_eq!(peaks.len(), 1);
        assert!(
            (peaks[0].period - period as f64).abs() < 1.0,
            "found period {}",
            peaks[0].period
        );
    }

    #[test]
    fn constant_has_no_peaks() {
        let xs = vec![5.0; 64];
        let peaks = top_peaks(&xs, 3).unwrap();
        assert!(peaks.is_empty());
        assert_eq!(peak_power_ratio(&xs).unwrap(), 0.0);
    }

    #[test]
    fn periodic_beats_noise_on_ratio() {
        let period = 12usize;
        let periodic: Vec<f64> = (0..300)
            .map(|i| (std::f64::consts::TAU * i as f64 / period as f64).sin())
            .collect();
        let mut state = 99u64;
        let noise: Vec<f64> = (0..300)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
            })
            .collect();
        let rp = peak_power_ratio(&periodic).unwrap();
        let rn = peak_power_ratio(&noise).unwrap();
        assert!(rp > rn * 3.0, "periodic {rp} vs noise {rn}");
    }

    #[test]
    fn empty_input_errors() {
        assert!(periodogram(&[]).is_err());
        assert!(top_peaks(&[], 1).is_err());
    }

    #[test]
    fn two_tone_yields_two_peaks() {
        let xs: Vec<f64> = (0..512)
            .map(|i| {
                let t = i as f64;
                (std::f64::consts::TAU * t / 32.0).sin()
                    + 0.8 * (std::f64::consts::TAU * t / 8.0).sin()
            })
            .collect();
        let peaks = top_peaks(&xs, 2).unwrap();
        assert_eq!(peaks.len(), 2);
        let mut periods: Vec<f64> = peaks.iter().map(|p| p.period).collect();
        periods.sort_by(f64::total_cmp);
        assert!((periods[0] - 8.0).abs() < 0.5);
        assert!((periods[1] - 32.0).abs() < 2.0);
    }
}
